"""Blue/green model hot reload, on both serving tiers.

The contract under test: a reload builds and validates the new store
*before* the atomic swap, so (a) concurrent requests across the swap
see zero errors and every response is byte-identical to either the
pre-swap or the post-swap snapshot — never a mix; (b) a corrupt
replacement is rejected with 400 and the old store keeps serving; and
(c) SIGHUP on a live ``repro serve`` subprocess re-scans the specs
from disk and bumps the store version without dropping the daemon.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro import obs
from repro.engine import EngineConfig
from repro.serve import (
    AsyncPredictionServer,
    ModelStore,
    PredictionServer,
)
from repro.serve.payloads import dump_payload

from tests.serve.conftest import http as fire

SOURCE = (
    "#include <string.h>\n"
    "int handle(char *req) {\n"
    "    char buf[32];\n"
    "    strcpy(buf, req);\n"
    "    return 0;\n"
    "}\n"
)


@pytest.fixture
def tree(tmp_path):
    d = tmp_path / "app"
    d.mkdir()
    (d / "app.c").write_text(SOURCE)
    return str(d)


@pytest.fixture(params=["thread", "async"])
def hotserver(request, model_file):
    store = ModelStore.from_specs([f"default={model_file}"])
    if request.param == "thread":
        srv = PredictionServer(store, port=0, batch_window=0.005)
    else:
        srv = AsyncPredictionServer(
            store, config=EngineConfig(no_cache=True), port=0,
            pool_size=1, batch_window=0.005)
    srv.start()
    yield srv
    srv.stop()
    obs.disable()


def server_features(server, tree):
    """A feature row computed by the live server itself."""
    status, _, body = fire(server, "POST", "/analyze", {"path": tree})
    assert status == 200
    return json.loads(body)["features"]


class TestModelsEndpoint:
    def test_get_lists_the_live_snapshot(self, hotserver):
        status, _, body = fire(hotserver, "GET", "/models")
        assert status == 200
        doc = json.loads(body)
        assert doc["version"] == 1
        assert doc["default"] == "default"
        assert doc["models"][0]["name"] == "default"

    def test_rescan_bumps_version_keeps_models(self, hotserver):
        status, _, body = fire(hotserver, "POST", "/models", {})
        assert status == 200
        doc = json.loads(body)
        assert doc["version"] == 2
        assert doc["previous_version"] == 1
        assert doc["default"] == "default"
        status, _, body = fire(hotserver, "GET", "/models")
        assert json.loads(body)["version"] == 2

    def test_bad_specs_payloads_are_rejected(self, hotserver):
        for bad in ({"models": []}, {"models": "x=y"},
                    {"models": [7]}, {"rescan": False}):
            status, _, _ = fire(hotserver, "POST", "/models", bad)
            assert status == 400

    def test_corrupt_replacement_leaves_old_store_serving(
            self, hotserver, tmp_path, tree):
        bad = tmp_path / "corrupt.pkl"
        bad.write_bytes(b"this is not a pickled model")
        status, _, body = fire(
            hotserver, "POST", "/models",
            {"models": [f"default={bad}"]})
        assert status == 400
        assert "not a readable model file" in json.loads(body)["error"]
        # old snapshot untouched: version 1, predictions still answer
        status, _, body = fire(hotserver, "GET", "/models")
        assert json.loads(body)["version"] == 1
        features = server_features(hotserver, tree)
        status, _, _ = fire(hotserver, "POST", "/predict",
                            {"features": features})
        assert status == 200

    def test_missing_file_replacement_rejected(self, hotserver):
        status, _, body = fire(
            hotserver, "POST", "/models",
            {"models": ["default=/nonexistent/model.pkl"]})
        assert status == 400
        assert "cannot read model file" in json.loads(body)["error"]


class TestSwapUnderLoad:
    def test_concurrent_requests_across_swap_zero_errors(
            self, hotserver, model_file, tree):
        """Clients hammering /predict across a blue/green swap must see
        only complete responses: every body byte-identical to the
        pre-swap snapshot's output or the post-swap one's, all 200."""
        features = server_features(hotserver, tree)
        doc = {"instances": [features]}
        status, _, pre = fire(hotserver, "POST", "/predict", doc)
        assert status == 200
        assert json.loads(pre)["model"] == "default"
        # Same underlying model file, renamed: predictions identical,
        # but the batched response's "model" field flips — a
        # byte-observable swap with zero numeric drift.
        expected_post = dump_payload({
            "model": "blue",
            "predictions": json.loads(pre)["predictions"],
        })
        results, lock, stop = [], threading.Lock(), threading.Event()

        def hammer():
            while not stop.is_set():
                result = fire(hotserver, "POST", "/predict", doc)
                with lock:
                    results.append(result)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.3)
        status, _, body = fire(
            hotserver, "POST", "/models",
            {"models": [f"blue={model_file}"]})
        assert status == 200
        assert json.loads(body)["version"] == 2
        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join(timeout=15)
        assert results, "hammer threads never completed a request"
        for status, _, body in results:
            assert status == 200
            assert body in (pre, expected_post)
        # the swap must actually have become visible
        status, _, body = fire(hotserver, "POST", "/predict", doc)
        assert status == 200
        assert body == expected_post


class TestSighupRescan:
    @pytest.mark.skipif(not hasattr(signal, "SIGHUP"),
                        reason="SIGHUP is POSIX-only")
    def test_sighup_rescans_specs_on_live_daemon(self, model_file,
                                                 tmp_path):
        """SIGHUP on a real `repro serve` subprocess re-reads the model
        specs from disk and bumps the store version, while the daemon
        keeps answering."""
        stderr_path = tmp_path / "daemon.stderr"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p)
        with open(stderr_path, "w", encoding="utf-8") as stderr:
            daemon = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve",
                 "--model", f"default={model_file}", "--port", "0",
                 "--pool-size", "1", "--no-cache"],
                stdout=subprocess.DEVNULL, stderr=stderr, env=env)
        try:
            url = self._wait_for_url(daemon, stderr_path)
            assert self._models_doc(url)["version"] == 1
            # touch the model file (same bytes) and ask for a re-scan
            os.utime(model_file)
            daemon.send_signal(signal.SIGHUP)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if self._models_doc(url)["version"] == 2:
                    break
                time.sleep(0.2)
            else:
                pytest.fail(
                    "store version never bumped after SIGHUP; stderr:\n"
                    + stderr_path.read_text())
            assert daemon.poll() is None, "daemon died on SIGHUP"
            daemon.send_signal(signal.SIGTERM)
            assert daemon.wait(timeout=30) == 0
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=10)

    @staticmethod
    def _wait_for_url(daemon, stderr_path, deadline_s=60.0):
        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            if daemon.poll() is not None:
                pytest.fail(f"daemon exited {daemon.returncode}:\n"
                            + stderr_path.read_text())
            text = stderr_path.read_text()
            if "listening on " in text:
                url = text.split("listening on ", 1)[1].split()[0]
                try:
                    with urllib.request.urlopen(url + "/healthz",
                                                timeout=5) as resp:
                        if resp.status == 200:
                            return url
                except OSError:
                    pass
            time.sleep(0.2)
        pytest.fail("daemon never came up; stderr:\n"
                    + stderr_path.read_text())

    @staticmethod
    def _models_doc(url):
        with urllib.request.urlopen(url + "/models", timeout=10) as resp:
            return json.loads(resp.read().decode("utf-8"))
