"""Live-socket tests: the daemon end to end over real HTTP.

The load-bearing assertions here are the byte-identity ones — a served
``/analyze`` body must equal the offline ``repro analyze --json``
stdout byte for byte, and a served ``/predict`` must equal the
``prediction`` block the offline CLI computes. The CI serve-smoke leg
re-checks the same contract against a subprocess daemon.
"""

import json
import threading
import time

import pytest

from repro import obs, package_version
from repro.cli import main
from repro.serve import ModelStore, PredictionServer
from repro.serve.payloads import dump_payload

from tests.serve.conftest import http

SOURCE = (
    "#include <string.h>\n"
    "int handle(char *req) {\n"
    "    char buf[32];\n"
    "    strcpy(buf, req);\n"
    "    return 0;\n"
    "}\n"
)


@pytest.fixture
def tree(tmp_path):
    d = tmp_path / "app"
    d.mkdir()
    (d / "app.c").write_text(SOURCE)
    return str(d)


def offline_json(capsys, *argv):
    """Captured stdout of an in-process `repro analyze --json` run."""
    assert main(["analyze", *argv, "--json"]) == 0
    return capsys.readouterr().out


class TestHealth:
    def test_healthz_reports_identity(self, server, client):
        status, _, body = client(server, "GET", "/healthz")
        assert status == 200
        doc = json.loads(body)
        assert doc["status"] == "ok"
        assert doc["version"] == package_version()
        assert doc["models"][0]["name"] == "default"
        assert doc["engine"]["workers"] >= 1
        assert doc["batching"]["queue_depth"] == 64

    def test_port_zero_binds_a_real_port(self, server):
        assert server.port > 0
        assert str(server.port) in server.url


class TestByteIdentity:
    def test_analyze_matches_offline_cli(self, server, client, tree,
                                         capsys):
        offline = offline_json(capsys, tree)
        status, _, body = client(server, "POST", "/analyze", {"path": tree})
        assert status == 200
        assert body == offline

    def test_analyze_with_model_matches_offline_cli(
            self, server, client, tree, model_file, capsys):
        offline = offline_json(capsys, tree, "--model", model_file)
        status, _, body = client(server, "POST", "/analyze",
                                 {"path": tree, "model": "default"})
        assert status == 200
        assert body == offline

    def test_predict_matches_offline_prediction(
            self, server, client, tree, model_file, capsys):
        offline = json.loads(offline_json(capsys, tree, "--model",
                                          model_file))
        status, _, body = client(
            server, "POST", "/predict",
            {"features": offline["features"]})
        assert status == 200
        assert body == dump_payload(offline["prediction"])

    def test_batch_predict_rows_identical_to_single(
            self, server, client, tree, capsys):
        features = json.loads(offline_json(capsys, tree))["features"]
        _, _, single = client(server, "POST", "/predict",
                              {"features": features})
        status, _, body = client(
            server, "POST", "/predict",
            {"instances": [features, features, features]})
        assert status == 200
        predictions = json.loads(body)["predictions"]
        assert len(predictions) == 3
        assert all(p == json.loads(single) for p in predictions)

    def test_batch_analyze_rows_identical_to_single(
            self, server, client, tree, capsys):
        offline = offline_json(capsys, tree)
        status, _, body = client(server, "POST", "/analyze",
                                 {"paths": [tree, tree]})
        assert status == 200
        results = json.loads(body)["results"]
        assert [dump_payload(r) for r in results] == [offline, offline]


class TestConcurrency:
    def test_parallel_predicts_all_answer(self, server, client, tree,
                                          capsys):
        features = json.loads(offline_json(capsys, tree))["features"]
        statuses = []
        lock = threading.Lock()

        def fire():
            status, _, _ = client(server, "POST", "/predict",
                                  {"features": features})
            with lock:
                statuses.append(status)

        threads = [threading.Thread(target=fire) for _ in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert statuses == [200] * 12

    def test_metricz_sees_served_traffic(self, server, client, tree,
                                         capsys):
        features = json.loads(offline_json(capsys, tree))["features"]
        client(server, "POST", "/predict", {"features": features})
        client(server, "GET", "/healthz")
        status, _, body = client(server, "GET", "/metricz")
        assert status == 200
        snapshot = json.loads(body)
        assert snapshot["counters"]["serve.requests"] >= 3
        assert snapshot["histograms"]["serve.predict.seconds"]["count"] >= 1
        assert snapshot["histograms"]["serve.batch_size"]["count"] >= 1


class TestLoadShedding:
    @pytest.fixture
    def congested(self, store):
        """A server whose model hop blocks until `release` is set.

        batch_size=1 and queue_depth=1 mean: one request in flight, one
        queued, everything else must shed with 503 + Retry-After.
        """
        server = PredictionServer(
            store, port=0, batch_window=0.0, batch_size=1, queue_depth=1)
        release = threading.Event()
        fast_path = server.batcher._process

        def blocked(items):
            release.wait(timeout=10)
            return fast_path(items)

        server.batcher._process = blocked
        server.start()
        yield server, release
        release.set()
        server.stop()
        obs.disable()

    def test_saturated_queue_returns_503_with_retry_after(
            self, congested, tree, capsys):
        server, release = congested
        features = json.loads(offline_json(capsys, tree))["features"]
        results = {}
        lock = threading.Lock()

        def fire(index):
            result = http(server, "POST", "/predict",
                          {"features": features})
            with lock:
                results[index] = result

        threads = [threading.Thread(target=fire, args=(i,))
                   for i in range(3)]
        for t in threads:
            t.start()
            time.sleep(0.3)  # in-flight, queued, then overflow
        started = time.perf_counter()
        threads[2].join(timeout=5)
        # the shed response must come back long before the model hop
        # unblocks — a saturated server answers, it does not hang
        assert time.perf_counter() - started < 5
        status, headers, body = results[2]
        assert status == 503
        assert int(headers["Retry-After"]) >= 1
        assert "queue is full" in json.loads(body)["error"]
        release.set()
        for t in threads:
            t.join(timeout=10)
        assert results[0][0] == 200
        assert results[1][0] == 200

    def test_server_survives_shedding(self, congested, tree, capsys):
        """After a shed burst the daemon answers normally again."""
        server, release = congested
        features = json.loads(offline_json(capsys, tree))["features"]
        threads = [
            threading.Thread(
                target=http,
                args=(server, "POST", "/predict"),
                kwargs={"doc": {"features": features}})
            for _ in range(6)
        ]
        for t in threads:
            t.start()
        time.sleep(0.5)
        release.set()
        for t in threads:
            t.join(timeout=10)
        status, _, body = http(server, "GET", "/healthz")
        assert status == 200
        status, _, body = http(server, "GET", "/metricz")
        assert json.loads(body)["counters"].get("serve.shed", 0) >= 1


class TestLifecycle:
    def test_stop_releases_the_port(self, store):
        server = PredictionServer(store, port=0)
        server.start()
        port = server.port
        server.stop()
        # the port must be immediately rebindable
        rebound = PredictionServer(store, port=port)
        rebound.start()
        rebound.stop()
        obs.disable()

    def test_reuses_existing_obs_session(self, store):
        session = obs.configure()
        server = PredictionServer(store, port=0)
        try:
            assert obs.active() is session
        finally:
            server.httpd.server_close()
            server.batcher.stop()
            obs.disable()
