"""``POST /gate`` and the uniform ``schema_version`` stamp.

The byte-identity contract is the headline: the daemon's ``/gate``
response body must equal ``repro gate --json`` for the same inputs,
because product surfaces (CI annotations, dashboards) diff and cache
these documents.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.serve import PredictionServer
from repro.serve.handlers import handle_request
from repro.serve.payloads import SCHEMA_VERSION

SAFE_C = (
    "#include <string.h>\n"
    "int handle(const char *req, char *out, unsigned cap) {\n"
    "    strncpy(out, req, cap - 1);\n"
    "    out[cap - 1] = 0;\n"
    "    return 0;\n"
    "}\n"
)

RISKY_C = (
    "#include <string.h>\n"
    "int handle(char *req) {\n"
    "    char buf[32];\n"
    "    strcpy(buf, req);\n"
    "    system(req);\n"
    "    return 0;\n"
    "}\n"
)


@pytest.fixture
def app(store):
    server = PredictionServer(store, port=0, batch_window=0.005)
    server.batcher.start()
    yield server
    server.batcher.stop()
    server.httpd.server_close()
    obs.disable()


@pytest.fixture
def trees(tmp_path):
    base = tmp_path / "base"
    head = tmp_path / "head"
    base.mkdir()
    head.mkdir()
    (base / "app.c").write_text(SAFE_C)
    (head / "app.c").write_text(RISKY_C)
    return str(base), str(head)


def call(app, method, path, doc=None):
    body = json.dumps(doc).encode() if doc is not None else b""
    response = handle_request(app, method, path, body)
    return response, json.loads(response.body.decode())


class TestGateEndpoint:
    def test_breach_is_still_200(self, app, trees):
        base, head = trees
        response, doc = call(app, "POST", "/gate",
                             {"base": base, "head": head,
                              "threshold": 0.0})
        assert response.status == 200
        assert doc["breach"] is True
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["mode"] == "features"

    def test_model_mode_via_store(self, app, trees):
        base, head = trees
        response, doc = call(app, "POST", "/gate",
                             {"base": base, "head": head,
                              "model": "default", "threshold": 0.0})
        assert response.status == 200
        assert doc["mode"] == "model"
        assert doc["probability_deltas"]

    def test_get_is_405(self, app):
        response, _ = call(app, "GET", "/gate")
        assert response.status == 405

    def test_missing_specs_400(self, app):
        response, doc = call(app, "POST", "/gate", {})
        assert response.status == 400
        assert "'base' and 'head'" in doc["error"]

    def test_non_string_spec_400(self, app, trees):
        response, _ = call(app, "POST", "/gate",
                           {"base": 7, "head": trees[1]})
        assert response.status == 400

    def test_missing_directory_400(self, app, trees):
        response, doc = call(app, "POST", "/gate",
                             {"base": trees[0] + "-nope",
                              "head": trees[1]})
        assert response.status == 400
        assert "not a directory" in doc["error"]

    def test_empty_head_400(self, app, trees, tmp_path):
        empty = tmp_path / "void"
        empty.mkdir()
        response, doc = call(app, "POST", "/gate",
                             {"base": trees[0], "head": str(empty)})
        assert response.status == 400
        assert "head tree" in doc["error"]

    def test_empty_base_gates_fine(self, app, trees, tmp_path):
        empty = tmp_path / "void2"
        empty.mkdir()
        response, doc = call(app, "POST", "/gate",
                             {"base": str(empty), "head": trees[1],
                              "threshold": 0.0})
        assert response.status == 200
        assert doc["counts"]["added"] == 1

    @pytest.mark.parametrize("threshold", [
        float("nan"), float("inf"), True, "0.1", None])
    def test_bad_threshold_400(self, app, trees, threshold):
        response, doc = call(app, "POST", "/gate",
                             {"base": trees[0], "head": trees[1],
                              "threshold": threshold})
        assert response.status == 400
        assert "finite number" in doc["error"]

    def test_bad_seed_400(self, app, trees):
        response, _ = call(app, "POST", "/gate",
                           {"base": trees[0], "head": trees[1],
                            "seed": "zero"})
        assert response.status == 400

    def test_unknown_model_404(self, app, trees):
        response, _ = call(app, "POST", "/gate",
                           {"base": trees[0], "head": trees[1],
                            "model": "canary"})
        assert response.status == 404


class TestByteIdentity:
    def test_served_bytes_equal_cli_json(self, app, trees, capsys):
        from repro.cli import main

        base, head = trees
        exit_code = main(["gate", base, head, "--features-only",
                          "--threshold", "0.0", "--json"])
        cli_bytes = capsys.readouterr().out
        assert exit_code == 3  # breach
        body = json.dumps({"base": base, "head": head,
                           "threshold": 0.0}).encode()
        response = handle_request(app, "POST", "/gate", body)
        assert response.status == 200
        assert response.body.decode() == cli_bytes


class TestSchemaVersionStamp:
    """Every JSON endpoint carries the same schema_version."""

    def test_healthz(self, app):
        _, doc = call(app, "GET", "/healthz")
        assert doc["schema_version"] == SCHEMA_VERSION

    def test_metricz_json(self, app):
        _, doc = call(app, "GET", "/metricz?format=json")
        assert doc["schema_version"] == SCHEMA_VERSION

    def test_models(self, app):
        _, doc = call(app, "GET", "/models")
        assert doc["schema_version"] == SCHEMA_VERSION

    def test_predict(self, app):
        _, doc = call(app, "POST", "/predict",
                      {"features": {"loc.total": 10.0}})
        assert doc["schema_version"] == SCHEMA_VERSION

    def test_gate(self, app, trees):
        _, doc = call(app, "POST", "/gate",
                      {"base": trees[0], "head": trees[1]})
        assert doc["schema_version"] == SCHEMA_VERSION
