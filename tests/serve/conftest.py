"""Serving-layer fixtures: a saved model, a store, a live server.

The server fixture binds port 0 (a free port) and runs the real
`ThreadingHTTPServer` in a background thread, so the suite exercises
actual sockets, concurrent handler threads, and the micro-batcher —
not a mocked transport.
"""

from __future__ import annotations

import json
import pickle
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.serve import ModelStore, PredictionServer


@pytest.fixture(scope="module")
def model_file(tmp_path_factory, small_training):
    path = tmp_path_factory.mktemp("serve-model") / "model.pkl"
    with open(path, "wb") as handle:
        pickle.dump(small_training.model, handle)
    return str(path)


@pytest.fixture
def store(model_file):
    return ModelStore.from_specs([f"default={model_file}"])


@pytest.fixture
def server(store):
    srv = PredictionServer(store, port=0, batch_window=0.005)
    srv.start()
    yield srv
    srv.stop()
    obs.disable()


def http(server, method, path, doc=None, timeout=15):
    """One request against a live test server -> (status, headers, body)."""
    data = json.dumps(doc).encode() if doc is not None else None
    request = urllib.request.Request(
        server.url + path, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), resp.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read().decode()


@pytest.fixture
def client():
    return http
