"""Transport-free routing/validation tests via handle_request."""

import json
import threading
import time

import pytest

from repro import obs
from repro.serve import PredictionServer
from repro.serve import handlers
from repro.serve.handlers import HTTPError, Response, handle_request


@pytest.fixture
def app(store):
    server = PredictionServer(store, port=0, batch_window=0.005)
    server.batcher.start()  # handlers need the collector, not the socket
    yield server
    server.batcher.stop()
    server.httpd.server_close()
    obs.disable()


def call(app, method, path, doc=None):
    body = json.dumps(doc).encode() if doc is not None else b""
    response = handle_request(app, method, path, body)
    return response, json.loads(response.body.decode())


FEATURES = {"loc.total": 120.0, "complexity.per_kloc": 4.5}


class TestRouting:
    def test_unknown_path_404(self, app):
        response, doc = call(app, "GET", "/nope")
        assert response.status == 404
        assert "no such endpoint" in doc["error"]

    def test_wrong_method_405_with_allow(self, app):
        response, doc = call(app, "POST", "/healthz", {})
        assert response.status == 405
        assert ("Allow", "GET") in response.headers

    def test_trailing_slash_and_query_normalised(self, app):
        response, _ = call(app, "GET", "/healthz/")
        assert response.status == 200
        response, _ = call(app, "GET", "/healthz?verbose=1")
        assert response.status == 200

    def test_invalid_json_400(self, app):
        response = handle_request(app, "POST", "/predict", b"{not json")
        assert response.status == 400

    def test_non_object_body_400(self, app):
        response = handle_request(app, "POST", "/predict", b"[1, 2]")
        assert response.status == 400


class TestPredictValidation:
    def test_missing_keys_400(self, app):
        response, doc = call(app, "POST", "/predict", {})
        assert response.status == 400
        assert "'features' or 'instances'" in doc["error"]

    def test_non_numeric_feature_400(self, app):
        response, _ = call(app, "POST", "/predict",
                           {"features": {"loc.total": "many"}})
        assert response.status == 400

    def test_boolean_feature_rejected(self, app):
        response, _ = call(app, "POST", "/predict",
                           {"features": {"loc.total": True}})
        assert response.status == 400

    def test_empty_instances_400(self, app):
        response, _ = call(app, "POST", "/predict", {"instances": []})
        assert response.status == 400

    def test_unknown_model_404(self, app):
        response, doc = call(app, "POST", "/predict",
                             {"features": FEATURES, "model": "canary"})
        assert response.status == 404
        assert "unknown model" in doc["error"]

    def test_single_predict_shape(self, app):
        response, doc = call(app, "POST", "/predict", {"features": FEATURES})
        assert response.status == 200
        assert set(doc) == {"schema_version", "probabilities", "estimates",
                            "overall_risk"}
        assert doc["schema_version"] == 1

    def test_batch_predict_shape(self, app):
        response, doc = call(
            app, "POST", "/predict",
            {"instances": [FEATURES, FEATURES, FEATURES]})
        assert response.status == 200
        assert doc["model"] == "default"
        assert len(doc["predictions"]) == 3
        assert doc["predictions"][0] == doc["predictions"][2]


class TestAnalyzeValidation:
    def test_missing_path_400(self, app):
        response, doc = call(app, "POST", "/analyze", {})
        assert response.status == 400
        assert "'path' or 'paths'" in doc["error"]

    def test_empty_tree_400(self, app, tmp_path):
        response, doc = call(app, "POST", "/analyze",
                             {"path": str(tmp_path)})
        assert response.status == 400
        assert "no recognised source files" in doc["error"]

    def test_bad_dynamic_400(self, app):
        response, _ = call(app, "POST", "/analyze",
                           {"path": "x", "dynamic": "yes"})
        assert response.status == 400


@pytest.fixture
def app_factory(store):
    """Build PredictionServers with custom batching/timeout knobs."""
    servers = []

    def make(**kwargs):
        server = PredictionServer(store, port=0, **kwargs)
        servers.append(server)
        return server

    yield make
    for server in servers:
        server.batcher.stop()
        server.httpd.server_close()
    obs.disable()


class TestOverloadPaths:
    """The shed and timeout paths must not leak or waste model work."""

    def test_shed_mid_batch_cancels_enqueued_futures(self, app_factory):
        """A 503 on instance k must orphan zero already-queued rows.

        Regression: shedding mid-submit re-raised immediately, leaving
        the first k-1 futures queued; the collector then ran the model
        on rows nobody would ever collect.
        """
        app = app_factory(batch_window=0.0, batch_size=1, queue_depth=2,
                          request_timeout=5.0)
        release = threading.Event()
        processed = []
        real_process = app.batcher._process

        def slow_process(items):
            release.wait(timeout=10)
            processed.extend(items)
            return real_process(items)

        app.batcher._process = slow_process
        app.batcher.start()
        try:
            model = app.store.get(None)
            # occupy the collector so queued entries stay queued
            first = app.batcher.submit((model, dict(FEATURES)))
            time.sleep(0.1)
            obs.configure()
            # depth 2: instances 1 and 2 queue, instance 3 sheds
            response, doc = call(
                app, "POST", "/predict",
                {"instances": [FEATURES, FEATURES, FEATURES]})
            assert response.status == 503
            assert ("Retry-After", "1") in response.headers
            counters = obs.active().metrics.snapshot()["counters"]
            assert counters["serve.shed"] == 1
            assert counters["serve.cancelled"] == 2
            assert "serve.discarded" not in counters
            release.set()
            first.result(timeout=5)
            # the collector must drop both orphans without model work
            for _ in range(100):
                if app.batcher._queue.empty():
                    break
                time.sleep(0.02)
            time.sleep(0.1)
            assert len(processed) == 1
        finally:
            release.set()

    def test_timeout_is_one_wall_clock_deadline(self, app_factory):
        """request_timeout bounds the whole batch, not each future.

        With batch_size=1 and a model that takes ~0.25 s per batch,
        four instances resolve at 0.25 s intervals. Waiting 0.5 s *per
        future* would always make incremental progress and return 200
        after ~1 s; a single 0.5 s deadline must 503 at ~0.5 s.
        """
        app = app_factory(batch_window=0.0, batch_size=1, queue_depth=8,
                          request_timeout=0.5)
        real_process = app.batcher._process

        def slow_process(items):
            time.sleep(0.25)
            return real_process(items)

        app.batcher._process = slow_process
        app.batcher.start()
        obs.configure()
        started = time.perf_counter()
        response, doc = call(
            app, "POST", "/predict",
            {"instances": [FEATURES, FEATURES, FEATURES, FEATURES]})
        elapsed = time.perf_counter() - started
        assert response.status == 503
        assert "timed out" in doc["error"]
        assert ("Retry-After", "1") in response.headers
        # well under the 4 x 0.25 s the compounding bug needed
        assert elapsed < 0.9
        counters = obs.active().metrics.snapshot()["counters"]
        # the uncollected tail was cancelled and/or dropped, never lost
        leftovers = counters.get("serve.cancelled", 0) \
            + counters.get("serve.discarded", 0)
        assert leftovers >= 1


class TestHeaderAliasing:
    def test_response_copies_caller_header_list(self):
        shared = [("Allow", "GET")]
        response = Response(status=405, body=b"{}", headers=shared)
        response.headers.append(("X-Trace-Id", "abc"))
        assert shared == [("Allow", "GET")]

    def test_reused_http_error_does_not_accumulate_headers(
            self, app, monkeypatch):
        """A long-lived HTTPError's header list must stay pristine.

        Regression: Response aliased the error's list, so the router's
        per-request trace headers accumulated on the exception and
        every retry answered with one more copy.
        """
        error = HTTPError(429, "slow down",
                          headers=[("Retry-After", "7")])

        def always_throttled(app_, doc, ctx):
            raise error

        monkeypatch.setitem(handlers._HANDLERS, "/healthz",
                            always_throttled)
        for _ in range(3):
            response, doc = call(app, "GET", "/healthz")
            assert response.status == 429
            retry = [v for k, v in response.headers if k == "Retry-After"]
            assert retry == ["7"]
            trace = [v for k, v in response.headers if k == "X-Trace-Id"]
            assert len(trace) == 1
        assert error.headers == [("Retry-After", "7")]


class TestTelemetry:
    def test_requests_and_errors_counted(self, app):
        obs.configure()
        call(app, "GET", "/healthz")
        call(app, "GET", "/nope")
        session = obs.active()
        counters = session.metrics.snapshot()["counters"]
        assert counters["serve.requests"] == 2
        assert counters["serve.errors"] == 1
        assert counters["serve.errors.404"] == 1

    def test_endpoint_latency_histograms(self, app):
        obs.configure()
        call(app, "GET", "/healthz")
        call(app, "POST", "/predict", {"features": FEATURES})
        call(app, "GET", "/bogus")
        histograms = obs.active().metrics.snapshot()["histograms"]
        assert histograms["serve.healthz.seconds"]["count"] == 1
        assert histograms["serve.predict.seconds"]["count"] == 1
        # unknown paths share one histogram: no unbounded metric names
        assert histograms["serve.unknown.seconds"]["count"] == 1

    def test_profile_report_gains_serving_section(self, app):
        obs.configure()
        call(app, "GET", "/healthz")
        call(app, "POST", "/predict", {"features": FEATURES})
        report = obs.format_run_report(obs.active())
        assert "serving:" in report
        assert "/predict" in report
        assert "requests=2" in report
