"""Transport-free routing/validation tests via handle_request."""

import json

import pytest

from repro import obs
from repro.serve import PredictionServer
from repro.serve.handlers import handle_request


@pytest.fixture
def app(store):
    server = PredictionServer(store, port=0, batch_window=0.005)
    server.batcher.start()  # handlers need the collector, not the socket
    yield server
    server.batcher.stop()
    server.httpd.server_close()
    obs.disable()


def call(app, method, path, doc=None):
    body = json.dumps(doc).encode() if doc is not None else b""
    response = handle_request(app, method, path, body)
    return response, json.loads(response.body.decode())


FEATURES = {"loc.total": 120.0, "complexity.per_kloc": 4.5}


class TestRouting:
    def test_unknown_path_404(self, app):
        response, doc = call(app, "GET", "/nope")
        assert response.status == 404
        assert "no such endpoint" in doc["error"]

    def test_wrong_method_405_with_allow(self, app):
        response, doc = call(app, "POST", "/healthz", {})
        assert response.status == 405
        assert ("Allow", "GET") in response.headers

    def test_trailing_slash_and_query_normalised(self, app):
        response, _ = call(app, "GET", "/healthz/")
        assert response.status == 200
        response, _ = call(app, "GET", "/healthz?verbose=1")
        assert response.status == 200

    def test_invalid_json_400(self, app):
        response = handle_request(app, "POST", "/predict", b"{not json")
        assert response.status == 400

    def test_non_object_body_400(self, app):
        response = handle_request(app, "POST", "/predict", b"[1, 2]")
        assert response.status == 400


class TestPredictValidation:
    def test_missing_keys_400(self, app):
        response, doc = call(app, "POST", "/predict", {})
        assert response.status == 400
        assert "'features' or 'instances'" in doc["error"]

    def test_non_numeric_feature_400(self, app):
        response, _ = call(app, "POST", "/predict",
                           {"features": {"loc.total": "many"}})
        assert response.status == 400

    def test_boolean_feature_rejected(self, app):
        response, _ = call(app, "POST", "/predict",
                           {"features": {"loc.total": True}})
        assert response.status == 400

    def test_empty_instances_400(self, app):
        response, _ = call(app, "POST", "/predict", {"instances": []})
        assert response.status == 400

    def test_unknown_model_404(self, app):
        response, doc = call(app, "POST", "/predict",
                             {"features": FEATURES, "model": "canary"})
        assert response.status == 404
        assert "unknown model" in doc["error"]

    def test_single_predict_shape(self, app):
        response, doc = call(app, "POST", "/predict", {"features": FEATURES})
        assert response.status == 200
        assert set(doc) == {"schema_version", "probabilities", "estimates",
                            "overall_risk"}
        assert doc["schema_version"] == 1

    def test_batch_predict_shape(self, app):
        response, doc = call(
            app, "POST", "/predict",
            {"instances": [FEATURES, FEATURES, FEATURES]})
        assert response.status == 200
        assert doc["model"] == "default"
        assert len(doc["predictions"]) == 3
        assert doc["predictions"][0] == doc["predictions"][2]


class TestAnalyzeValidation:
    def test_missing_path_400(self, app):
        response, doc = call(app, "POST", "/analyze", {})
        assert response.status == 400
        assert "'path' or 'paths'" in doc["error"]

    def test_empty_tree_400(self, app, tmp_path):
        response, doc = call(app, "POST", "/analyze",
                             {"path": str(tmp_path)})
        assert response.status == 400
        assert "no recognised source files" in doc["error"]

    def test_bad_dynamic_400(self, app):
        response, _ = call(app, "POST", "/analyze",
                           {"path": "x", "dynamic": "yes"})
        assert response.status == 400


class TestTelemetry:
    def test_requests_and_errors_counted(self, app):
        obs.configure()
        call(app, "GET", "/healthz")
        call(app, "GET", "/nope")
        session = obs.active()
        counters = session.metrics.snapshot()["counters"]
        assert counters["serve.requests"] == 2
        assert counters["serve.errors"] == 1
        assert counters["serve.errors.404"] == 1

    def test_endpoint_latency_histograms(self, app):
        obs.configure()
        call(app, "GET", "/healthz")
        call(app, "POST", "/predict", {"features": FEATURES})
        call(app, "GET", "/bogus")
        histograms = obs.active().metrics.snapshot()["histograms"]
        assert histograms["serve.healthz.seconds"]["count"] == 1
        assert histograms["serve.predict.seconds"]["count"] == 1
        # unknown paths share one histogram: no unbounded metric names
        assert histograms["serve.unknown.seconds"]["count"] == 1

    def test_profile_report_gains_serving_section(self, app):
        obs.configure()
        call(app, "GET", "/healthz")
        call(app, "POST", "/predict", {"features": FEATURES})
        report = obs.format_run_report(obs.active())
        assert "serving:" in report
        assert "/predict" in report
        assert "requests=2" in report
