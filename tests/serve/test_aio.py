"""The asyncio tier over real sockets: keep-alive, identity, shedding.

The async daemon must be byte-for-byte interchangeable with the
threaded tier (same handlers, same payload layer), while adding what
the threaded tier lacks: persistent connections, loop-level load
shedding, and engine-pool ``/analyze`` concurrency.
"""

import http.client
import json
import socket
import threading
import time

import pytest

from repro import obs, package_version
from repro.cli import main
from repro.engine import EngineConfig
from repro.serve import AsyncPredictionServer, ModelStore
from repro.serve.payloads import dump_payload

from tests.serve.conftest import http as fire

SOURCE = (
    "#include <string.h>\n"
    "int handle(char *req) {\n"
    "    char buf[32];\n"
    "    strcpy(buf, req);\n"
    "    return 0;\n"
    "}\n"
)


@pytest.fixture
def tree(tmp_path):
    d = tmp_path / "app"
    d.mkdir()
    (d / "app.c").write_text(SOURCE)
    return str(d)


def offline_json(capsys, *argv):
    assert main(["analyze", *argv, "--json"]) == 0
    return capsys.readouterr().out


@pytest.fixture
def aserver(store):
    srv = AsyncPredictionServer(
        store, config=EngineConfig(no_cache=True), port=0, pool_size=1,
        batch_window=0.005)
    srv.start()
    yield srv
    srv.stop()
    obs.disable()


class TestIdentity:
    def test_healthz_reports_pool_and_inflight(self, aserver):
        status, _, body = fire(aserver, "GET", "/healthz")
        assert status == 200
        doc = json.loads(body)
        assert doc["status"] == "ok"
        assert doc["version"] == package_version()
        assert doc["pool"]["size"] == 1
        assert doc["inflight"]["max"] == aserver.max_inflight
        assert doc["engine"]["workers"] == 1

    def test_analyze_matches_offline_cli(self, aserver, tree, capsys):
        offline = offline_json(capsys, tree)
        status, _, body = fire(aserver, "POST", "/analyze",
                               {"path": tree})
        assert status == 200
        assert body == offline

    def test_predict_matches_offline_prediction(self, aserver, tree,
                                                model_file, capsys):
        offline = json.loads(
            offline_json(capsys, tree, "--model", model_file))
        status, _, body = fire(aserver, "POST", "/predict",
                               {"features": offline["features"]})
        assert status == 200
        assert body == dump_payload(offline["prediction"])

    def test_unknown_endpoint_and_method(self, aserver):
        status, _, _ = fire(aserver, "GET", "/nope")
        assert status == 404
        status, headers, _ = fire(aserver, "POST", "/healthz", {})
        assert status == 405
        assert headers["Allow"] == "GET"


class TestKeepAlive:
    def test_two_requests_reuse_one_connection(self, aserver):
        conn = http.client.HTTPConnection(
            aserver.host, aserver.port, timeout=15)
        try:
            conn.request("GET", "/healthz")
            first = conn.getresponse()
            body_one = first.read()
            assert first.status == 200
            assert first.headers["Connection"] == "keep-alive"
            sock_before = conn.sock
            conn.request("GET", "/healthz")
            second = conn.getresponse()
            assert second.status == 200
            assert json.loads(second.read()) == json.loads(body_one)
            # http.client only reuses the socket when the server kept
            # the connection open; same object means true keep-alive.
            assert conn.sock is sock_before
        finally:
            conn.close()

    def test_connection_close_honoured(self, aserver):
        conn = http.client.HTTPConnection(
            aserver.host, aserver.port, timeout=15)
        try:
            conn.request("GET", "/healthz",
                         headers={"Connection": "close"})
            response = conn.getresponse()
            response.read()
            assert response.headers["Connection"] == "close"
        finally:
            conn.close()

    def test_malformed_request_line_gets_400(self, aserver):
        with socket.create_connection(
                (aserver.host, aserver.port), timeout=10) as raw:
            raw.sendall(b"NONSENSE\r\n\r\n")
            reply = raw.recv(65536)
        assert reply.startswith(b"HTTP/1.1 400 ")


class TestConcurrency:
    def test_parallel_predicts_all_answer(self, aserver, tree, capsys):
        features = json.loads(offline_json(capsys, tree))["features"]
        statuses, lock = [], threading.Lock()

        def one():
            status, _, _ = fire(aserver, "POST", "/predict",
                                {"features": features})
            with lock:
                statuses.append(status)

        threads = [threading.Thread(target=one) for _ in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert statuses == [200] * 12

    def test_loop_sheds_beyond_max_inflight(self, store, tree, capsys):
        """With max_inflight=1 and a wedged model hop, the second
        request is refused at the loop with 503 + Retry-After — the
        daemon answers under overload instead of queueing silently."""
        srv = AsyncPredictionServer(
            store, config=EngineConfig(no_cache=True), port=0,
            pool_size=1, max_inflight=1, batch_window=0.0)
        release = threading.Event()
        fast_path = srv.batcher._process

        def blocked(items):
            release.wait(timeout=15)
            return fast_path(items)

        srv.batcher._process = blocked
        srv.start()
        try:
            features = json.loads(offline_json(capsys, tree))["features"]
            results = {}

            def first():
                results["first"] = fire(srv, "POST", "/predict",
                                        {"features": features})

            holder = threading.Thread(target=first)
            holder.start()
            time.sleep(0.5)  # let the first request occupy the slot
            status, headers, body = fire(srv, "POST", "/predict",
                                         {"features": features})
            assert status == 503
            assert int(headers["Retry-After"]) >= 1
            assert "capacity" in json.loads(body)["error"]
            release.set()
            holder.join(timeout=15)
            assert results["first"][0] == 200
            # and the daemon is healthy again afterwards
            status, _, _ = fire(srv, "GET", "/healthz")
            assert status == 200
        finally:
            release.set()
            srv.stop()
            obs.disable()


class TestLifecycle:
    def test_stop_releases_the_port(self, store):
        srv = AsyncPredictionServer(
            store, config=EngineConfig(no_cache=True), port=0,
            pool_size=1)
        srv.start()
        port = srv.port
        srv.stop()
        rebound = AsyncPredictionServer(
            store, config=EngineConfig(no_cache=True), port=port,
            pool_size=1)
        rebound.start()
        rebound.stop()
        obs.disable()

    def test_port_zero_is_discoverable_before_start(self, store):
        srv = AsyncPredictionServer(
            store, config=EngineConfig(no_cache=True), port=0,
            pool_size=1)
        try:
            assert srv.port > 0
        finally:
            srv.stop()
            obs.disable()
