"""Model bundle loading/validation and the named store."""

import pickle

import pytest

from repro.core.model import SecurityModel
from repro.serve import ModelLoadError, ModelStore, load_model


class TestLoadModel:
    def test_valid_model_loads(self, model_file):
        model = load_model(model_file)
        assert isinstance(model, SecurityModel)
        assert model.format_version == SecurityModel.FORMAT_VERSION

    def test_missing_file(self, tmp_path):
        with pytest.raises(ModelLoadError, match="cannot read model file"):
            load_model(str(tmp_path / "nope.pkl"))

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "junk.pkl"
        path.write_bytes(b"this is not a pickle")
        with pytest.raises(ModelLoadError, match="not a readable model"):
            load_model(str(path))

    def test_wrong_type(self, tmp_path):
        path = tmp_path / "other.pkl"
        with open(path, "wb") as handle:
            pickle.dump({"not": "a model"}, handle)
        with pytest.raises(ModelLoadError, match="not a saved model"):
            load_model(str(path))

    def test_stale_format_version(self, tmp_path, model_file):
        model = load_model(model_file)
        model.format_version = SecurityModel.FORMAT_VERSION - 1
        path = tmp_path / "stale.pkl"
        with open(path, "wb") as handle:
            pickle.dump(model, handle)
        with pytest.raises(ModelLoadError, match="model format version"):
            load_model(str(path))


class TestModelStore:
    def test_bare_path_named_after_stem(self, model_file):
        store = ModelStore.from_specs([model_file])
        assert store.names() == ["model"]
        assert store.default_name == "model"

    def test_named_specs_and_default(self, model_file):
        store = ModelStore.from_specs(
            [f"primary={model_file}", f"canary={model_file}"])
        assert store.default_name == "primary"
        assert store.names() == ["primary", "canary"]
        assert store.get() is store.get("primary")
        assert store.get("canary") is not None

    def test_unknown_name_raises_keyerror(self, model_file):
        store = ModelStore.from_specs([model_file])
        with pytest.raises(KeyError):
            store.get("missing")

    def test_duplicate_name_rejected(self, model_file):
        with pytest.raises(ModelLoadError, match="duplicate model name"):
            ModelStore.from_specs([f"m={model_file}", f"m={model_file}"])

    def test_empty_specs_rejected(self):
        with pytest.raises(ModelLoadError, match="at least one"):
            ModelStore.from_specs([])

    def test_bad_spec_rejected(self, model_file):
        with pytest.raises(ModelLoadError, match="bad model spec"):
            ModelStore.from_specs([f"={model_file}"])

    def test_describe_reports_identity(self, model_file):
        store = ModelStore.from_specs([f"default={model_file}"])
        (entry,) = store.describe()
        assert entry["name"] == "default"
        assert entry["default"] is True
        assert entry["format_version"] == SecurityModel.FORMAT_VERSION
        assert entry["features"] > 0
        assert entry["hypotheses"] > 0
