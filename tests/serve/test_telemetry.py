"""Serving telemetry: /metricz negotiation, trace identity, access log.

Transport-free where possible (handle_request with an explicit header
map); the acceptance test drives a real extraction through /analyze and
walks the exported span tree.
"""

import json

import pytest

from repro import obs
from repro.obs.export import read_jsonl
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.serve import PredictionServer
from repro.serve.accesslog import AccessLog
from repro.serve.handlers import handle_request

FEATURES = {"loc.total": 120.0, "complexity.per_kloc": 4.5}

SOURCE = (
    "#include <string.h>\n"
    "int handle(char *req) {\n"
    "    char buf[32];\n"
    "    strcpy(buf, req);\n"
    "    return 0;\n"
    "}\n"
)


@pytest.fixture
def app(store):
    server = PredictionServer(store, port=0, batch_window=0.005)
    server.batcher.start()
    yield server
    server.batcher.stop()
    server.httpd.server_close()
    obs.disable()


def call(app, method, path, doc=None, headers=None):
    body = json.dumps(doc).encode() if doc is not None else b""
    return handle_request(app, method, path, body, headers=headers)


class TestMetriczNegotiation:
    def test_json_by_default(self, app):
        response = call(app, "GET", "/metricz")
        assert response.status == 200
        assert response.content_type == "application/json"
        snapshot = json.loads(response.body.decode())
        assert set(snapshot) == {
            "counters", "gauges", "histograms", "schema_version"}
        assert snapshot["counters"]["serve.requests"] >= 1

    def test_prometheus_when_text_plain_accepted(self, app):
        call(app, "GET", "/healthz")
        response = call(app, "GET", "/metricz",
                        headers={"Accept": "text/plain"})
        assert response.status == 200
        assert response.content_type == PROMETHEUS_CONTENT_TYPE
        text = response.body.decode()
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total" in text

    def test_prometheus_when_openmetrics_accepted(self, app):
        response = call(
            app, "GET", "/metricz",
            headers={"Accept": "application/openmetrics-text;version=1.0"})
        assert response.content_type == PROMETHEUS_CONTENT_TYPE

    def test_json_for_other_accept_values(self, app):
        response = call(app, "GET", "/metricz",
                        headers={"Accept": "application/json"})
        assert response.content_type == "application/json"
        json.loads(response.body.decode())


class TestTraceIdentity:
    def test_response_carries_trace_headers(self, app):
        response = call(app, "GET", "/healthz")
        headers = dict(response.headers)
        trace_id = headers["X-Trace-Id"]
        assert len(trace_id) == 32
        int(trace_id, 16)
        assert obs.parse_traceparent(headers["traceparent"]) == trace_id

    def test_inbound_traceparent_is_honoured(self, app):
        trace = "11112222333344445555666677778888"
        response = call(
            app, "GET", "/healthz",
            headers={"traceparent": f"00-{trace}-00000000000000ff-01"})
        headers = dict(response.headers)
        assert headers["X-Trace-Id"] == trace
        assert obs.parse_traceparent(headers["traceparent"]) == trace

    def test_header_lookup_is_case_insensitive(self, app):
        trace = "11112222333344445555666677778888"
        response = call(
            app, "GET", "/healthz",
            headers={"Traceparent": f"00-{trace}-00000000000000ff-01"})
        assert dict(response.headers)["X-Trace-Id"] == trace

    def test_malformed_traceparent_mints_fresh_id(self, app):
        response = call(app, "GET", "/healthz",
                        headers={"traceparent": "garbage"})
        trace_id = dict(response.headers)["X-Trace-Id"]
        assert len(trace_id) == 32
        assert trace_id != "0" * 32

    def test_distinct_requests_get_distinct_traces(self, app):
        ids = {dict(call(app, "GET", "/healthz").headers)["X-Trace-Id"]
               for _ in range(5)}
        assert len(ids) == 5

    def test_error_responses_still_carry_trace_headers(self, app):
        response = call(app, "GET", "/nope")
        assert response.status == 404
        assert "X-Trace-Id" in dict(response.headers)


class TestAccessLog:
    def read_lines(self, path):
        with open(path, encoding="utf-8") as handle:
            return [json.loads(line) for line in handle if line.strip()]

    def test_one_json_line_per_request(self, app, tmp_path):
        path = str(tmp_path / "access.jsonl")
        app.access_log = AccessLog(path)
        call(app, "GET", "/healthz")
        response = call(app, "POST", "/predict", {"features": FEATURES})
        assert response.status == 200
        call(app, "GET", "/nope")
        app.access_log.close()
        lines = self.read_lines(path)
        assert [(l["method"], l["path"], l["status"]) for l in lines] == [
            ("GET", "/healthz", 200),
            ("POST", "/predict", 200),
            ("GET", "/nope", 404),
        ]
        for line in lines:
            assert set(line) == {"ts", "method", "path", "status",
                                 "duration_ms", "trace_id", "batch_size",
                                 "shed"}
            assert line["duration_ms"] >= 0
            assert line["ts"] > 0

    def test_logs_the_request_trace_id_and_batch_size(self, app, tmp_path):
        path = str(tmp_path / "access.jsonl")
        app.access_log = AccessLog(path)
        trace = "11112222333344445555666677778888"
        call(app, "POST", "/predict",
             {"instances": [FEATURES, FEATURES, FEATURES]},
             headers={"traceparent": f"00-{trace}-00000000000000ff-01"})
        app.access_log.close()
        (line,) = self.read_lines(path)
        assert line["trace_id"] == trace
        assert line["batch_size"] == 3
        assert line["shed"] is False

    def test_no_access_log_configured_writes_nothing(self, app, tmp_path):
        call(app, "GET", "/healthz")
        assert app.access_log is None
        assert list(tmp_path.iterdir()) == []


class TestAnalyzeSpanTree:
    """Acceptance: one /analyze request exports one connected trace."""

    def test_spans_form_one_tree_under_the_request_trace(
            self, store, tmp_path):
        trace_path = str(tmp_path / "trace.jsonl")
        session = obs.configure(trace_path=trace_path)
        server = PredictionServer(store, port=0, batch_window=0.005)
        server.batcher.start()
        try:
            tree = tmp_path / "app"
            tree.mkdir()
            (tree / "app.c").write_text(SOURCE)
            trace = "ab" * 16
            response = handle_request(
                server, "POST", "/analyze",
                json.dumps({"path": str(tree)}).encode(),
                headers={"traceparent": f"00-{trace}-00000000000000ff-01"})
            assert response.status == 200
        finally:
            server.batcher.stop()
            server.httpd.server_close()
        assert session.write_trace() > 0
        obs.disable()

        records = read_jsonl(trace_path)
        # every span carries the caller's trace ID — one trace, no strays
        assert {record["trace_id"] for record in records} == {trace}
        by_id = {record["span_id"]: record for record in records}
        roots = [r for r in records if r["parent"] is None]
        assert [r["name"] for r in roots] == ["serve.request"]
        # every span walks parent links up to the single request root
        for record in records:
            hops, current = 0, record
            while current["parent"] is not None:
                assert current["parent"] in by_id, \
                    f"{current['name']} has a dangling parent link"
                current = by_id[current["parent"]]
                hops += 1
                assert hops < len(records)
            assert current["name"] == "serve.request"
        # the tree reaches through the engine into the analyzers
        names = {record["name"] for record in records}
        assert "engine.extract" in names
        assert any(name.startswith("analysis.") for name in names)
