"""The engine pool in isolation: checkout, shedding, byte-identity.

The pool's contract is that a row extracted by any worker process is
indistinguishable from one extracted by the engine the offline CLI
builds — same config, same floats — and that a saturated pool refuses
quickly (:class:`PoolSaturated`) instead of queueing unboundedly.
"""

import threading

import pytest

from repro.engine import EngineConfig
from repro.lang import Codebase
from repro.serve import EnginePool, PoolSaturated

SOURCE = (
    "#include <string.h>\n"
    "int handle(char *req) {\n"
    "    char buf[32];\n"
    "    strcpy(buf, req);\n"
    "    return 0;\n"
    "}\n"
)


@pytest.fixture
def tree(tmp_path):
    d = tmp_path / "app"
    d.mkdir()
    (d / "app.c").write_text(SOURCE)
    return str(d)


@pytest.fixture
def codebase(tree):
    return Codebase.from_directory(tree)


@pytest.fixture
def pool():
    p = EnginePool(EngineConfig(no_cache=True), size=1,
                   checkout_timeout=5.0)
    yield p
    p.close()


class TestExtraction:
    def test_row_byte_identical_to_direct_engine(self, pool, codebase):
        pooled = pool.extract_one(codebase)
        direct = EngineConfig(no_cache=True).build().extract_one(codebase)
        assert pooled == direct
        assert all(isinstance(v, float) for v in pooled.values())

    def test_concurrent_extractions_all_agree(self, tree):
        pool = EnginePool(EngineConfig(no_cache=True), size=2)
        rows, lock = [], threading.Lock()

        def fire():
            row = pool.extract_one(Codebase.from_directory(tree))
            with lock:
                rows.append(row)

        try:
            threads = [threading.Thread(target=fire) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert len(rows) == 4
            assert all(row == rows[0] for row in rows)
        finally:
            pool.close()

    def test_records_path_matches_direct_engine(self, pool, codebase):
        row, records = pool.extract_with_records(codebase)
        direct_row, direct_records = EngineConfig(
            no_cache=True).build().extract_with_records(codebase)
        assert row == direct_row
        assert records == direct_records
        assert len(records) == len(codebase)
        assert pool.in_use == 0


class TestCheckout:
    def test_saturated_pool_sheds_within_timeout(self, codebase):
        pool = EnginePool(EngineConfig(no_cache=True), size=1,
                          checkout_timeout=0.2)
        # Hog the only slot so the next checkout must time out.
        assert pool._slots.acquire(timeout=1)
        try:
            with pytest.raises(PoolSaturated) as excinfo:
                pool.extract_one(codebase)
            assert excinfo.value.retry_after >= 1
        finally:
            pool._slots.release()
            pool.close()

    def test_slot_released_after_extraction(self, pool, codebase):
        pool.extract_one(codebase)
        assert pool.in_use == 0
        # A second extraction must find the slot free again.
        pool.extract_one(codebase)
        assert pool.in_use == 0


class TestLifecycle:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            EnginePool(size=0)
        with pytest.raises(ValueError):
            EnginePool(checkout_timeout=0.0)

    def test_extract_after_close_raises(self, codebase):
        pool = EnginePool(EngineConfig(no_cache=True), size=1)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.extract_one(codebase)

    def test_close_is_idempotent(self):
        pool = EnginePool(EngineConfig(no_cache=True), size=1)
        pool.close()
        pool.close()

    def test_describe_shape(self, pool):
        shape = pool.describe()
        assert shape["size"] == 1
        assert shape["in_use"] == 0
        assert shape["checkout_timeout"] == 5.0
        assert shape["engine"]["workers"] == 1

    def test_prestart_spawns_workers(self, pool, codebase):
        pool.prestart()
        assert pool.extract_one(codebase)
