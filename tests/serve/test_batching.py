"""Micro-batcher semantics: grouping, windows, shedding, shutdown."""

import threading
import time

import pytest

from repro import obs
from repro.serve import MicroBatcher, QueueSaturated


@pytest.fixture(autouse=True)
def no_obs_leak():
    yield
    obs.disable()


def make_batcher(process, **kwargs):
    batcher = MicroBatcher(process, **kwargs)
    batcher.start()
    return batcher


class TestBatching:
    def test_single_item_resolves(self):
        batcher = make_batcher(lambda items: [x * 2 for x in items],
                               batch_window=0.001)
        try:
            assert batcher.submit(21).result(timeout=5) == 42
        finally:
            batcher.stop()

    def test_results_map_to_their_submissions(self):
        batcher = make_batcher(lambda items: [x + 1 for x in items],
                               batch_window=0.05, batch_size=8)
        try:
            futures = [batcher.submit(i) for i in range(8)]
            assert [f.result(timeout=5) for f in futures] == list(range(1, 9))
        finally:
            batcher.stop()

    def test_concurrent_submissions_group_into_batches(self):
        batches = []

        def process(items):
            batches.append(len(items))
            return items

        batcher = make_batcher(process, batch_window=0.25, batch_size=32)
        try:
            futures = []
            lock = threading.Lock()

            def submit(i):
                f = batcher.submit(i)
                with lock:
                    futures.append(f)

            threads = [threading.Thread(target=submit, args=(i,))
                       for i in range(10)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for f in futures:
                f.result(timeout=5)
            # 10 near-simultaneous submissions under a 250 ms window
            # must need far fewer than 10 batches.
            assert sum(batches) == 10
            assert len(batches) < 10
        finally:
            batcher.stop()

    def test_full_batch_dispatches_before_window(self):
        batcher = make_batcher(lambda items: items,
                               batch_window=30.0, batch_size=2)
        try:
            f1 = batcher.submit("a")
            f2 = batcher.submit("b")
            # A 30 s window would time this out; a full batch must not wait.
            assert f1.result(timeout=5) == "a"
            assert f2.result(timeout=5) == "b"
        finally:
            batcher.stop()

    def test_callback_exception_fails_the_batch(self):
        def boom(items):
            raise RuntimeError("model exploded")

        batcher = make_batcher(boom, batch_window=0.001)
        try:
            future = batcher.submit(1)
            with pytest.raises(RuntimeError, match="model exploded"):
                future.result(timeout=5)
        finally:
            batcher.stop()

    def test_result_count_mismatch_fails_the_batch(self):
        batcher = make_batcher(lambda items: [], batch_window=0.001)
        try:
            with pytest.raises(RuntimeError, match="returned 0 results"):
                batcher.submit(1).result(timeout=5)
        finally:
            batcher.stop()


class TestLoadShedding:
    def test_saturated_queue_sheds_immediately(self):
        release = threading.Event()

        def blocked(items):
            release.wait(timeout=10)
            return items

        batcher = make_batcher(blocked, batch_window=0.0, batch_size=1,
                               queue_depth=1)
        try:
            first = batcher.submit(1)      # taken by the collector
            time.sleep(0.1)                # let it enter the callback
            second = batcher.submit(2)     # parks in the queue
            started = time.perf_counter()
            with pytest.raises(QueueSaturated) as excinfo:
                batcher.submit(3)
            # shed, not queued: the rejection must be immediate
            assert time.perf_counter() - started < 0.5
            assert excinfo.value.retry_after >= 1
            release.set()
            assert first.result(timeout=5) == 1
            assert second.result(timeout=5) == 2
        finally:
            release.set()
            batcher.stop()

    def test_shed_increments_counter(self):
        obs.configure()
        release = threading.Event()
        batcher = make_batcher(lambda items: (release.wait(10), items)[1],
                               batch_window=0.0, batch_size=1, queue_depth=1)
        try:
            batcher.submit(1)
            time.sleep(0.1)
            batcher.submit(2)
            with pytest.raises(QueueSaturated):
                batcher.submit(3)
            session = obs.active()
            assert session.metrics.counter("serve.shed").value == 1
        finally:
            release.set()
            batcher.stop()

    def test_retry_after_scales_with_window(self):
        assert MicroBatcher(lambda i: i, batch_window=0.01).retry_after == 1
        assert MicroBatcher(lambda i: i, batch_window=2.5).retry_after == 3


class TestCancelledFutures:
    def test_cancelled_entry_never_reaches_the_model(self):
        processed = []
        release = threading.Event()

        def process(items):
            release.wait(timeout=10)
            processed.extend(items)
            return items

        batcher = make_batcher(process, batch_window=0.0, batch_size=1,
                               queue_depth=4)
        try:
            first = batcher.submit(1)
            time.sleep(0.1)           # collector holds item 1
            orphan = batcher.submit(2)
            assert orphan.cancel()    # handler gave up on it
            release.set()
            assert first.result(timeout=5) == 1
            # the collector must drain (and drop) the cancelled entry
            for _ in range(100):
                if batcher._queue.empty():
                    break
                time.sleep(0.02)
            time.sleep(0.1)
            assert processed == [1]
        finally:
            release.set()
            batcher.stop()

    def test_fully_cancelled_batch_counts_nothing(self):
        obs.configure()
        release = threading.Event()
        batcher = make_batcher(lambda items: (release.wait(10), items)[1],
                               batch_window=0.0, batch_size=1, queue_depth=4)
        try:
            batcher.submit(1)
            time.sleep(0.1)
            batcher.submit(2).cancel()
            release.set()
            time.sleep(0.2)
            histograms = obs.active().metrics.snapshot()["histograms"]
            # only the live batch was dispatched and sized
            assert histograms["serve.batch_size"]["count"] == 1
        finally:
            release.set()
            batcher.stop()


class TestLifecycle:
    def test_submit_before_start_rejected(self):
        batcher = MicroBatcher(lambda items: items)
        with pytest.raises(RuntimeError, match="not running"):
            batcher.submit(1)

    def test_stop_fails_queued_futures(self):
        release = threading.Event()
        batcher = make_batcher(lambda items: (release.wait(10), items)[1],
                               batch_window=0.0, batch_size=1, queue_depth=8)
        batcher.submit(1)
        time.sleep(0.1)
        stranded = batcher.submit(2)
        release.set()
        batcher.stop()
        # whichever way the race went, the future must be resolved
        assert stranded.done()

    def test_stop_with_full_queue_is_bounded(self):
        """Shutdown must not park behind a saturated queue.

        Regression: ``stop()`` used a blocking ``put(_STOP)``, so with
        the queue full and the collector busy the SIGTERM path stalled
        until the backlog drained. Now the sentinel goes in with
        ``put_nowait``, failing one queued future per refusal.
        """
        release = threading.Event()
        batcher = make_batcher(lambda items: (release.wait(10), items)[1],
                               batch_window=0.0, batch_size=1, queue_depth=2)
        try:
            batcher.submit(1)          # taken by the collector, blocked
            time.sleep(0.1)
            stranded = [batcher.submit(2), batcher.submit(3)]  # queue full
            started = time.perf_counter()
            batcher.stop(timeout=0.2)
            elapsed = time.perf_counter() - started
            # bounded by the join timeout, not the 10 s collector block
            assert elapsed < 2.0
            for future in stranded:
                assert future.done()
                assert isinstance(future.exception(timeout=1),
                                  RuntimeError)
        finally:
            release.set()

    def test_stop_is_idempotent(self):
        batcher = make_batcher(lambda items: items)
        batcher.stop()
        batcher.stop()

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda i: i, batch_window=-1)
        with pytest.raises(ValueError):
            MicroBatcher(lambda i: i, batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda i: i, queue_depth=0)
