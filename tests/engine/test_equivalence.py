"""End-to-end equivalence: the proof the engine is safe.

The parallel and cached paths must reproduce the serial uncached
feature rows *bit for bit* — same keys, same key order, same float
bits — and the models trained from them must serialise to identical
bytes. Anything weaker would make ``--workers``/``--cache-dir``
semantics-changing flags instead of pure go-faster knobs.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.pipeline import build_feature_table, train
from repro.engine import ExtractionEngine, FeatureCache


def assert_rows_identical(expected, actual):
    """Key-by-key, order-and-bit-exact comparison of two tables."""
    assert expected.app_names == actual.app_names
    for name, exp, act in zip(expected.app_names, expected.rows, actual.rows):
        assert list(exp) == list(act), f"{name}: feature key order differs"
        for key in exp:
            assert exp[key] == act[key], (name, key)
            # repr equality catches bit-level drift (-0.0, float noise)
            # that == would wave through for equal-comparing values.
            assert repr(exp[key]) == repr(act[key]), (name, key)


class TestParallelEquivalence:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_matches_serial(self, engine_corpus, reference_table,
                                     workers):
        table = build_feature_table(
            engine_corpus, engine=ExtractionEngine(workers=workers)
        )
        assert_rows_identical(reference_table, table)

    def test_parallel_summaries_aligned(self, engine_corpus, reference_table):
        table = build_feature_table(
            engine_corpus, engine=ExtractionEngine(workers=2)
        )
        assert [s.app for s in table.summaries] == list(table.app_names)
        assert table.summaries == reference_table.summaries


class TestCacheEquivalence:
    """Cold/warm byte-identity, proven on every storage backend.

    ``make_cache`` parametrizes these over the filesystem and SQLite
    backends: a row served from a shared SQLite cache must be exactly
    as indistinguishable from a cold serial row as one served from the
    historical directory layout.
    """

    def test_cold_and_warm_match_serial(self, engine_corpus, reference_table,
                                        make_cache):
        engine = ExtractionEngine(workers=1, cache=make_cache())
        cold = build_feature_table(engine_corpus, engine=engine)
        warm = build_feature_table(engine_corpus, engine=engine)
        assert_rows_identical(reference_table, cold)
        assert_rows_identical(reference_table, warm)

    def test_parallel_warm_cache_matches_serial(self, engine_corpus,
                                                reference_table, make_cache):
        cache = make_cache()
        build_feature_table(
            engine_corpus, engine=ExtractionEngine(workers=2, cache=cache)
        )
        warm = build_feature_table(
            engine_corpus, engine=ExtractionEngine(workers=2, cache=cache)
        )
        assert_rows_identical(reference_table, warm)

    def test_warm_run_extracts_zero_apps(self, engine_corpus, make_cache):
        from repro import obs

        cache = make_cache()
        build_feature_table(
            engine_corpus, engine=ExtractionEngine(workers=2, cache=cache)
        )
        session = obs.configure()
        build_feature_table(
            engine_corpus, engine=ExtractionEngine(workers=2, cache=cache)
        )
        counters = session.metrics.snapshot()["counters"]
        obs.disable()
        assert counters["engine.cache.hits"] == len(engine_corpus.apps)
        assert "engine.extracted" not in counters
        assert "engine.cache.misses" not in counters

    def test_backends_serve_identical_bytes(self, engine_corpus,
                                            reference_table, tmp_path):
        """FS-served and SQLite-served rows are repr/key-order equal."""
        fs_cache = FeatureCache(str(tmp_path / "fs-cache"))
        sq_cache = FeatureCache(f"sqlite:{tmp_path / 'cache.db'}")
        build_feature_table(
            engine_corpus, engine=ExtractionEngine(workers=1, cache=fs_cache)
        )
        build_feature_table(
            engine_corpus, engine=ExtractionEngine(workers=1, cache=sq_cache)
        )
        warm_fs = build_feature_table(
            engine_corpus, engine=ExtractionEngine(workers=1, cache=fs_cache)
        )
        warm_sq = build_feature_table(
            engine_corpus, engine=ExtractionEngine(workers=1, cache=sq_cache)
        )
        assert_rows_identical(reference_table, warm_fs)
        assert_rows_identical(reference_table, warm_sq)
        assert_rows_identical(warm_fs, warm_sq)


class TestModelEquivalence:
    def test_parallel_cold_run_identical_model_bytes(
        self, small_corpus, small_training, tmp_path
    ):
        """Acceptance: a workers=4 cold run trains to the same bytes."""
        engine = ExtractionEngine(
            workers=4, cache=FeatureCache(str(tmp_path / "cache"))
        )
        result = train(small_corpus, k=4, seed=7, engine=engine)
        assert pickle.dumps(result.model) == \
            pickle.dumps(small_training.model)
        assert result.table.rows == small_training.table.rows
