"""Property/fuzz tests for the content-addressed cache and its digests.

Invariants under test:

- any semantic change to the inputs (edit/add/delete/rename a file,
  different history, different extraction args) changes the digest;
- byte-identical re-layouts (assembly order, application name) do not;
- corrupt, truncated, or foreign cache entries are misses that fall
  back to recomputation — never exceptions.

Fuzzing uses the stdlib ``random`` with fixed seeds so failures
reproduce exactly (and CI needs no extra packages).
"""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.analysis.churn import Commit, CommitHistory, FileDelta
from repro.engine import (
    ANALYZER_SET_VERSION,
    ExtractionEngine,
    FeatureCache,
    codebase_digest,
    history_digest,
    task_digest,
)
from repro.engine.cache import CACHE_FORMAT_VERSION
from repro.lang import Codebase, SourceFile

BASE_SOURCES = {
    "src/a.c": "int f(int x) {\n    if (x > 1) {\n        x = x - 1;\n    }\n    return x + 1;\n}\n",
    "src/b.py": "def g(y):\n    return y * 2\n",
    "src/c.java": "public class C {\n    int h() { return 3; }\n}\n",
    "src/d.cc": "int k(int z) {\n    return z - 4;\n}\n",
}


def base_codebase(name="app", sources=None):
    return Codebase.from_sources(name, dict(sources or BASE_SOURCES))


def _mutate(rng, sources):
    """One random semantic mutation; returns (kind, new sources)."""
    out = dict(sources)
    kinds = ("edit", "add", "delete", "rename") if len(out) > 1 \
        else ("edit", "add", "rename")
    kind = rng.choice(kinds)
    path = rng.choice(sorted(out))
    if kind == "edit":
        out[path] = out[path] + f"// tweak {rng.randrange(10**6)}\n" \
            if not path.endswith(".py") else \
            out[path] + f"# tweak {rng.randrange(10**6)}\n"
    elif kind == "add":
        ext = rng.choice((".c", ".py", ".java", ".cc"))
        out[f"src/new_{rng.randrange(10**6)}{ext}"] = "int q;\n" \
            if ext != ".py" else "q = 1\n"
    elif kind == "delete":
        del out[path]
    else:  # rename: same bytes, fresh unique path
        new_path = f"moved_{rng.randrange(10**6)}/{path.rsplit('/', 1)[-1]}"
        out[new_path] = out.pop(path)
    return kind, out


class TestDigestInvariance:
    def test_relayout_does_not_change_digest(self):
        reference = codebase_digest(base_codebase())
        files = [SourceFile(p, t) for p, t in BASE_SOURCES.items()]
        rng = random.Random(1)
        for _ in range(10):
            rng.shuffle(files)
            rebuilt = Codebase("app", files)
            assert codebase_digest(rebuilt) == reference

    def test_application_name_excluded(self):
        assert codebase_digest(base_codebase("a")) == \
            codebase_digest(base_codebase("b"))

    def test_disk_roundtrip_same_digest(self, tmp_path):
        for path, text in BASE_SOURCES.items():
            full = tmp_path / path
            full.parent.mkdir(parents=True, exist_ok=True)
            full.write_text(text)
        loaded = Codebase.from_directory(str(tmp_path))
        assert codebase_digest(loaded) == codebase_digest(base_codebase())

    def test_digest_is_stable_across_calls(self):
        cb = base_codebase()
        assert codebase_digest(cb) == codebase_digest(cb)


class TestDigestSensitivity:
    def test_fuzzed_mutations_change_digest(self):
        rng = random.Random(42)
        reference = codebase_digest(base_codebase())
        seen_kinds = set()
        for trial in range(40):
            kind, mutated = _mutate(rng, BASE_SOURCES)
            seen_kinds.add(kind)
            digest = codebase_digest(base_codebase(sources=mutated))
            assert digest != reference, (trial, kind)
        assert seen_kinds == {"edit", "add", "delete", "rename"}

    def test_mutation_chains_stay_distinct_until_reverted(self):
        rng = random.Random(7)
        sources = dict(BASE_SOURCES)
        digests = {codebase_digest(base_codebase())}
        for _ in range(15):
            _, sources = _mutate(rng, sources)
            digests.add(codebase_digest(base_codebase(sources=sources)))
        # every intermediate state hashed uniquely
        assert len(digests) == 16
        # reverting to the original bytes restores the original digest
        assert codebase_digest(base_codebase(sources=BASE_SOURCES)) in digests

    def test_rename_changes_digest_even_with_same_bytes(self):
        renamed = dict(BASE_SOURCES)
        renamed["src/a_renamed.c"] = renamed.pop("src/a.c")
        assert codebase_digest(base_codebase(sources=renamed)) != \
            codebase_digest(base_codebase())

    def test_non_ascii_language_tag_digests_cleanly(self):
        # Regression: language tags used to be hashed via
        # .encode("ascii"), so a non-ASCII tag aborted mid-extraction.
        from dataclasses import replace

        from repro.lang.languages import language_by_name

        spec = replace(language_by_name("c"), name="sí-lang",
                       extensions=(".xc",))
        cb = Codebase("app", [SourceFile("src/a.xc", "int x;\n", spec)])
        digest = codebase_digest(cb)
        assert digest == codebase_digest(cb)
        assert digest != codebase_digest(base_codebase())

    def test_history_delta_fields_do_not_alias(self):
        # Every delta field is individually framed: moving a digit
        # between the path and the line counts must change the digest
        # (the old ":a:d"-suffix scheme leaned on paths never ending in
        # colon-digit runs).
        shifted = CommitHistory(commits=[
            Commit(author="ada", day=1,
                   deltas=(FileDelta("src/a.c:5", 1, 2),)),
        ])
        straight = CommitHistory(commits=[
            Commit(author="ada", day=1,
                   deltas=(FileDelta("src/a.c", 5, 1),)),
        ])
        assert history_digest(shifted) != history_digest(straight)

    def test_non_ascii_author_digests_cleanly(self):
        history = CommitHistory(commits=[
            Commit(author="Ada Lovelace-Çağatay", day=3,
                   deltas=(FileDelta("src/a.c", 1, 0),)),
        ])
        assert history_digest(history) == history_digest(history)
        assert history_digest(history) != history_digest(None)


class TestTaskDigest:
    def _history(self, day=1):
        return CommitHistory(commits=[
            Commit(author="ada", day=day,
                   deltas=(FileDelta("src/a.c", 5, 1),)),
        ])

    def test_extraction_args_enter_the_key(self):
        cb = base_codebase()
        base = task_digest(cb)
        assert task_digest(cb, nominal_kloc=12.0) != base
        assert task_digest(cb, include_dynamic=True) != base
        assert task_digest(cb, history=self._history()) != base
        assert task_digest(cb, analyzer_version="other") != base

    def test_history_contents_matter(self):
        cb = base_codebase()
        assert task_digest(cb, history=self._history(day=1)) != \
            task_digest(cb, history=self._history(day=2))
        assert history_digest(None) != history_digest(CommitHistory())

    def test_same_inputs_same_key(self):
        cb = base_codebase()
        assert task_digest(cb, nominal_kloc=3.5,
                           history=self._history()) == \
            task_digest(base_codebase(), nominal_kloc=3.5,
                        history=self._history())


def _corruptions():
    """(name, writer) pairs producing broken cache-entry bytes."""
    valid = {
        "cache_format": CACHE_FORMAT_VERSION,
        "analyzer_version": ANALYZER_SET_VERSION,
        "app": "app",
        "row": {"size.kloc": 1.0},
    }
    return [
        ("empty", lambda p: p.write_text("")),
        ("garbage", lambda p: p.write_bytes(b"\x00\xff not json at all")),
        ("truncated", lambda p: p.write_text(
            json.dumps(valid)[: len(json.dumps(valid)) // 2])),
        ("json_list", lambda p: p.write_text("[1, 2, 3]")),
        ("wrong_cache_format", lambda p: p.write_text(
            json.dumps({**valid, "cache_format": CACHE_FORMAT_VERSION + 9}))),
        ("wrong_analyzer_version", lambda p: p.write_text(
            json.dumps({**valid, "analyzer_version": "stale"}))),
        ("row_not_object", lambda p: p.write_text(
            json.dumps({**valid, "row": [1.0]}))),
        ("row_value_not_number", lambda p: p.write_text(
            json.dumps({**valid, "row": {"size.kloc": "big"}}))),
        ("row_value_bool", lambda p: p.write_text(
            json.dumps({**valid, "row": {"size.kloc": True}}))),
        ("missing_row", lambda p: p.write_text(
            json.dumps({k: v for k, v in valid.items() if k != "row"}))),
    ]


class TestCorruptEntries:
    @pytest.mark.parametrize(
        "name,corrupt", _corruptions(), ids=[n for n, _ in _corruptions()]
    )
    def test_corrupt_entry_is_a_miss_then_recomputed(self, tmp_path, name,
                                                     corrupt):
        import pathlib

        cache = FeatureCache(str(tmp_path / "cache"))
        engine = ExtractionEngine(workers=1, cache=cache)
        cb = base_codebase()
        expected = engine.extract_one(cb)  # cold run populates the entry
        digest = task_digest(cb)
        entry = pathlib.Path(cache.entry_path(digest))
        assert entry.is_file()
        corrupt(entry)
        assert cache.get(digest) is None  # miss, not an exception
        recomputed = engine.extract_one(cb)  # falls back to recompute
        assert recomputed == expected
        # ... and the engine repaired the entry in place
        assert cache.get(digest) == expected

    def test_unreadable_cache_dir_degrades_to_recompute(self, tmp_path):
        # Point the cache at a *file* so every mkdir/open fails with
        # OSError: extraction must still succeed, uncached.
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        engine = ExtractionEngine(
            workers=1, cache=FeatureCache(str(blocker))
        )
        row = engine.extract_one(base_codebase())
        assert row["size.sample_loc"] > 0

    def test_put_is_atomic_no_temp_residue(self, tmp_path):
        cache = FeatureCache(str(tmp_path / "cache"))
        cache.put("ab" + "0" * 62, {"x": 1.0}, app="a")
        shard = tmp_path / "cache" / "ab"
        leftovers = [p for p in os.listdir(shard) if p.endswith(".tmp")]
        assert leftovers == []

    def test_entries_shard_by_digest_prefix(self, tmp_path):
        cache = FeatureCache(str(tmp_path / "cache"))
        digest = "cd" + "1" * 62
        cache.put(digest, {"x": 2.0}, app="a")
        assert cache.entry_path(digest).startswith(
            str(tmp_path / "cache" / "cd")
        )
        assert cache.get(digest) == {"x": 2.0}


class TestErrorCounters:
    """Read corruption and write failure are distinct counters."""

    def _counters(self):
        from repro import obs

        return obs.active().metrics.snapshot()["counters"]

    def test_corrupt_entry_counts_as_read_error(self, tmp_path):
        from repro import obs

        cache = FeatureCache(str(tmp_path / "cache"))
        digest = "ab" + "0" * 62
        cache.put(digest, {"x": 1.0}, app="a")
        import pathlib

        pathlib.Path(cache.entry_path(digest)).write_text("not json")
        obs.configure()
        try:
            assert cache.get(digest) is None
            counters = self._counters()
        finally:
            obs.disable()
        assert counters.get("engine.cache.read_errors") == 1
        assert "engine.cache.write_errors" not in counters
        assert "engine.cache.errors" not in counters

    def test_failed_store_counts_as_write_error(self, tmp_path):
        from repro import obs

        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        cache = FeatureCache(str(blocker))
        obs.configure()
        try:
            cache.put("ab" + "0" * 62, {"x": 1.0}, app="a")
            counters = self._counters()
        finally:
            obs.disable()
        assert counters.get("engine.cache.write_errors") == 1
        assert "engine.cache.read_errors" not in counters
        assert "engine.cache.errors" not in counters

    def test_plain_miss_is_not_an_error(self, tmp_path):
        from repro import obs

        cache = FeatureCache(str(tmp_path / "cache"))
        obs.configure()
        try:
            assert cache.get("ab" + "0" * 62) is None
            counters = self._counters()
        finally:
            obs.disable()
        assert counters.get("engine.cache.misses") == 1
        assert "engine.cache.read_errors" not in counters


class TestTmpSweep:
    """Crash-orphaned ``*.tmp`` files are reaped on the next ``put``."""

    def _plant_stale_tmp(self, shard, age_seconds=120.0):
        import time

        shard.mkdir(parents=True, exist_ok=True)
        stale = shard / "orphanXYZ.tmp"
        stale.write_text("{half-written")
        old = time.time() - age_seconds
        os.utime(stale, (old, old))
        return stale

    def test_put_sweeps_stale_tmp_in_shard(self, tmp_path):
        cache = FeatureCache(str(tmp_path / "cache"))
        stale = self._plant_stale_tmp(tmp_path / "cache" / "ab")
        digest = "ab" + "0" * 62
        cache.put(digest, {"x": 1.0}, app="a")
        assert not stale.exists()
        assert cache.get(digest) == {"x": 1.0}

    def test_fresh_tmp_survives_the_sweep(self, tmp_path):
        # A temp file younger than this process could be a concurrent
        # writer's in-flight entry; it must be left alone.
        cache = FeatureCache(str(tmp_path / "cache"))
        shard = tmp_path / "cache" / "ab"
        shard.mkdir(parents=True, exist_ok=True)
        fresh = shard / "inflight.tmp"
        fresh.write_text("{concurrent writer")
        cache.put("ab" + "0" * 62, {"x": 1.0}, app="a")
        assert fresh.exists()

    def test_sweep_is_scoped_to_the_written_shard(self, tmp_path):
        cache = FeatureCache(str(tmp_path / "cache"))
        other = self._plant_stale_tmp(tmp_path / "cache" / "cd")
        cache.put("ab" + "0" * 62, {"x": 1.0}, app="a")
        assert other.exists()  # only the target shard is swept
