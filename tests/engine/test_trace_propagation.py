"""Trace identity flows through the engine into pool workers.

The contract: whatever trace ID is bound when the engine runs — a
request's :func:`trace_scope` binding or the CLI's per-invocation
default — every span the run records carries it, including spans
recorded inside worker *processes* and grafted back.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.pipeline import build_feature_table
from repro.engine import ExtractionEngine


@pytest.fixture(autouse=True)
def clean_session():
    obs.disable()
    yield
    obs.disable()


TRACE = "feed" * 8


class TestScopedTrace:
    def test_scope_reaches_worker_process_spans(self, engine_corpus):
        session = obs.configure()
        with obs.trace_scope(TRACE):
            build_feature_table(
                engine_corpus, engine=ExtractionEngine(workers=2))
        spans = session.tracer.spans
        assert spans, "expected a populated trace"
        assert {span.trace_id for span in spans} == {TRACE}
        # worker-side spans were really grafted, not recorded locally
        assert session.tracer.spans_named("engine.worker")

    def test_scope_reaches_serial_path(self, engine_corpus):
        session = obs.configure()
        with obs.trace_scope(TRACE):
            build_feature_table(
                engine_corpus, engine=ExtractionEngine(workers=1))
        spans = session.tracer.spans
        assert spans
        assert {span.trace_id for span in spans} == {TRACE}

    def test_session_default_used_outside_any_scope(self, engine_corpus):
        minted = obs.new_trace_id()
        session = obs.configure(trace_id=minted)
        build_feature_table(
            engine_corpus, engine=ExtractionEngine(workers=2))
        assert {span.trace_id for span in session.tracer.spans} == {minted}

    def test_scope_overrides_session_default(self, engine_corpus):
        session = obs.configure(trace_id=obs.new_trace_id())
        with obs.trace_scope(TRACE):
            build_feature_table(
                engine_corpus, engine=ExtractionEngine(workers=2))
        assert {span.trace_id for span in session.tracer.spans} == {TRACE}

    def test_no_trace_bound_leaves_spans_unstamped(self, engine_corpus):
        session = obs.configure()
        build_feature_table(
            engine_corpus, engine=ExtractionEngine(workers=2))
        assert {span.trace_id for span in session.tracer.spans} == {None}
