"""The pluggable cache-backend layer: selection, parity, robustness.

Three claims under test:

- *selection* — the one ``cache_dir`` string everybody passes around
  resolves to the right backend (plain path -> filesystem,
  ``sqlite:PATH`` -> SQLite WAL) through every layer that builds a
  cache (constructor, :class:`EngineConfig`, ``REPRO_CACHE_DIR``);
- *parity* — both backends satisfy the identical storage contract:
  exact JSON round-trips for rows, per-file records, and manifests
  (the fuzz class), and byte-identical rows out of either medium;
- *robustness* — corruption of any kind (garbage DB file, mangled
  payload, stale entries, a locked-out database) is a counted miss or
  a silently degraded write, never an exception.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import sqlite3

import pytest

from repro import obs
from repro.engine import (
    EngineConfig,
    ExtractionEngine,
    FeatureCache,
    FilesystemBackend,
    SqliteBackend,
    backend_from_spec,
    task_digest,
)
from repro.engine.backends import BackendReadError

from tests.engine.test_cache_properties import base_codebase

DIGEST = "ab" + "0" * 62


def corrupt_entry(cache: FeatureCache, digest: str) -> None:
    """Mangle the stored entry for ``digest``, whatever the medium."""
    if cache.backend.kind == "fs":
        pathlib.Path(cache.entry_path(digest)).write_text("{not json")
    else:
        conn = sqlite3.connect(cache.backend.path)
        conn.execute(
            "UPDATE entries SET payload = '{not json' WHERE key = ?",
            (digest,))
        conn.commit()
        conn.close()


class TestBackendSelection:
    def test_plain_path_selects_filesystem(self, tmp_path):
        backend = backend_from_spec(str(tmp_path / "cache"))
        assert isinstance(backend, FilesystemBackend)
        assert backend.kind == "fs"

    def test_sqlite_scheme_selects_sqlite(self, tmp_path):
        backend = backend_from_spec(f"sqlite:{tmp_path / 'c.db'}")
        assert isinstance(backend, SqliteBackend)
        assert backend.kind == "sqlite"
        assert backend.path == str(tmp_path / "c.db")

    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError):
            backend_from_spec("")
        with pytest.raises(ValueError):
            backend_from_spec("sqlite:")

    def test_feature_cache_parses_spec(self, tmp_path):
        assert FeatureCache(str(tmp_path)).backend.kind == "fs"
        assert FeatureCache(
            f"sqlite:{tmp_path / 'c.db'}").backend.kind == "sqlite"

    def test_engine_config_builds_sqlite_cache(self, tmp_path):
        spec = f"sqlite:{tmp_path / 'c.db'}"
        engine = EngineConfig(cache_dir=spec).build()
        assert engine.cache is not None
        assert engine.cache.backend.kind == "sqlite"
        assert engine.cache.cache_dir == spec

    def test_env_var_takes_sqlite_spec(self, tmp_path, monkeypatch):
        spec = f"sqlite:{tmp_path / 'c.db'}"
        monkeypatch.setenv("REPRO_CACHE_DIR", spec)
        engine = ExtractionEngine.from_env()
        assert engine.cache is not None
        assert engine.cache.backend.kind == "sqlite"

    def test_describe_names_the_backend(self, tmp_path):
        engine = ExtractionEngine(
            cache=FeatureCache(f"sqlite:{tmp_path / 'c.db'}"))
        described = engine.describe()
        assert described["cache_backend"] == "sqlite"
        assert described["cache_dir"].startswith("sqlite:")
        assert ExtractionEngine().describe()["cache_backend"] is None

    def test_entry_path_is_filesystem_only(self, tmp_path):
        assert FeatureCache(str(tmp_path / "d")).entry_path(DIGEST)
        with pytest.raises(AttributeError):
            FeatureCache(f"sqlite:{tmp_path / 'c.db'}").entry_path(DIGEST)


class TestBackendParity:
    """Both backends honour the same storage contract (``make_cache``)."""

    def test_row_roundtrip(self, make_cache):
        cache = make_cache()
        cache.put(DIGEST, {"x": 1.5, "neg": -0.0, "n": 3.0}, app="a")
        row = cache.get(DIGEST)
        assert list(row) == ["x", "neg", "n"]
        assert repr(row["neg"]) == "-0.0"

    def test_file_record_roundtrip(self, make_cache):
        cache = make_cache()
        record = {"loc": {"total": 12}, "cfg": {"edges": 4}}
        cache.put_file(DIGEST, "src/a.c", record)
        assert cache.get_file(DIGEST) == record

    def test_manifest_roundtrip(self, make_cache):
        cache = make_cache()
        files = {"src/a.c": "d" * 64, "src/b.py": "e" * 64}
        cache.put_manifest(DIGEST, files)
        assert cache.get_manifest(DIGEST) == files

    def test_missing_key_is_plain_miss(self, make_cache):
        cache = make_cache()
        session = obs.configure()
        assert cache.get(DIGEST) is None
        counters = session.metrics.snapshot()["counters"]
        obs.disable()
        assert counters.get("engine.cache.misses") == 1
        assert "engine.cache.read_errors" not in counters

    def test_overwrite_replaces_entry(self, make_cache):
        cache = make_cache()
        cache.put(DIGEST, {"x": 1.0}, app="a")
        cache.put(DIGEST, {"x": 2.0}, app="a")
        assert cache.get(DIGEST) == {"x": 2.0}

    def test_stale_analyzer_version_is_a_miss(self, make_cache):
        cache = make_cache()
        cache.put(DIGEST, {"x": 1.0}, app="a")
        reader = make_cache(analyzer_version="some-future-version")
        assert reader.get(DIGEST) is None
        assert cache.get(DIGEST) == {"x": 1.0}

    def test_fuzzed_entries_roundtrip_exactly(self, make_cache):
        """Random JSON-shaped rows survive the medium bit-for-bit."""
        cache = make_cache()
        rng = random.Random(23)
        for trial in range(30):
            digest = f"{rng.randrange(16**8):08x}" + "f" * 56
            row = {
                f"metric.{rng.randrange(1000)}.{j}":
                rng.choice([
                    rng.random() * 10 ** rng.randrange(-3, 4),
                    float(rng.randrange(-10**6, 10**6)),
                    -0.0,
                    0.5,
                ])
                for j in range(rng.randrange(1, 8))
            }
            cache.put(digest, row, app=f"app{trial}")
            out = cache.get(digest)
            assert list(out) == list(row), trial
            for key in row:
                assert repr(out[key]) == repr(row[key]), (trial, key)

    def test_corrupt_entry_is_miss_then_repaired(self, make_cache):
        cache = make_cache()
        engine = ExtractionEngine(workers=1, cache=cache)
        cb = base_codebase()
        expected = engine.extract_one(cb)  # cold run populates
        digest = task_digest(cb)
        corrupt_entry(cache, digest)
        session = obs.configure()
        assert cache.get(digest) is None  # miss, not an exception
        counters = session.metrics.snapshot()["counters"]
        obs.disable()
        assert counters.get("engine.cache.read_errors") == 1
        recomputed = engine.extract_one(cb)  # falls back to recompute
        assert recomputed == expected
        assert cache.get(digest) == expected  # ... and repaired in place

    def test_engine_roundtrip_byte_identical(self, make_cache):
        cache = make_cache()
        engine = ExtractionEngine(workers=1, cache=cache)
        cb = base_codebase()
        cold = engine.extract_one(cb)
        warm = engine.extract_one(cb)
        assert list(cold) == list(warm)
        assert all(repr(cold[k]) == repr(warm[k]) for k in cold)


class TestSqliteRobustness:
    """The shared-cache backend under hostile media and contention."""

    def test_wal_mode_is_active(self, tmp_path):
        cache = FeatureCache(f"sqlite:{tmp_path / 'c.db'}")
        cache.put(DIGEST, {"x": 1.0}, app="a")
        conn = sqlite3.connect(str(tmp_path / "c.db"))
        assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        conn.close()

    def test_garbage_db_file_degrades_not_crashes(self, tmp_path):
        """A non-database file behind the spec is misses + failed stores."""
        path = tmp_path / "c.db"
        path.write_bytes(b"\x00\xffdefinitely not a database\x00" * 10)
        cache = FeatureCache(f"sqlite:{path}")
        session = obs.configure()
        assert cache.get(DIGEST) is None
        cache.put(DIGEST, {"x": 1.0}, app="a")
        counters = session.metrics.snapshot()["counters"]
        obs.disable()
        assert counters.get("engine.cache.read_errors") == 1
        assert counters.get("engine.cache.write_errors") == 1
        # extraction itself must still succeed, merely uncached
        row = ExtractionEngine(
            workers=1, cache=cache).extract_one(base_codebase())
        assert row["size.sample_loc"] > 0

    def test_undecodable_payload_is_read_error(self, tmp_path):
        cache = FeatureCache(f"sqlite:{tmp_path / 'c.db'}")
        cache.put(DIGEST, {"x": 1.0}, app="a")
        corrupt_entry(cache, DIGEST)
        with pytest.raises(BackendReadError):
            cache.backend.load(DIGEST)
        assert cache.get(DIGEST) is None

    def test_locked_out_writer_degrades(self, tmp_path):
        """An exclusive lock past the retry budget fails the store only."""
        path = str(tmp_path / "c.db")
        cache = FeatureCache(
            f"sqlite:{path}",
            backend=SqliteBackend(path, busy_timeout_ms=20,
                                  busy_retries=1))
        cache.put(DIGEST, {"x": 1.0}, app="a")
        blocker = sqlite3.connect(path)
        blocker.execute("BEGIN EXCLUSIVE")
        try:
            session = obs.configure()
            cache.put("cd" + "1" * 62, {"y": 2.0}, app="b")
            counters = session.metrics.snapshot()["counters"]
            obs.disable()
            assert counters.get("engine.cache.write_errors") == 1
        finally:
            blocker.rollback()
            blocker.close()
        # with the lock released the same store goes through
        cache.put("cd" + "1" * 62, {"y": 2.0}, app="b")
        assert cache.get("cd" + "1" * 62) == {"y": 2.0}

    def test_busy_writer_is_waited_out(self, tmp_path):
        """A lock released mid-retry is absorbed, not surfaced."""
        import threading
        import time

        path = str(tmp_path / "c.db")
        cache = FeatureCache(f"sqlite:{path}")
        cache.put(DIGEST, {"x": 1.0}, app="a")
        blocker = sqlite3.connect(path, check_same_thread=False)
        blocker.execute("BEGIN IMMEDIATE")
        timer = threading.Timer(0.3, lambda: (blocker.commit(),
                                              blocker.close()))
        timer.start()
        try:
            start = time.perf_counter()
            cache.put("cd" + "1" * 62, {"y": 2.0}, app="b")
            waited = time.perf_counter() - start
        finally:
            timer.join()
        assert cache.get("cd" + "1" * 62) == {"y": 2.0}
        assert waited < 5.0  # waited the lock out, not the full budget

    def test_two_handles_share_one_database(self, tmp_path):
        """Two backend instances (two 'processes') see each other's writes."""
        spec = f"sqlite:{tmp_path / 'c.db'}"
        writer, reader = FeatureCache(spec), FeatureCache(spec)
        writer.put(DIGEST, {"x": 42.0}, app="a")
        assert reader.get(DIGEST) == {"x": 42.0}
        reader.put("cd" + "1" * 62, {"y": 7.0}, app="b")
        assert writer.get("cd" + "1" * 62) == {"y": 7.0}

    def test_concurrent_threads_interleave_cleanly(self, tmp_path):
        import threading

        spec = f"sqlite:{tmp_path / 'c.db'}"
        caches = [FeatureCache(spec) for _ in range(4)]
        errors = []

        def hammer(cache, worker):
            try:
                for i in range(25):
                    digest = f"{worker}{i:03d}".ljust(64, "0")
                    cache.put(digest, {"v": float(worker * 100 + i)},
                              app=f"w{worker}")
                    assert cache.get(digest) == {
                        "v": float(worker * 100 + i)}
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(cache, n))
                   for n, cache in enumerate(caches)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # every write from every handle is visible afterwards
        probe = FeatureCache(spec)
        for worker in range(4):
            for i in range(25):
                digest = f"{worker}{i:03d}".ljust(64, "0")
                assert probe.get(digest) == {
                    "v": float(worker * 100 + i)}

    def test_forked_child_reopens_its_own_connection(self, tmp_path):
        """The pid guard: a stale handle is replaced, not reused."""
        cache = FeatureCache(f"sqlite:{tmp_path / 'c.db'}")
        cache.put(DIGEST, {"x": 1.0}, app="a")
        backend = cache.backend
        first_conn = backend._conn
        backend._pid = -1  # simulate having been forked
        assert cache.get(DIGEST) == {"x": 1.0}
        assert backend._conn is not first_conn
        assert backend._pid == os.getpid()

    def test_payload_text_matches_fs_bytes(self, tmp_path):
        """The stored JSON text is exactly what the FS backend writes."""
        fs_cache = FeatureCache(str(tmp_path / "fs"))
        sq_cache = FeatureCache(f"sqlite:{tmp_path / 'c.db'}")
        row = {"b.first": 1.25, "a.second": -0.0, "z": 3.0}
        fs_cache.put(DIGEST, row, app="app")
        sq_cache.put(DIGEST, row, app="app")
        fs_text = pathlib.Path(
            fs_cache.entry_path(DIGEST)).read_text(encoding="utf-8")
        conn = sqlite3.connect(str(tmp_path / "c.db"))
        sq_text = conn.execute(
            "SELECT payload FROM entries WHERE key = ?",
            (DIGEST,)).fetchone()[0]
        conn.close()
        assert json.loads(fs_text) == json.loads(sq_text)
        assert fs_text == sq_text
