"""Engine-test fixtures: a small corpus and its serial reference table.

The corpus is module-expensive, so both are session-scoped; every
equivalence check compares against the one serial uncached ``reference``
extraction, which is the behaviour the seed pipeline had.
"""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def obs_isolated():
    """Engine tests manage their own obs sessions; never leak one."""
    obs.disable()
    yield
    obs.disable()


@pytest.fixture()
def timer():
    """Context manager measuring elapsed wall-clock seconds.

    ``with timer() as elapsed: ...; assert elapsed() < bound`` — the
    fault tests use it to prove the engine killed a hung worker instead
    of waiting out its 60-second injected sleep.
    """
    import time
    from contextlib import contextmanager

    @contextmanager
    def _timer():
        start = time.monotonic()
        yield lambda: time.monotonic() - start

    return _timer


@pytest.fixture(params=["fs", "sqlite"])
def make_cache(request, tmp_path):
    """Factory building a FeatureCache on each storage backend.

    Parametrized over the filesystem and SQLite backends so every
    suite using it proves its invariants on both; ``make_cache.kind``
    exposes the active backend for backend-specific assertions.
    """
    from repro.engine import FeatureCache

    def _make(name="cache", **kwargs):
        if request.param == "sqlite":
            return FeatureCache(f"sqlite:{tmp_path / name}.db", **kwargs)
        return FeatureCache(str(tmp_path / name), **kwargs)

    _make.kind = request.param
    return _make


@pytest.fixture(scope="session")
def engine_corpus():
    """A 6-app corpus dedicated to engine tests (seed 11)."""
    from repro.synth import build_corpus

    return build_corpus(seed=11, limit=6)


@pytest.fixture(scope="session")
def reference_table(engine_corpus):
    """The serial, uncached feature table — the ground truth."""
    from repro.core.pipeline import build_feature_table
    from repro.engine import ExtractionEngine

    return build_feature_table(
        engine_corpus, engine=ExtractionEngine(workers=1, cache=None)
    )
