"""Scheduler unit tests: ordering, serial fallback, pickling, env knobs."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.engine import (
    CACHE_DIR_ENV,
    WORKERS_ENV,
    ExtractionEngine,
    FeatureCache,
    parallel_map,
    task_digest,
)
from repro.lang import Codebase, SourceFile
from repro.lang.languages import language_by_name


def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"boom {x}")


def _pid_and_value(x):
    return (os.getpid(), x)


class TestParallelMap:
    def test_results_in_input_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, workers=4) == \
            [x * x for x in items]

    def test_serial_runs_in_process(self):
        # Lambdas do not pickle: only a truly in-process serial path can
        # execute one. This also proves workers=1 shares the pool code.
        assert parallel_map(lambda x: x + 1, [1, 2, 3], workers=1) == \
            [2, 3, 4]

    def test_parallel_actually_forks(self):
        results = parallel_map(_pid_and_value, list(range(8)), workers=2)
        assert [value for _, value in results] == list(range(8))
        pids = {pid for pid, _ in results}
        assert os.getpid() not in pids

    def test_empty_items(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_single_item_stays_serial(self):
        (result,) = parallel_map(_pid_and_value, [9], workers=4)
        assert result == (os.getpid(), 9)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_exceptions_propagate(self, workers):
        with pytest.raises(RuntimeError, match="boom"):
            parallel_map(_boom, [1, 2], workers=workers)


class TestPickling:
    def test_sourcefile_spec_stays_singleton(self):
        source = SourceFile("m.py", "x = 1\n")
        _ = source.tokens  # populate the cache that must not ship
        clone = pickle.loads(pickle.dumps(source))
        assert clone.spec is language_by_name("python")
        assert clone.text == source.text
        assert clone._tokens is None
        assert [t.text for t in clone.tokens] == \
            [t.text for t in source.tokens]

    def test_codebase_roundtrip_preserves_by_language(self):
        cb = Codebase.from_sources(
            "app", {"a.c": "int x;\n", "b.py": "y = 2\n"}
        )
        clone = pickle.loads(pickle.dumps(cb))
        assert [f.path for f in clone.by_language("c")] == ["a.c"]
        assert [f.path for f in clone.by_language("python")] == ["b.py"]
        assert clone.primary_language() == cb.primary_language()


class TestEngineConfig:
    def test_workers_clamped_to_at_least_one(self):
        assert ExtractionEngine(workers=0).workers == 1
        assert ExtractionEngine(workers=-3).workers == 1

    def test_from_env_defaults(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        engine = ExtractionEngine.from_env()
        assert engine.workers == 1
        assert engine.cache is None

    def test_from_env_reads_knobs(self, monkeypatch, tmp_path):
        monkeypatch.setenv(WORKERS_ENV, "3")
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
        engine = ExtractionEngine.from_env()
        assert engine.workers == 3
        assert engine.cache is not None
        assert engine.cache.cache_dir == str(tmp_path / "cache")

    def test_from_env_garbage_workers_warns_and_falls_back(self,
                                                           monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        with pytest.warns(RuntimeWarning, match="'many'"):
            assert ExtractionEngine.from_env().workers == 1

    def test_from_env_negative_workers_warns_and_falls_back(self,
                                                            monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "-2")
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        with pytest.warns(RuntimeWarning, match="'-2'"):
            assert ExtractionEngine.from_env().workers == 1

    def test_from_env_valid_workers_do_not_warn(self, monkeypatch,
                                                recwarn):
        monkeypatch.setenv(WORKERS_ENV, "4")
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert ExtractionEngine.from_env().workers == 4
        assert not [w for w in recwarn if w.category is RuntimeWarning]

    def test_rejects_unknown_on_error_policy(self):
        with pytest.raises(ValueError, match="on_error"):
            ExtractionEngine(on_error="ignore")

    def test_rejects_non_positive_task_timeout(self):
        with pytest.raises(ValueError, match="task_timeout"):
            ExtractionEngine(workers=2, task_timeout=0)

    def test_serial_task_timeout_warns(self):
        with pytest.warns(RuntimeWarning, match="workers > 1"):
            ExtractionEngine(workers=1, task_timeout=5.0)

    def test_max_retries_clamped_to_non_negative(self):
        assert ExtractionEngine(max_retries=-4).max_retries == 0


class TestExtractOne:
    def test_stores_and_reuses_entry(self, tmp_path):
        cache = FeatureCache(str(tmp_path / "cache"))
        engine = ExtractionEngine(workers=1, cache=cache)
        cb = Codebase.from_sources(
            "one", {"m.c": "int f(void) {\n    return 1;\n}\n"}
        )
        row = engine.extract_one(cb)
        digest = task_digest(cb)
        assert cache.get(digest) == row
        assert engine.extract_one(cb) == row

    def test_nominal_kloc_reaches_the_row(self, tmp_path):
        engine = ExtractionEngine(
            workers=1, cache=FeatureCache(str(tmp_path / "cache"))
        )
        cb = Codebase.from_sources(
            "one", {"m.c": "int f(void) {\n    return 1;\n}\n"}
        )
        row = engine.extract_one(cb, nominal_kloc=250.0)
        assert row["size.kloc"] == 250.0
        # a different kloc is a different cache key, not a stale hit
        assert engine.extract_one(cb, nominal_kloc=9.0)["size.kloc"] == 9.0
