"""Incremental (file-granular) extraction: the delta path's contract.

A warm re-analysis after editing, deleting, renaming, or adding files
must recompute only what changed — proven through the
``engine.cache.file_hits``/``file_misses`` counters — and its row must
be *byte-identical* (key order and float bits) to a cold, uncached
extraction of the same tree. The read-only-cache scenario checks the
whole path degrades to a full recompute instead of crashing.
"""

from __future__ import annotations

import pickle

import pytest

from repro import obs
from repro.engine import ExtractionEngine, FeatureCache
from repro.engine.faults import FAULTS_ENV
from repro.lang import Codebase, SourceFile

N_FILES = 6


def make_codebase(mutate=False, drop=None, rename=None, add=None):
    """A small multi-file C/Python codebase with controlled edits."""
    files = []
    for i in range(N_FILES):
        path = f"src/m{i}.c"
        body = (f"int f{i}(int a) {{\n"
                f"    if (a > {i}) return a * {i + 1};\n"
                f"    return a;\n"
                f"}}\n")
        if mutate and i == 2:
            body += "int extra(int b) {\n    while (b) b--;\n    return b;\n}\n"
        if drop is not None and i == drop:
            continue
        if rename is not None and i == rename:
            path = f"src/renamed_m{i}.c"
        files.append(SourceFile(path, body))
    if add:
        files.append(SourceFile(add, "int fresh(void) {\n    return 9;\n}\n"))
    return Codebase("delta-app", files)


def reference_row(codebase):
    """Ground truth: a serial, uncached extraction."""
    return ExtractionEngine(workers=1).extract_one(codebase)


def extract_with_counters(engine, codebase):
    """Run one extraction under a private obs session; return (row, counters)."""
    session = obs.configure()
    try:
        row = engine.extract_one(codebase)
        counters = session.metrics.snapshot()["counters"]
    finally:
        obs.disable()
    return row, counters


def assert_byte_identical(actual, expected):
    assert list(actual) == list(expected), "feature key order differs"
    for key in expected:
        assert repr(actual[key]) == repr(expected[key]), key
    assert pickle.dumps(actual) == pickle.dumps(expected)


@pytest.fixture()
def warm_cache(tmp_path):
    """A cache seeded by one cold extraction of the pristine tree."""
    cache_dir = str(tmp_path / "cache")
    engine = ExtractionEngine(workers=1, cache=FeatureCache(cache_dir))
    _, counters = extract_with_counters(engine, make_codebase())
    # Cold run: every file probe misses and every record is stored.
    assert counters.get("engine.cache.file_misses") == N_FILES
    assert counters.get("engine.cache.file_stores") == N_FILES
    assert "engine.cache.file_hits" not in counters
    return cache_dir


class TestDeltaByteIdentity:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_touch_one_file_recomputes_one_file(self, warm_cache, workers):
        engine = ExtractionEngine(workers=workers,
                                  cache=FeatureCache(warm_cache))
        mutated = make_codebase(mutate=True)
        row, counters = extract_with_counters(engine, mutated)
        assert counters.get("engine.cache.file_hits") == N_FILES - 1
        assert counters.get("engine.cache.file_misses") == 1
        assert counters.get("engine.cache.file_stores") == 1
        assert counters.get("engine.delta.files_changed") == 1
        assert counters.get("engine.delta.files_unchanged") == N_FILES - 1
        assert_byte_identical(row, reference_row(make_codebase(mutate=True)))

    def test_delete_one_file(self, warm_cache):
        engine = ExtractionEngine(workers=1, cache=FeatureCache(warm_cache))
        shrunk = make_codebase(drop=4)
        row, counters = extract_with_counters(engine, shrunk)
        assert counters.get("engine.cache.file_hits") == N_FILES - 1
        assert "engine.cache.file_misses" not in counters
        assert counters.get("engine.delta.files_removed") == 1
        assert counters.get("engine.delta.files_unchanged") == N_FILES - 1
        assert_byte_identical(row, reference_row(make_codebase(drop=4)))

    def test_rename_one_file(self, warm_cache):
        # The file digest covers the path, so a rename is a miss for the
        # new path (path-dependent features like bug-finding dedup keys
        # would go stale otherwise) plus a removal of the old one.
        engine = ExtractionEngine(workers=1, cache=FeatureCache(warm_cache))
        renamed = make_codebase(rename=1)
        row, counters = extract_with_counters(engine, renamed)
        assert counters.get("engine.cache.file_hits") == N_FILES - 1
        assert counters.get("engine.cache.file_misses") == 1
        assert counters.get("engine.delta.files_added") == 1
        assert counters.get("engine.delta.files_removed") == 1
        assert counters.get("engine.delta.files_unchanged") == N_FILES - 1
        assert_byte_identical(row, reference_row(make_codebase(rename=1)))

    def test_add_one_file(self, warm_cache):
        engine = ExtractionEngine(workers=1, cache=FeatureCache(warm_cache))
        grown = make_codebase(add="src/zz_new.c")
        row, counters = extract_with_counters(engine, grown)
        assert counters.get("engine.cache.file_hits") == N_FILES
        assert counters.get("engine.cache.file_misses") == 1
        assert counters.get("engine.delta.files_added") == 1
        assert_byte_identical(row,
                              reference_row(make_codebase(add="src/zz_new.c")))

    def test_warm_row_hit_skips_file_probe(self, warm_cache):
        # Unchanged tree: pure row-level hit, no file-granular traffic.
        engine = ExtractionEngine(workers=1, cache=FeatureCache(warm_cache))
        row, counters = extract_with_counters(engine, make_codebase())
        assert counters.get("engine.cache.hits") == 1
        assert "engine.cache.file_hits" not in counters
        assert "engine.cache.file_misses" not in counters
        assert_byte_identical(row, reference_row(make_codebase()))

    def test_delta_row_is_row_cached_for_next_run(self, warm_cache):
        engine = ExtractionEngine(workers=1, cache=FeatureCache(warm_cache))
        mutated = make_codebase(mutate=True)
        first, _ = extract_with_counters(engine, mutated)
        again, counters = extract_with_counters(engine, mutated)
        assert counters.get("engine.cache.hits") == 1
        assert "engine.cache.file_hits" not in counters
        assert_byte_identical(again, first)

    def test_second_edit_uses_updated_manifest(self, warm_cache):
        # After the delta run stores its manifest, a further edit is
        # classified against the *mutated* tree, not the original one.
        engine = ExtractionEngine(workers=1, cache=FeatureCache(warm_cache))
        extract_with_counters(engine, make_codebase(mutate=True))
        twice = make_codebase(mutate=True, add="src/zz_new.c")
        row, counters = extract_with_counters(engine, twice)
        assert counters.get("engine.cache.file_hits") == N_FILES
        assert counters.get("engine.delta.files_added") == 1
        assert counters.get("engine.delta.files_unchanged") == N_FILES
        assert "engine.delta.files_changed" not in counters
        assert_byte_identical(row, reference_row(
            make_codebase(mutate=True, add="src/zz_new.c")))


class TestDeltaDegradation:
    def test_read_only_cache_full_recompute_no_crash(self, tmp_path,
                                                     monkeypatch):
        # The cache dir is a *file*: row lookup, file probes, and every
        # store fail with OSError. Extraction must degrade to a full
        # recompute with a correct row, never crash.
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        engine = ExtractionEngine(workers=1,
                                  cache=FeatureCache(str(blocker)))
        row, counters = extract_with_counters(engine, make_codebase())
        assert "engine.cache.hits" not in counters
        assert "engine.cache.file_hits" not in counters
        assert counters.get("engine.extracted") == 1
        assert_byte_identical(row, reference_row(make_codebase()))

    def test_missing_manifest_only_disables_classification(self,
                                                           warm_cache):
        # Wipe the manifest (advisory data): the delta path still reuses
        # cached records; only the engine.delta.* counters go silent.
        import json
        import pathlib

        for entry in pathlib.Path(warm_cache).rglob("*.json"):
            doc = json.loads(entry.read_text())
            if "files" in doc:
                entry.unlink()
        engine = ExtractionEngine(workers=1, cache=FeatureCache(warm_cache))
        mutated = make_codebase(mutate=True)
        row, counters = extract_with_counters(engine, mutated)
        assert counters.get("engine.cache.file_hits") == N_FILES - 1
        assert not any(name.startswith("engine.delta.")
                       for name in counters)
        assert_byte_identical(row, reference_row(make_codebase(mutate=True)))


class TestDeltaFailureBlame:
    def test_file_unit_failure_names_the_file(self, warm_cache,
                                              monkeypatch):
        # A crash on the delta path happens inside a per-file unit; the
        # TaskFailure must blame app *and* file.
        monkeypatch.setenv(FAULTS_ENV, "delta-app=crash")
        engine = ExtractionEngine(workers=1, on_error="skip",
                                  cache=FeatureCache(warm_cache))
        from repro.engine import ExtractionTask

        report = engine.run([ExtractionTask(
            name="delta-app", codebase=make_codebase(mutate=True))])
        assert report.rows == [None]
        (failure,) = report.failures
        assert failure.app == "delta-app"
        assert failure.file == "src/m2.c"
        assert "delta-app[src/m2.c]" in failure.describe()


class TestDeltaTelemetry:
    def test_delta_span_and_report_section(self, warm_cache):
        engine = ExtractionEngine(workers=1, cache=FeatureCache(warm_cache))
        session = obs.configure()
        try:
            engine.extract_one(make_codebase(mutate=True))
            spans = list(session.tracer.spans)
            report = obs.format_run_report(session)
        finally:
            obs.disable()
        merge_spans = [s for s in spans
                       if s.name == "testbed.app" and s.attrs.get("delta")]
        assert len(merge_spans) == 1
        assert merge_spans[0].attrs["files_reused"] == N_FILES - 1
        assert merge_spans[0].attrs["files_recomputed"] == 1
        assert "delta:" in report
        assert "file records:" in report
        assert "changed=1" in report
