"""Fault-injection suite: the engine's failure policies under fire.

Faults are staged through the ``REPRO_FAULTS`` seam in
:mod:`repro.engine.faults` — the environment variable travels into
forked workers, so crashes, hangs, SIGKILLs, and unpicklable results
fire inside real worker processes, not mocks. The invariant every
scenario re-checks: under ``on_error="skip"`` the surviving apps' rows
are byte-identical to a clean run, and the failure report names exactly
the injected apps.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro import obs
from repro.engine import (
    ExtractionEngine,
    ExtractionError,
    ExtractionTask,
    FeatureCache,
    TaskTimeout,
)
from repro.engine.faults import FAULTS_ENV, InjectedFault, parse_faults
from repro.lang import Codebase

#: Generous wall-clock bound proving the engine did not sit out a
#: long sleep: every injected hang below sleeps for 60+ seconds.
PROMPT = 30.0

APP_SOURCES = {
    "app-a": {"a.c": "int f(int x) {\n    return x + 1;\n}\n"},
    "app-b": {"b.py": "def g(y):\n    return y * 2\n"},
    "app-c": {"c.c": "int h(void) {\n    return 3;\n}\n"},
    "app-d": {"d.py": "def k(z):\n    return z - 4\n"},
}


def make_tasks(names=None):
    names = list(names or APP_SOURCES)
    return [
        ExtractionTask(
            name=name,
            codebase=Codebase.from_sources(name, dict(APP_SOURCES[name])),
        )
        for name in names
    ]


@pytest.fixture()
def clean_rows():
    """Ground truth: a clean serial run over all four apps."""
    engine = ExtractionEngine(workers=1)
    return dict(zip(APP_SOURCES,
                    engine.extract_rows(make_tasks())))


def inject(monkeypatch, spec: str) -> None:
    monkeypatch.setenv(FAULTS_ENV, spec)


def assert_survivors_identical(report, clean_rows):
    """Surviving rows must be byte-identical to the clean run's."""
    failed = {f.app for f in report.failures}
    names = list(APP_SOURCES)
    for index, name in enumerate(names):
        if name in failed:
            assert report.rows[index] is None
        else:
            expected = clean_rows[name]
            actual = report.rows[index]
            assert pickle.dumps(actual) == pickle.dumps(expected), name


class TestFaultSeam:
    def test_spec_parsing(self):
        faults = parse_faults("a=crash; b=hang:5 ;c=kill_once:/tmp/s")
        assert faults["a"].kind == "crash"
        assert faults["b"].payload == "5"
        assert faults["c"].payload == "/tmp/s"

    def test_unset_env_means_no_faults(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        from repro.engine.faults import active_fault

        assert active_fault("anything") is None


class TestRaisePolicy:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_crash_propagates(self, monkeypatch, workers):
        inject(monkeypatch, "app-b=crash")
        engine = ExtractionEngine(workers=workers, on_error="raise")
        with pytest.raises(InjectedFault, match="app-b"):
            engine.extract_rows(make_tasks())

    def test_crash_cancels_inflight_hang(self, monkeypatch, timer):
        # app-a crashes while app-b sleeps for 60s in the other worker;
        # fail-fast must kill the hung worker, not wait it out.
        inject(monkeypatch, "app-a=crash;app-b=hang:60")
        engine = ExtractionEngine(workers=2, on_error="raise")
        with timer() as elapsed:
            with pytest.raises(InjectedFault, match="app-a"):
                engine.extract_rows(make_tasks())
        assert elapsed() < PROMPT

    def test_timeout_raises_task_timeout(self, monkeypatch, timer):
        inject(monkeypatch, "app-c=hang:60")
        engine = ExtractionEngine(workers=2, on_error="raise",
                                  task_timeout=3.0)
        with timer() as elapsed:
            with pytest.raises(TaskTimeout, match="app-c"):
                engine.extract_rows(make_tasks())
        assert elapsed() < PROMPT

    def test_worker_death_aborts(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        inject(monkeypatch, "app-a=kill")
        engine = ExtractionEngine(workers=2, on_error="raise")
        with pytest.raises(BrokenProcessPool):
            engine.extract_rows(make_tasks())


class TestSkipPolicy:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_crash_is_skipped_and_reported(self, monkeypatch, workers,
                                           clean_rows):
        inject(monkeypatch, "app-b=crash")
        engine = ExtractionEngine(workers=workers, on_error="skip")
        report = engine.run(make_tasks())
        assert [f.app for f in report.failures] == ["app-b"]
        failure = report.failures[0]
        assert failure.kind == "crash"
        assert failure.attempts == 1
        assert failure.error_type == "InjectedFault"
        assert "InjectedFault" in failure.traceback
        assert "app-b" in failure.describe()
        assert_survivors_identical(report, clean_rows)

    def test_hang_times_out_and_is_skipped(self, monkeypatch, clean_rows,
                                           timer):
        inject(monkeypatch, "app-c=hang:60")
        engine = ExtractionEngine(workers=2, on_error="skip",
                                  task_timeout=3.0)
        with timer() as elapsed:
            report = engine.run(make_tasks())
        assert elapsed() < PROMPT
        assert [f.app for f in report.failures] == ["app-c"]
        assert report.failures[0].kind == "timeout"
        assert report.failures[0].error_type == "TaskTimeout"
        assert_survivors_identical(report, clean_rows)

    def test_killed_worker_recovers_via_rebuild(self, monkeypatch,
                                                tmp_path, clean_rows):
        # The worker dies mid-run; the pool is rebuilt once and the
        # victim re-runs successfully — no failures at all.
        sentinel = tmp_path / "killed"
        inject(monkeypatch, f"app-a=kill_once:{sentinel}")
        engine = ExtractionEngine(workers=2, on_error="skip")
        report = engine.run(make_tasks())
        assert report.failures == []
        assert sentinel.exists()
        assert_survivors_identical(report, clean_rows)

    def test_persistent_killer_is_reported_as_worker_lost(
            self, monkeypatch, clean_rows):
        inject(monkeypatch, "app-d=kill")
        engine = ExtractionEngine(workers=2, on_error="skip")
        report = engine.run(make_tasks())
        assert [f.app for f in report.failures] == ["app-d"]
        assert report.failures[0].kind == "worker-lost"
        assert_survivors_identical(report, clean_rows)

    def test_unpicklable_result_is_skipped(self, monkeypatch, clean_rows):
        inject(monkeypatch, "app-b=poison")
        engine = ExtractionEngine(workers=2, on_error="skip")
        report = engine.run(make_tasks())
        assert [f.app for f in report.failures] == ["app-b"]
        assert report.failures[0].kind == "crash"
        assert_survivors_identical(report, clean_rows)

    def test_acceptance_crash_hang_and_killed_worker(self, monkeypatch,
                                                     tmp_path, clean_rows,
                                                     timer):
        # The ISSUE's combined scenario: one crasher, one hanger, one
        # worker killed mid-run. The run completes promptly, reports
        # exactly the genuinely failed apps (the kill_once victim
        # recovers via the pool rebuild), and the survivors' rows are
        # byte-identical to the clean run.
        sentinel = tmp_path / "killed"
        inject(monkeypatch,
               f"app-a=crash;app-c=hang:60;app-d=kill_once:{sentinel}")
        engine = ExtractionEngine(workers=2, on_error="skip",
                                  task_timeout=5.0)
        with timer() as elapsed:
            report = engine.run(make_tasks())
        assert elapsed() < PROMPT
        kinds = {f.app: f.kind for f in report.failures}
        assert kinds == {"app-a": "crash", "app-c": "timeout"}
        assert_survivors_identical(report, clean_rows)

    def test_read_only_cache_degrades_not_fails(self, monkeypatch,
                                                tmp_path, clean_rows):
        # The cache dir is a *file*: every store fails with OSError.
        # Extraction must still succeed, merely uncached.
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        engine = ExtractionEngine(workers=2, on_error="skip",
                                  cache=FeatureCache(str(blocker)))
        report = engine.run(make_tasks())
        assert report.failures == []
        assert_survivors_identical(report, clean_rows)

    def test_failures_do_not_poison_the_cache(self, monkeypatch,
                                              tmp_path, clean_rows):
        # Run once with a crasher, then clear the fault: the previously
        # failed app must recompute cleanly (nothing stale was stored),
        # the survivors must hit their cached rows.
        cache_dir = tmp_path / "cache"
        inject(monkeypatch, "app-b=crash")
        engine = ExtractionEngine(workers=2, on_error="skip",
                                  cache=FeatureCache(str(cache_dir)))
        report = engine.run(make_tasks())
        assert [f.app for f in report.failures] == ["app-b"]
        monkeypatch.delenv(FAULTS_ENV)
        healed = engine.run(make_tasks())
        assert healed.failures == []
        assert_survivors_identical(healed, clean_rows)


class TestRetryPolicy:
    def test_transient_crash_recovers(self, monkeypatch, tmp_path,
                                      clean_rows):
        sentinel = tmp_path / "crashed"
        inject(monkeypatch, f"app-b=crash_once:{sentinel}")
        engine = ExtractionEngine(workers=2, on_error="retry",
                                  max_retries=2)
        report = engine.run(make_tasks())
        assert report.failures == []
        assert sentinel.exists()
        assert_survivors_identical(report, clean_rows)

    def test_retries_are_bounded(self, monkeypatch, clean_rows):
        inject(monkeypatch, "app-b=crash")
        engine = ExtractionEngine(workers=2, on_error="retry",
                                  max_retries=2)
        report = engine.run(make_tasks())
        assert [f.app for f in report.failures] == ["app-b"]
        # 1 initial + max_retries extra attempts, no more
        assert report.failures[0].attempts == 3
        assert_survivors_identical(report, clean_rows)

    def test_max_retries_zero_means_no_retry(self, monkeypatch):
        inject(monkeypatch, "app-b=crash")
        engine = ExtractionEngine(workers=2, on_error="retry",
                                  max_retries=0)
        report = engine.run(make_tasks())
        assert report.failures[0].attempts == 1

    def test_last_attempt_runs_in_scheduler_process(self, monkeypatch):
        # The fault crashes in every process but this one: only a
        # genuinely in-process final attempt can succeed.
        inject(monkeypatch, f"app-b=crash_in_worker:{os.getpid()}")
        engine = ExtractionEngine(workers=2, on_error="retry",
                                  max_retries=1)
        report = engine.run(make_tasks())
        assert report.failures == []

    def test_timeouts_are_not_retried(self, monkeypatch, timer):
        # A task that hung once is assumed to hang again; retrying it
        # would multiply the stall by max_retries.
        inject(monkeypatch, "app-c=hang:60")
        engine = ExtractionEngine(workers=2, on_error="retry",
                                  task_timeout=3.0, max_retries=5)
        with timer() as elapsed:
            report = engine.run(make_tasks())
        assert elapsed() < PROMPT
        assert report.failures[0].kind == "timeout"
        assert report.failures[0].attempts == 1


class TestFailureObservability:
    def test_counters_and_error_spans(self, monkeypatch):
        inject(monkeypatch, "app-b=crash")
        engine = ExtractionEngine(workers=2, on_error="retry",
                                  max_retries=1)
        obs.configure()
        try:
            engine.run(make_tasks())
            session = obs.active()
            counters = session.metrics.snapshot()["counters"]
            spans = list(session.tracer.spans)
        finally:
            obs.disable()
        assert counters.get("engine.task_failures") == 1
        assert counters.get("engine.task_retries") == 1
        errored = [s for s in spans
                   if s.name == "testbed.app" and "error" in s.attrs]
        assert errored
        assert all(s.attrs["app"] == "app-b" for s in errored)
        assert all(s.attrs["error"] == "InjectedFault" for s in errored)

    def test_pool_rebuild_counter(self, monkeypatch, tmp_path):
        sentinel = tmp_path / "killed"
        inject(monkeypatch, f"app-a=kill_once:{sentinel}")
        engine = ExtractionEngine(workers=2, on_error="skip")
        obs.configure()
        try:
            report = engine.run(make_tasks())
            counters = obs.active().metrics.snapshot()["counters"]
        finally:
            obs.disable()
        assert report.failures == []
        assert counters.get("engine.pool_rebuilds") == 1

    def test_extract_span_records_failure_count(self, monkeypatch):
        inject(monkeypatch, "app-b=crash")
        engine = ExtractionEngine(workers=2, on_error="skip")
        obs.configure()
        try:
            engine.run(make_tasks())
            spans = list(obs.active().tracer.spans)
        finally:
            obs.disable()
        (extract,) = [s for s in spans if s.name == "engine.extract"]
        assert extract.attrs["failures"] == 1
        assert extract.attrs["on_error"] == "skip"


class TestExtractOne:
    def test_failure_raises_extraction_error_even_when_skipping(
            self, monkeypatch):
        inject(monkeypatch, "solo=crash")
        engine = ExtractionEngine(workers=1, on_error="skip")
        cb = Codebase.from_sources("solo", {"m.py": "x = 1\n"})
        with pytest.raises(ExtractionError, match="solo"):
            engine.extract_one(cb)


class TestPipelineThreading:
    """Failures flow through build_feature_table without disturbing
    the surviving apps' rows or order."""

    def test_failed_app_dropped_deterministically(self, monkeypatch,
                                                  engine_corpus,
                                                  reference_table):
        from repro.core.pipeline import build_feature_table

        victim = sorted(a.name for a in engine_corpus.apps)[2]
        inject(monkeypatch, f"{victim}=crash")
        table = build_feature_table(
            engine_corpus,
            engine=ExtractionEngine(workers=2, on_error="skip"),
        )
        assert [f.app for f in table.failures] == [victim]
        assert victim not in table.app_names
        expected_names = tuple(n for n in reference_table.app_names
                               if n != victim)
        assert table.app_names == expected_names
        reference = dict(zip(reference_table.app_names,
                             reference_table.rows))
        for name, row in zip(table.app_names, table.rows):
            assert pickle.dumps(row) == pickle.dumps(reference[name])

    def test_raise_policy_keeps_table_complete_or_fails(self, monkeypatch,
                                                        engine_corpus):
        from repro.core.pipeline import build_feature_table

        victim = sorted(a.name for a in engine_corpus.apps)[0]
        inject(monkeypatch, f"{victim}=crash")
        with pytest.raises(InjectedFault):
            build_feature_table(
                engine_corpus,
                engine=ExtractionEngine(workers=1, on_error="raise"),
            )

    def test_failures_survive_table_restriction(self, monkeypatch,
                                                engine_corpus):
        from repro.core.pipeline import build_feature_table

        victim = sorted(a.name for a in engine_corpus.apps)[1]
        inject(monkeypatch, f"{victim}=crash")
        table = build_feature_table(
            engine_corpus,
            engine=ExtractionEngine(workers=1, on_error="skip"),
        )
        restricted = table.restricted(["size"])
        assert restricted.failures == table.failures
        named = table.restricted_to_features(["size.log_kloc"])
        assert named.failures == table.failures
