"""Observability integration: the engine is visible, not a black box.

Covers the satellite contract: cache hit/miss counters and per-worker
spans show up in the ``--profile`` run report, worker-process spans
graft into the parent trace with valid parent links, and the JSONL
trace schema still validates with the engine enabled.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import main
from repro.core.pipeline import build_feature_table
from repro.engine import ExtractionEngine, FeatureCache


@pytest.fixture
def source_tree(tmp_path):
    d = tmp_path / "tree"
    d.mkdir()
    (d / "m.c").write_text(
        "int f(int x) {\n    if (x > 0) {\n        x--;\n    }\n"
        "    return x;\n}\n"
    )
    return str(d)


class TestCounters:
    def test_cold_then_warm_counters(self, engine_corpus, tmp_path):
        cache = FeatureCache(str(tmp_path / "cache"))
        session = obs.configure()
        build_feature_table(
            engine_corpus, engine=ExtractionEngine(workers=1, cache=cache)
        )
        cold = session.metrics.snapshot()["counters"]
        obs.disable()
        n = len(engine_corpus.apps)
        assert cold["engine.cache.misses"] == n
        assert cold["engine.cache.stores"] == n
        assert cold["engine.extracted"] == n

        session = obs.configure()
        build_feature_table(
            engine_corpus, engine=ExtractionEngine(workers=1, cache=cache)
        )
        warm = session.metrics.snapshot()["counters"]
        obs.disable()
        assert warm["engine.cache.hits"] == n
        assert "engine.extracted" not in warm

    def test_counters_render_in_run_report(self, engine_corpus, tmp_path):
        cache = FeatureCache(str(tmp_path / "cache"))
        session = obs.configure(profile=True)
        build_feature_table(
            engine_corpus, engine=ExtractionEngine(workers=1, cache=cache)
        )
        report = obs.format_run_report(session)
        obs.disable()
        assert "engine.cache.misses" in report
        assert "engine.cache.stores" in report

    def test_worker_counters_merge_into_parent(self, engine_corpus):
        session = obs.configure()
        build_feature_table(
            engine_corpus, engine=ExtractionEngine(workers=2)
        )
        counters = session.metrics.snapshot()["counters"]
        obs.disable()
        # testbed.files_analyzed is incremented inside the workers and
        # must be folded back into the parent registry.
        assert counters["testbed.files_analyzed"] == sum(
            len(app.codebase) for app in engine_corpus.apps
        )


class TestWorkerSpans:
    def test_per_worker_spans_present_with_pids(self, engine_corpus):
        session = obs.configure()
        build_feature_table(
            engine_corpus, engine=ExtractionEngine(workers=2)
        )
        workers = session.tracer.spans_named("engine.worker")
        obs.disable()
        assert len(workers) == len(engine_corpus.apps)
        assert all(isinstance(s.attrs["pid"], int) for s in workers)
        apps = {s.attrs["app"] for s in workers}
        assert apps == {app.name for app in engine_corpus.apps}

    def test_grafted_analyzer_spans_under_workers(self, engine_corpus):
        session = obs.configure()
        build_feature_table(
            engine_corpus, engine=ExtractionEngine(workers=2)
        )
        names = {s.name for s in session.tracer.spans}
        by_id = {s.span_id: s for s in session.tracer.spans}
        roots = session.tracer.spans_named("testbed.extract_features")
        obs.disable()
        assert {"analysis.cfg", "analysis.bugfind", "analysis.loc"} <= names
        assert len(roots) == len(engine_corpus.apps)
        for root in roots:
            assert by_id[root.parent_id].name == "engine.worker"

    def test_worker_spans_in_run_report(self, engine_corpus):
        session = obs.configure(profile=True)
        build_feature_table(
            engine_corpus, engine=ExtractionEngine(workers=2)
        )
        report = obs.format_run_report(session)
        obs.disable()
        assert "engine.worker" in report
        assert "analysis.cfg" in report

    def test_grafted_self_time_stays_truthful(self, engine_corpus):
        # Grafted parents must absorb their children's durations, so a
        # worker's span tree never double-counts into self-time.
        session = obs.configure()
        build_feature_table(
            engine_corpus, engine=ExtractionEngine(workers=2)
        )
        for span in session.tracer.spans_named("testbed.extract_features"):
            assert span.child_time > 0.0
            assert span.self_time < span.duration
        obs.disable()


class TestTraceSchema:
    def test_jsonl_schema_validates_with_engine(self, engine_corpus,
                                                tmp_path):
        session = obs.configure(
            trace_path=str(tmp_path / "trace.jsonl")
        )
        build_feature_table(
            engine_corpus,
            engine=ExtractionEngine(
                workers=2, cache=FeatureCache(str(tmp_path / "cache"))
            ),
        )
        obs.disable()
        session.write_trace()
        records = obs.read_jsonl(str(tmp_path / "trace.jsonl"))
        assert records
        ids = set()
        for record in records:
            assert sorted(record) == sorted(obs.SPAN_RECORD_KEYS)
            assert isinstance(record["name"], str)
            assert isinstance(record["start"], float)
            assert isinstance(record["duration"], float)
            assert isinstance(record["attrs"], dict)
            ids.add(record["span_id"])
        assert len(ids) == len(records), "span ids must stay unique"
        # every parent link resolves, grafted subtrees included
        for record in records:
            if record["parent"] is not None:
                assert record["parent"] in ids
        names = {r["name"] for r in records}
        assert {"engine.extract", "engine.worker", "testbed.app",
                "testbed.extract_features", "analysis.cfg"} <= names


class TestCLIProfile:
    def test_profile_shows_cache_counters(self, source_tree, tmp_path,
                                          capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["analyze", source_tree, "--cache-dir", cache_dir,
                     "--profile"]) == 0
        cold = capsys.readouterr().out
        assert "engine.cache.misses" in cold
        assert "engine.cache.stores" in cold
        assert main(["analyze", source_tree, "--cache-dir", cache_dir,
                     "--profile"]) == 0
        warm = capsys.readouterr().out
        assert "engine.cache.hits" in warm

    def test_cached_analyze_matches_cold_output(self, source_tree, tmp_path,
                                                capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["analyze", source_tree, "--json",
                     "--cache-dir", cache_dir]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(["analyze", source_tree, "--json",
                     "--cache-dir", cache_dir]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm == cold

    def test_no_cache_flag_forces_recompute(self, source_tree, tmp_path,
                                            capsys, monkeypatch):
        cache_dir = str(tmp_path / "cache")
        monkeypatch.setenv("REPRO_CACHE_DIR", cache_dir)
        assert main(["analyze", source_tree, "--profile"]) == 0
        assert "engine.cache.misses" in capsys.readouterr().out
        assert main(["analyze", source_tree, "--no-cache",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "engine.cache.hits" not in out
        assert "testbed.extract_features" in out
