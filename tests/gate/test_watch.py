"""Watch-loop semantics: debounce coalescing, incremental recompute."""

from __future__ import annotations

import pytest

from repro import obs
from repro.gate import TreeWatcher
from repro.gate.watch import watch_event
from tests.gate.conftest import RISKY_C, SAFE_C


class FakeClock:
    """A controllable monotonic clock for debounce tests."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def tree(tmp_path):
    d = tmp_path / "watched"
    d.mkdir()
    (d / "app.c").write_text(SAFE_C)
    (d / "util.c").write_text("int add(int a, int b) { return a + b; }\n")
    return d


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def watcher(tree, clock):
    return TreeWatcher(str(tree), debounce=0.5, clock=clock)


class TestConstruction:
    def test_missing_root_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not a directory"):
            TreeWatcher(str(tmp_path / "nope"))

    def test_negative_debounce_rejected(self, tree):
        with pytest.raises(ValueError, match="debounce"):
            TreeWatcher(str(tree), debounce=-0.1)

    def test_baseline_is_assessed_without_emitting(self, watcher):
        assert watcher.seq == 0
        assert len(watcher.codebase) == 2


class TestDebounce:
    def test_unchanged_tree_never_reassesses(self, watcher, clock):
        for _ in range(5):
            clock.advance(1.0)
            assert watcher.poll() is None
        assert watcher.seq == 0

    def test_mtime_only_touch_is_invisible(self, watcher, tree, clock):
        # Rewriting identical bytes changes no digest -> no assessment.
        (tree / "app.c").write_text(SAFE_C)
        clock.advance(1.0)
        assert watcher.poll() is None
        assert watcher.seq == 0

    def test_change_waits_out_the_quiet_window(self, watcher, tree,
                                               clock):
        (tree / "app.c").write_text(RISKY_C)
        assert watcher.poll() is None        # detected; quiet restarts
        clock.advance(0.2)
        assert watcher.poll() is None        # still inside debounce
        clock.advance(0.4)
        report = watcher.poll()              # 0.6s quiet > 0.5 debounce
        assert report is not None
        assert report.counts["changed"] == 1
        assert watcher.seq == 1

    def test_burst_of_writes_coalesces_to_one_report(self, watcher,
                                                     tree, clock):
        (tree / "app.c").write_text(RISKY_C)
        assert watcher.poll() is None
        clock.advance(0.3)
        # Second write inside the window restarts the quiet timer.
        (tree / "util.c").write_text(
            "int add(int a, int b) { return a + b + 1; }\n")
        assert watcher.poll() is None
        clock.advance(0.4)                   # 0.4 < debounce since write 2
        assert watcher.poll() is None
        clock.advance(0.2)
        report = watcher.poll()
        assert report is not None
        # One coalesced report covering both files, not one per write.
        assert report.counts["changed"] == 2
        assert watcher.seq == 1
        clock.advance(5.0)
        assert watcher.poll() is None        # nothing left to report

    def test_zero_debounce_fires_on_next_quiet_poll(self, tree, clock):
        watcher = TreeWatcher(str(tree), debounce=0.0, clock=clock)
        (tree / "app.c").write_text(RISKY_C)
        assert watcher.poll() is None
        assert watcher.poll() is not None


class TestIncrementalRecompute:
    def test_only_changed_files_recompute(self, watcher, tree, clock):
        obs.configure()
        (tree / "app.c").write_text(RISKY_C)
        watcher.poll()
        clock.advance(1.0)
        assert watcher.poll() is not None
        counters = obs.active().metrics.snapshot()["counters"]
        assert counters["watch.reassessments"] == 1
        assert counters["watch.files_recomputed"] == 1  # not 2

    def test_added_and_removed_files_are_classified(self, watcher, tree,
                                                    clock):
        (tree / "new.c").write_text("int neu(void) { return 1; }\n")
        (tree / "util.c").unlink()
        watcher.poll()
        clock.advance(1.0)
        report = watcher.poll()
        assert report.counts["added"] == 1
        assert report.counts["removed"] == 1
        assert len(watcher.codebase) == 2

    def test_next_delta_is_against_latest_baseline(self, watcher, tree,
                                                   clock):
        (tree / "app.c").write_text(RISKY_C)
        watcher.poll()
        clock.advance(1.0)
        first = watcher.poll()
        assert first.risk_delta > 0
        (tree / "app.c").write_text(SAFE_C)  # revert
        watcher.poll()
        clock.advance(1.0)
        second = watcher.poll()
        # The revert is judged against the risky state, not the origin.
        assert second.risk_delta == pytest.approx(-first.risk_delta)


class TestEventShape:
    def test_watch_event_is_stream_compatible(self, watcher, tree, clock):
        (tree / "app.c").write_text(RISKY_C)
        watcher.poll()
        clock.advance(1.0)
        report = watcher.poll()
        event = watch_event(watcher, report)
        assert event["v"] == 1
        assert event["type"] == "event"
        assert event["name"] == "watch.assess"
        fields = event["fields"]
        assert fields["seq"] == 1
        assert fields["changed"] == 1
        assert fields["breach"] is False    # no threshold configured
        assert fields["verdict"] == report.verdict.value
        assert isinstance(fields["top"], list)

    def test_run_emits_count_events(self, watcher, tree, clock):
        (tree / "app.c").write_text(RISKY_C)
        events = []
        ticks = iter([0.0] * 10)

        def fake_sleep(_):
            clock.advance(1.0)
            next(ticks)

        emitted = watcher.run(events.append, interval=0.0, count=1,
                              sleep=fake_sleep)
        assert emitted == 1
        assert len(events) == 1
        assert events[0]["fields"]["seq"] == 1
