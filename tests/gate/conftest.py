"""Gate fixtures: a benign base tree and a regressed head tree."""

from __future__ import annotations

import pytest

from repro import obs

SAFE_C = (
    "#include <string.h>\n"
    "int handle(const char *req, char *out, unsigned cap) {\n"
    "    strncpy(out, req, cap - 1);\n"
    "    out[cap - 1] = 0;\n"
    "    return 0;\n"
    "}\n"
)

RISKY_C = (
    "#include <string.h>\n"
    "int handle(char *req) {\n"
    "    char buf[32];\n"
    "    strcpy(buf, req);\n"
    "    system(req);\n"
    "    return 0;\n"
    "}\n"
)


@pytest.fixture(autouse=True)
def obs_reset():
    """Gate surfaces record counters; never leak a session across tests."""
    obs.disable()
    yield
    obs.disable()


@pytest.fixture
def base_tree(tmp_path):
    d = tmp_path / "base"
    d.mkdir()
    (d / "app.c").write_text(SAFE_C)
    return str(d)


@pytest.fixture
def head_tree(tmp_path):
    d = tmp_path / "head"
    d.mkdir()
    (d / "app.c").write_text(RISKY_C)
    return str(d)
