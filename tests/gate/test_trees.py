"""Tree-spec resolution: directories, Codebases, synth:NAME@K specs."""

from __future__ import annotations

import pytest

from repro.gate import resolve_tree
from repro.lang import Codebase


class TestDirectoryAndCodebase:
    def test_directory_resolves(self, base_tree):
        codebase = resolve_tree(base_tree)
        assert len(codebase) == 1

    def test_codebase_passes_through(self):
        codebase = Codebase.from_sources("x", {"a.py": "x = 1\n"})
        assert resolve_tree(codebase) is codebase

    def test_non_directory_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not a directory"):
            resolve_tree(str(tmp_path / "missing"))

    def test_empty_tree_rejected_unless_allowed(self, tmp_path):
        empty = tmp_path / "void"
        empty.mkdir()
        with pytest.raises(ValueError, match="no recognised"):
            resolve_tree(str(empty))
        assert len(resolve_tree(str(empty), allow_empty=True)) == 0

    def test_non_spec_type_rejected(self):
        with pytest.raises(TypeError):
            resolve_tree(42)


class TestSynthSpecs:
    @pytest.fixture(scope="class")
    def app_name(self):
        from repro.synth.cvegen import generate_profiles

        return generate_profiles(seed=0)[0].name

    def test_version_zero_is_the_generated_app(self, app_name):
        v0 = resolve_tree(f"synth:{app_name}")
        explicit = resolve_tree(f"synth:{app_name}@0")
        assert {s.path: s.text for s in v0.files} == \
            {s.path: s.text for s in explicit.files}

    def test_versions_are_deterministic(self, app_name):
        first = resolve_tree(f"synth:{app_name}@2", seed=0)
        again = resolve_tree(f"synth:{app_name}@2", seed=0)
        assert {s.path: s.text for s in first.files} == \
            {s.path: s.text for s in again.files}

    def test_later_version_differs_from_v0(self, app_name):
        v0 = resolve_tree(f"synth:{app_name}@0")
        v2 = resolve_tree(f"synth:{app_name}@2")
        assert {s.path: s.text for s in v0.files} != \
            {s.path: s.text for s in v2.files}

    @pytest.mark.parametrize("spec, message", [
        ("synth:", "empty app name"),
        ("synth:app@x", "bad version index"),
        ("synth:app@-1", "negative version index"),
        ("synth:no-such-app-ever", "unknown synthetic app"),
    ])
    def test_bad_specs_rejected(self, spec, message):
        with pytest.raises(ValueError, match=message):
            resolve_tree(spec)
