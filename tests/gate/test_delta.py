"""Gate semantics: thresholds, risk scoring, attribution, payloads."""

from __future__ import annotations

import math

import pytest

from repro.gate import (
    DEFAULT_THRESHOLD,
    GateError,
    GateReport,
    assess_delta,
    feature_risk_score,
    format_gate_report,
    gate_payload,
    gate_tree,
)
from repro.gate.delta import flatten_record
from repro.serve.payloads import SCHEMA_VERSION, dump_payload


def report_with(risk_before, risk_after, threshold):
    """A minimal report for pure threshold-semantics tests."""
    return GateReport(
        base_name="base", head_name="head", mode="features",
        risk_before=risk_before, risk_after=risk_after,
        threshold=threshold, probability_deltas={},
        moved_features=(), files=(), counts={})


class TestThresholdSemantics:
    def test_delta_exactly_at_threshold_passes(self):
        # Strictly-greater semantics: 0.5 - 0.0 == threshold -> pass.
        report = report_with(0.0, 0.5, threshold=0.5)
        assert report.risk_delta == 0.5
        assert report.breach is False

    def test_delta_just_above_threshold_breaches(self):
        report = report_with(0.0, 0.5000001, threshold=0.5)
        assert report.breach is True

    def test_negative_delta_never_breaches(self):
        # An improving change passes even a zero threshold.
        report = report_with(0.6, 0.2, threshold=0.0)
        assert report.risk_delta < 0
        assert report.breach is False

    def test_no_threshold_never_breaches(self):
        report = report_with(0.0, 0.9, threshold=None)
        assert report.breach is False

    def test_default_threshold_matches_neutral_band(self):
        from repro.core.evaluator import NEUTRAL_BAND

        assert DEFAULT_THRESHOLD == NEUTRAL_BAND

    @pytest.mark.parametrize("bad", [
        float("nan"), float("inf"), float("-inf"), True, "0.1", None])
    def test_gate_tree_rejects_non_finite_threshold(self, bad, base_tree,
                                                    head_tree):
        with pytest.raises(GateError):
            gate_tree(base_tree, head_tree, threshold=bad)


class TestFeaturesOnlyGate:
    def test_regression_breaches_without_a_model(self, base_tree,
                                                 head_tree):
        report = gate_tree(base_tree, head_tree, threshold=0.0)
        assert report.mode == "features"
        assert report.risk_delta > 0
        assert report.breach is True
        assert report.probability_deltas == {}

    def test_improvement_passes(self, base_tree, head_tree):
        report = gate_tree(head_tree, base_tree, threshold=0.0)
        assert report.risk_delta < 0
        assert report.breach is False
        assert report.verdict.value == "improved"

    def test_identical_trees_are_neutral(self, base_tree):
        report = gate_tree(base_tree, base_tree, threshold=0.0)
        assert report.risk_delta == 0.0
        assert report.breach is False
        assert report.counts["unchanged"] == report.counts["files_base"]

    def test_risk_proxy_is_bounded_and_monotone(self):
        assert feature_risk_score({}) == 0.0
        low = feature_risk_score({"bugs.high_per_kloc": 1.0})
        high = feature_risk_score({"bugs.high_per_kloc": 5.0})
        assert 0.0 < low < high < 1.0
        # Negative inputs clamp to zero exposure, not negative risk.
        assert feature_risk_score({"bugs.high_per_kloc": -3.0}) == 0.0


class TestEmptyTrees:
    def test_empty_base_classifies_everything_added(self, tmp_path,
                                                    head_tree):
        empty = tmp_path / "empty"
        empty.mkdir()
        report = gate_tree(str(empty), head_tree, threshold=0.0)
        assert report.counts["files_base"] == 0
        assert report.counts["added"] == report.counts["files_head"] == 1
        assert report.risk_before == 0.0
        assert report.breach is True

    def test_empty_head_counts_removals(self, tmp_path, base_tree):
        empty = tmp_path / "empty2"
        empty.mkdir()
        report = gate_tree(base_tree, str(empty), threshold=0.0)
        assert report.counts["removed"] == 1
        assert report.risk_after == 0.0
        assert report.breach is False

    def test_missing_directory_is_an_error(self, base_tree):
        with pytest.raises(ValueError, match="not a directory"):
            gate_tree(base_tree, base_tree + "-nope", threshold=0.0)


class TestAttribution:
    def test_changed_file_carries_salient_drivers(self, base_tree,
                                                  head_tree):
        report = gate_tree(base_tree, head_tree, threshold=0.0)
        assert [f.path for f in report.files] == ["app.c"]
        delta = report.files[0]
        assert delta.status == "changed"
        assert delta.score > 0
        names = [move.name for move in delta.drivers]
        # Dangerous-call findings outrank size churn in the ranking.
        assert any(name.startswith("bugs.") for name in names)

    def test_moved_features_report_tree_level_changes(self, base_tree,
                                                      head_tree):
        report = gate_tree(base_tree, head_tree, threshold=0.0)
        moved = {move.name: move for move in report.moved_features}
        assert moved  # the regression moved something
        for move in moved.values():
            assert move.delta == move.after - move.before

    def test_model_mode_reports_probability_deltas(self, base_tree,
                                                   head_tree,
                                                   small_training):
        report = gate_tree(base_tree, head_tree,
                           model=small_training.model, threshold=0.0)
        assert report.mode == "model"
        assert report.probability_deltas
        assert report.risk_delta == pytest.approx(
            report.risk_after - report.risk_before)

    def test_assess_delta_never_gates(self, base_tree, head_tree):
        report = assess_delta(base_tree, head_tree)
        assert report.threshold is None
        assert report.breach is False
        assert report.risk_delta > 0


class TestPayload:
    def test_payload_shape_and_schema_version(self, base_tree, head_tree):
        payload = gate_payload(gate_tree(base_tree, head_tree,
                                         threshold=0.0))
        assert payload["schema_version"] == SCHEMA_VERSION
        assert set(payload) == {
            "schema_version", "base", "head", "mode", "risk",
            "threshold", "breach", "verdict", "probability_deltas",
            "moved_features", "files", "counts", "truncated_files"}
        assert payload["risk"]["delta"] == pytest.approx(
            payload["risk"]["after"] - payload["risk"]["before"])
        assert math.isfinite(payload["risk"]["delta"])

    def test_payload_bytes_are_deterministic(self, base_tree, head_tree):
        first = dump_payload(gate_payload(
            gate_tree(base_tree, head_tree, threshold=0.0)))
        second = dump_payload(gate_payload(
            gate_tree(base_tree, head_tree, threshold=0.0)))
        assert first == second

    def test_text_report_states_breach(self, base_tree, head_tree):
        text = format_gate_report(gate_tree(base_tree, head_tree,
                                            threshold=0.0))
        assert "Risk gate: base -> head" in text
        assert "BREACH" in text
        assert "files driving the change:" in text


class TestFlattenRecord:
    def test_whitelisted_scalars_and_derived_aggregates(self):
        record = {
            "loc": {"code": 10, "comment": 2, "blank": 1, "preproc": 0},
            "bugs": {"total": 3, "severities": {"3": 2, "1": 1},
                     "per_rule": {"unbounded-copy/strcpy": 2,
                                  "quiet-rule": 0}},
            "smells": {"long-function": 1, "clean": 0},
            "surface": {"privilege": 1, "public_methods": 2,
                        "channels": {"network": 1, "none": 0}},
        }
        flat = flatten_record(record)
        assert flat["loc.code"] == 10.0
        assert flat["bugs.total"] == 3.0
        assert flat["bugs.high"] == 2.0  # severity >= 3 only
        assert flat["bugs.rule.unbounded-copy/strcpy"] == 2.0
        assert "bugs.rule.quiet-rule" not in flat  # zero counts skipped
        assert flat["smell.long-function"] == 1.0
        assert flat["surface.channel.network"] == 1.0
        assert "surface.channel.none" not in flat

    def test_missing_sections_default_to_zero(self):
        flat = flatten_record({})
        assert flat["loc.code"] == 0.0
        assert flat["bugs.total"] == 0.0
        assert flat["bugs.high"] == 0.0
