"""Hypothesis (prediction-target) tests."""

import pytest

from repro.core import hypotheses as H
from repro.cve.database import AppVulnSummary


def summary(n_total=10, high=3, network=5, cwe121=1, memory=4, mean=6.0):
    return AppVulnSummary(
        app="x",
        n_total=n_total,
        n_high_severity=high,
        n_network=network,
        n_by_category={"memory": memory},
        n_by_cwe={121: cwe121},
        mean_score=mean,
        max_score=9.8,
        history_years=6.0,
    )


class TestLabels:
    def test_stack_overflow_indicator(self):
        labels = H.STACK_OVERFLOW.labels([summary(cwe121=0), summary(cwe121=2)])
        assert labels == [0, 1]

    def test_median_split_balanced(self):
        summaries = [summary(high=i) for i in range(10)]
        labels = H.MANY_HIGH_SEVERITY.labels(summaries)
        assert sum(labels) == 5  # strictly above the median 4.5

    def test_median_split_with_duplicates(self):
        summaries = [summary(network=v) for v in [0, 0, 0, 5, 5, 9]]
        labels = H.NETWORK_ACCESSIBLE.labels(summaries)
        assert labels == [0, 0, 0, 1, 1, 1]

    def test_regression_values(self):
        import math

        labels = H.TOTAL_COUNT.labels([summary(n_total=99)])
        assert labels[0] == pytest.approx(math.log10(100))

    def test_mean_severity(self):
        assert H.MEAN_SEVERITY.labels([summary(mean=7.7)]) == [7.7]

    def test_high_severity_count_log(self):
        import math

        labels = H.HIGH_SEVERITY_COUNT.labels([summary(high=9)])
        assert labels[0] == pytest.approx(math.log10(10))


class TestBattery:
    def test_default_battery_ids_unique(self):
        ids = [h.hypothesis_id for h in H.DEFAULT_HYPOTHESES]
        assert len(ids) == len(set(ids))

    def test_kind_partition(self):
        assert set(H.CLASSIFICATION_HYPOTHESES) | set(
            H.REGRESSION_HYPOTHESES
        ) == set(H.DEFAULT_HYPOTHESES)

    def test_by_id(self):
        assert H.by_id("stack_overflow") is H.STACK_OVERFLOW

    def test_by_id_unknown(self):
        with pytest.raises(KeyError):
            H.by_id("nonsense")

    def test_descriptions_are_questions(self):
        for h in H.DEFAULT_HYPOTHESES:
            assert h.description.endswith("?")
