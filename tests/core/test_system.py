"""Whole-system evaluation tests."""

import pytest

from repro.core.system import (
    Component,
    EXPOSURE_WEIGHTS,
    SystemEvaluator,
    SystemProfile,
    format_system_report,
)
from repro.lang import Codebase

SAFE_CODE = {
    "util.c": "static int add(int a, int b) {\n    return a + b;\n}\n",
}

RISKY_CODE = {
    "srv.c": (
        "int serve(char *req) {\n"
        "    char buf[16];\n"
        "    int s = socket(AF_INET, SOCK_STREAM, 0);\n"
        "    recv(s, buf, 64, 0);\n"
        "    strcpy(buf, req);\n"
        "    system(req);\n"
        "    gets(buf);\n"
        "    return 0;\n}\n"
    ),
}


def component(name, sources, **kwargs):
    return Component(name, Codebase.from_sources(name, sources), **kwargs)


@pytest.fixture(scope="module")
def evaluator(small_training):
    return SystemEvaluator(small_training.model)


class TestProfile:
    def test_duplicate_component_rejected(self):
        system = SystemProfile("s")
        system.add(component("a", SAFE_CODE))
        with pytest.raises(ValueError, match="duplicate"):
            system.add(component("a", SAFE_CODE))

    def test_unknown_exposure_rejected(self):
        with pytest.raises(ValueError, match="exposure"):
            component("a", SAFE_CODE, exposure="martian")

    def test_domains(self):
        system = SystemProfile("s")
        system.add(component("a", SAFE_CODE, domain="web"))
        system.add(component("b", SAFE_CODE, domain="db"))
        assert system.domains == ["db", "web"]


class TestEvaluation:
    def test_empty_system_rejected(self, evaluator):
        with pytest.raises(ValueError, match="no components"):
            evaluator.evaluate(SystemProfile("empty"))

    def test_weakest_link_is_max_effective_risk(self, evaluator,
                                                small_corpus):
        # Two in-distribution corpus apps: the weakest link must be the
        # component whose effective risk tops the ranking.
        system = SystemProfile("s")
        for app in small_corpus.apps[:3]:
            system.add(
                Component(app.name, app.codebase, exposure="internet",
                          nominal_kloc=app.profile.kloc)
            )
        risk = evaluator.evaluate(system)
        top = max(risk.components, key=lambda c: c.effective_risk)
        assert risk.weakest_link == top.name
        assert risk.weakest_link_risk == pytest.approx(top.effective_risk)
        # Components come back sorted by effective risk.
        ordering = [c.effective_risk for c in risk.components]
        assert ordering == sorted(ordering, reverse=True)

    def test_exposure_weights_risk(self, evaluator):
        exposed = SystemProfile("a")
        exposed.add(component("app", RISKY_CODE, exposure="internet"))
        hidden = SystemProfile("b")
        hidden.add(component("app", RISKY_CODE, exposure="isolated"))
        assert (
            evaluator.evaluate(exposed).entry_risk
            >= evaluator.evaluate(hidden).entry_risk
        )
        ratio = EXPOSURE_WEIGHTS["isolated"] / EXPOSURE_WEIGHTS["internet"]
        assert ratio < 1.0

    def test_more_components_no_lower_entry_risk(self, evaluator):
        one = SystemProfile("one")
        one.add(component("a", RISKY_CODE, exposure="internet"))
        two = SystemProfile("two")
        two.add(component("a", RISKY_CODE, exposure="internet"))
        two.add(component("b", RISKY_CODE, exposure="internet"))
        assert (
            evaluator.evaluate(two).entry_risk
            >= evaluator.evaluate(one).entry_risk
        )

    def test_privileged_component_amplifies(self, evaluator):
        base = SystemProfile("base")
        base.add(component("web", RISKY_CODE, exposure="internet"))
        base.add(component("helper", RISKY_CODE, exposure="local"))
        escalated = SystemProfile("escalated")
        escalated.add(component("web", RISKY_CODE, exposure="internet"))
        escalated.add(
            component("helper", RISKY_CODE, exposure="local", privileged=True)
        )
        assert (
            evaluator.evaluate(escalated).system_risk
            >= evaluator.evaluate(base).system_risk
        )

    def test_containment_discounts_cross_domain_escalation(
        self, small_training
    ):
        def build(same_domain):
            system = SystemProfile("s")
            system.add(
                component("web", RISKY_CODE, exposure="internet",
                          domain="web")
            )
            system.add(
                component(
                    "daemon", RISKY_CODE, exposure="local",
                    domain="web" if same_domain else "system",
                    privileged=True,
                )
            )
            return system

        evaluator = SystemEvaluator(small_training.model,
                                    containment_discount=0.2)
        same = evaluator.evaluate(build(same_domain=True))
        split = evaluator.evaluate(build(same_domain=False))
        assert split.system_risk <= same.system_risk

    def test_system_risk_bounded(self, evaluator):
        system = SystemProfile("s")
        for i in range(4):
            system.add(
                component(f"c{i}", RISKY_CODE, exposure="internet",
                          privileged=True)
            )
        risk = evaluator.evaluate(system)
        assert 0.0 <= risk.system_risk <= 1.0

    def test_invalid_discount(self, small_training):
        with pytest.raises(ValueError):
            SystemEvaluator(small_training.model, containment_discount=1.5)

    def test_by_domain_partition(self, evaluator):
        system = SystemProfile("s")
        system.add(component("a", SAFE_CODE, domain="web"))
        system.add(component("b", SAFE_CODE, domain="db"))
        risk = evaluator.evaluate(system)
        grouped = risk.by_domain()
        assert set(grouped) == {"web", "db"}

    def test_report_contains_components(self, evaluator):
        system = SystemProfile("stack")
        system.add(component("web", RISKY_CODE, exposure="internet"))
        system.add(component("db", SAFE_CODE, domain="data"))
        text = format_system_report(evaluator.evaluate(system))
        assert "System assessment: stack" in text
        assert "web" in text and "db" in text
        assert "weakest link" in text
