"""Feature-testbed tests."""

import math

import pytest

from repro.core.features import FEATURE_GROUPS, extract_features, feature_group
from repro.lang import Codebase


@pytest.fixture(scope="module")
def row(request):
    from tests.conftest import C_SAMPLE, JAVA_SAMPLE, PY_SAMPLE

    cb = Codebase.from_sources(
        "demo",
        {"main.c": C_SAMPLE, "app.py": PY_SAMPLE, "Widget.java": JAVA_SAMPLE},
    )
    return extract_features(cb)


class TestShape:
    def test_all_groups_present(self, row):
        groups = {feature_group(name) for name in row}
        # "dynamic" is opt-in (include_dynamic=True); all others default.
        assert set(FEATURE_GROUPS) - {"dynamic"} <= groups | {"lang"}

    def test_all_values_finite_floats(self, row):
        for name, value in row.items():
            assert isinstance(value, float), name
            assert math.isfinite(value), name

    def test_language_one_hot(self, row):
        langs = {k: v for k, v in row.items() if k.startswith("lang.")}
        assert sum(langs.values()) == 1.0
        assert langs["lang.c"] == 1.0  # C dominates the fixture

    def test_feature_group_helper(self):
        assert feature_group("bugs.rule.format-string_per_kloc") == "bugs"
        assert feature_group("plain") == "plain"


class TestValues:
    def test_nominal_kloc_used(self):
        cb = Codebase.from_sources("x", {"a.c": "int a;\n"})
        row = extract_features(cb, nominal_kloc=250.0)
        assert row["size.kloc"] == 250.0
        assert row["size.log_kloc"] == pytest.approx(math.log10(250.0))

    def test_default_kloc_is_sample(self):
        cb = Codebase.from_sources("x", {"a.c": "int a;\nint b;\n"})
        row = extract_features(cb)
        assert row["size.kloc"] == pytest.approx(0.002)

    def test_densities_scale_with_sample(self, row):
        # strcpy appears once in the sample -> positive density.
        assert row["bugs.rule.unbounded-copy/strcpy_per_kloc"] > 0

    def test_taint_features(self, row):
        assert row["flow.tainted_sink_calls"] >= 1

    def test_churn_zero_without_history(self, row):
        assert row["churn.log_total"] == 0.0
        assert row["churn.authors"] == 0.0

    def test_churn_with_history(self):
        from repro.analysis.churn import Commit, CommitHistory, FileDelta

        cb = Codebase.from_sources("x", {"a.c": "int a;\n"})
        history = CommitHistory()
        history.add(Commit("dev0", 0, (FileDelta("a.c", 100, 50),)))
        history.add(Commit("dev1", 10, (FileDelta("a.c", 10, 5),)))
        row = extract_features(cb, history=history)
        assert row["churn.log_total"] > 0
        assert row["churn.authors"] == 2.0

    def test_network_facing_flag(self):
        server = Codebase.from_sources(
            "s", {"s.c": "int serve(void) {\n  accept(s, a, l);\n  return 0;\n}\n"}
        )
        row = extract_features(server)
        assert row["surface.network_facing"] == 1.0

    def test_empty_codebase_safe(self):
        row = extract_features(Codebase.from_sources("e", {"a.c": "\n"}))
        assert all(math.isfinite(v) for v in row.values())


class TestStability:
    def test_deterministic(self, row):
        from tests.conftest import C_SAMPLE

        cb = Codebase.from_sources("demo2", {"main.c": C_SAMPLE})
        assert extract_features(cb) == extract_features(cb)

    def test_same_code_same_features_regardless_of_name(self):
        from tests.conftest import C_SAMPLE

        a = extract_features(Codebase.from_sources("a", {"m.c": C_SAMPLE}))
        b = extract_features(Codebase.from_sources("b", {"m.c": C_SAMPLE}))
        assert a == b
