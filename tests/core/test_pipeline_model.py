"""Training pipeline and SecurityModel tests (on the small fixture corpus)."""

import numpy as np
import pytest

from repro.core.hypotheses import DEFAULT_HYPOTHESES
from repro.core.pipeline import build_feature_table, train


class TestFeatureTable:
    def test_rows_align_with_apps(self, small_corpus, small_training):
        table = small_training.table
        assert table.app_names == tuple(a.name for a in small_corpus.apps)
        assert len(table.rows) == len(small_corpus.apps)

    def test_dataset_for_hypothesis(self, small_training):
        ds = small_training.table.dataset_for(DEFAULT_HYPOTHESES[0])
        assert ds.n_rows == len(small_training.table.rows)
        assert ds.name == DEFAULT_HYPOTHESES[0].hypothesis_id

    def test_restricted_groups(self, small_training):
        size_only = small_training.table.restricted(["size"])
        assert all(
            k.startswith("size.") for row in size_only.rows for k in row
        )

    def test_restricted_features(self, small_training):
        table = small_training.table.restricted_to_features(["size.log_kloc"])
        assert all(list(row) == ["size.log_kloc"] for row in table.rows)


class TestTraining:
    def test_cv_results_for_all_hypotheses(self, small_training):
        expected = {h.hypothesis_id for h in DEFAULT_HYPOTHESES}
        assert set(small_training.cv_results) == expected

    def test_cv_metrics_in_range(self, small_training):
        for hyp_id, result in small_training.cv_results.items():
            for name, value in result.metrics.items():
                if name in ("accuracy", "precision", "recall", "f1", "auc",
                            "within_order"):
                    assert 0.0 <= value <= 1.0, (hyp_id, name)

    def test_summary_rows(self, small_training):
        rows = small_training.summary_rows()
        assert len(rows) == len(DEFAULT_HYPOTHESES)
        assert all(metric in ("auc", "r2") for _, metric, _ in rows)

    def test_model_ids_partition(self, small_training):
        model = small_training.model
        assert set(model.classification_ids) == {
            h.hypothesis_id for h in DEFAULT_HYPOTHESES
            if h.kind == "classification"
        }
        assert set(model.regression_ids) == {
            h.hypothesis_id for h in DEFAULT_HYPOTHESES
            if h.kind == "regression"
        }


class TestDeterministicOrdering:
    def test_app_names_come_out_sorted(self, small_training):
        names = list(small_training.table.app_names)
        assert names == sorted(names)

    def test_shuffled_corpus_trains_identical_model_bytes(
        self, small_corpus, small_training
    ):
        """Row order is by app name, never by corpus storage order."""
        import pickle
        import random
        from dataclasses import replace

        shuffled_apps = list(small_corpus.apps)
        random.Random(3).shuffle(shuffled_apps)
        assert [a.name for a in shuffled_apps] != \
            [a.name for a in small_corpus.apps]
        shuffled = replace(small_corpus, apps=shuffled_apps)
        result = train(shuffled, k=4, seed=7)
        assert result.table.app_names == small_training.table.app_names
        assert result.table.rows == small_training.table.rows
        assert pickle.dumps(result.model) == \
            pickle.dumps(small_training.model)

    def test_duplicate_app_names_rejected(self, small_corpus):
        from dataclasses import replace

        doubled = replace(
            small_corpus, apps=list(small_corpus.apps) + [small_corpus.apps[0]]
        )
        with pytest.raises(ValueError, match="unique"):
            build_feature_table(doubled)


class TestSecurityModel:
    def test_assess_shape(self, small_training):
        row = small_training.table.rows[0]
        assessment = small_training.model.assess(row)
        assert set(assessment.probabilities) == set(
            small_training.model.classification_ids
        )
        assert set(assessment.estimates) == set(
            small_training.model.regression_ids
        )
        for p in assessment.probabilities.values():
            assert 0.0 <= p <= 1.0

    def test_overall_risk_mean(self, small_training):
        a = small_training.model.assess(small_training.table.rows[0])
        assert a.overall_risk == pytest.approx(
            sum(a.probabilities.values()) / len(a.probabilities)
        )

    def test_missing_features_default_zero(self, small_training):
        assessment = small_training.model.assess({})
        assert all(0.0 <= p <= 1.0 for p in assessment.probabilities.values())

    def test_extra_features_ignored(self, small_training):
        row = dict(small_training.table.rows[0])
        row["totally.unknown"] = 42.0
        base = small_training.model.assess(small_training.table.rows[0])
        extra = small_training.model.assess(row)
        assert base.probabilities == extra.probabilities

    def test_top_properties_sorted(self, small_training):
        props = small_training.model.top_properties("many_high_severity", k=8)
        magnitudes = [abs(w) for _, w in props]
        assert magnitudes == sorted(magnitudes, reverse=True)
        assert len(props) == 8

    def test_top_properties_unknown_hypothesis(self, small_training):
        with pytest.raises(KeyError):
            small_training.model.top_properties("nope")

    def test_flagged_properties_positive(self, small_training):
        row = small_training.table.rows[0]
        flagged = small_training.model.flagged_properties(
            row, "many_high_severity", k=5
        )
        assert all(contribution > 0 for _, contribution in flagged)

    def test_vectorise_order(self, small_training):
        model = small_training.model
        row = {model.feature_names[0]: 5.0}
        vec = model.vectorise(row)
        assert vec[0, 0] == 5.0
        assert vec[0, 1:].sum() == 0.0


class TestFeatureSelection:
    def test_top_k_reduces_columns(self, small_corpus, small_training):
        from repro.core.pipeline import train

        result = train(
            small_corpus, table=small_training.table, k=4, seed=7,
            top_k_features=10,
        )
        # 10 selected + the always-kept LoC column at most.
        assert len(result.model.feature_names) <= 11

    def test_log_kloc_always_kept(self, small_corpus, small_training):
        from repro.core.pipeline import train

        result = train(
            small_corpus, table=small_training.table, k=4, seed=7,
            top_k_features=3,
        )
        assert "size.log_kloc" in result.model.feature_names

    def test_selection_method_validation(self, small_training):
        from repro.core.hypotheses import MANY_HIGH_SEVERITY
        from repro.core.pipeline import select_features

        with pytest.raises(ValueError, match="unknown selection"):
            select_features(small_training.table, MANY_HIGH_SEVERITY, 5,
                            method="psychic")

    def test_correlation_method(self, small_training):
        from repro.core.hypotheses import MANY_HIGH_SEVERITY
        from repro.core.pipeline import select_features

        reduced = select_features(
            small_training.table, MANY_HIGH_SEVERITY, 5, method="correlation"
        )
        assert all(len(row) <= 6 for row in reduced.rows)


class TestModelPersistence:
    def test_pickle_roundtrip_identical_assessments(self, small_training):
        import pickle

        blob = pickle.dumps(small_training.model)
        restored = pickle.loads(blob)
        for row in small_training.table.rows[:4]:
            a = small_training.model.assess(row)
            b = restored.assess(row)
            assert a.probabilities == b.probabilities
            assert a.estimates == b.estimates
