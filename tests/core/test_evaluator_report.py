"""ChangeEvaluator and report rendering tests."""

import pytest

from repro.core.evaluator import ChangeEvaluator, Verdict, loc_naive_choice
from repro.core.report import (
    format_assessment,
    format_delta,
    property_hints,
    recommendations_for,
    risk_band,
)
from repro.lang import Codebase

RISKY_EXTRA = """

static int handle_input(char *req) {
    char buf[16];
    strcpy(buf, req);
    gets(buf);
    sprintf(buf, req);
    system(req);
    eval(req);
    return 0;
}
"""


@pytest.fixture(scope="module")
def evaluator(small_training):
    return ChangeEvaluator(small_training.model)


@pytest.fixture(scope="module")
def base_app(small_corpus):
    return small_corpus.apps[0]


def with_extra(codebase, extra):
    sources = {f.path: f.text for f in codebase}
    first = sorted(sources)[0]
    sources[first] = sources[first] + extra
    return Codebase.from_sources(codebase.name, sources)


class TestAssess:
    def test_assess_runs(self, evaluator, base_app):
        a = evaluator.assess(base_app.codebase,
                             nominal_kloc=base_app.profile.kloc)
        assert 0.0 <= a.overall_risk <= 1.0

    def test_history_changes_features(self, evaluator, base_app, small_corpus):
        plain = evaluator.assess(base_app.codebase)
        with_history = evaluator.assess(
            base_app.codebase, history=small_corpus.history(base_app.name)
        )
        # Assessments may coincide numerically, but must both be valid.
        assert 0.0 <= with_history.overall_risk <= 1.0
        assert set(plain.probabilities) == set(with_history.probabilities)


class TestRiskDelta:
    def test_identity_change_neutral(self, evaluator, base_app):
        delta = evaluator.risk_delta(base_app.codebase, base_app.codebase)
        assert delta.verdict is Verdict.NEUTRAL
        assert delta.overall_delta == pytest.approx(0.0)

    def test_added_danger_never_lowers_risk(self, evaluator, base_app):
        risky = with_extra(base_app.codebase, RISKY_EXTRA)
        delta = evaluator.risk_delta(base_app.codebase, risky)
        assert delta.overall_delta >= -0.05

    def test_deltas_keys(self, evaluator, base_app):
        delta = evaluator.risk_delta(base_app.codebase, base_app.codebase)
        assert set(delta.probability_deltas) == set(
            evaluator.model.classification_ids
        )


class TestChoose:
    def test_choose_returns_winner(self, evaluator, small_corpus):
        a = small_corpus.apps[0].codebase
        b = small_corpus.apps[1].codebase
        winner, assess_a, assess_b = evaluator.choose(a, b)
        assert winner in (a.name, b.name)
        expected = a.name if assess_a.overall_risk <= assess_b.overall_risk \
            else b.name
        assert winner == expected

    def test_loc_naive_choice(self):
        small = Codebase.from_sources("small", {"a.c": "int a;\n"})
        big = Codebase.from_sources("big", {"a.c": "int a;\n" * 500})
        winner, meaningful = loc_naive_choice(small, big)
        assert winner == "small"
        assert meaningful  # 1 vs 500 lines: >1 order apart

    def test_loc_naive_same_order_not_meaningful(self):
        a = Codebase.from_sources("a", {"a.c": "int a;\n" * 100})
        b = Codebase.from_sources("b", {"a.c": "int a;\n" * 300})
        _, meaningful = loc_naive_choice(a, b)
        assert not meaningful


class TestReports:
    def test_risk_band(self):
        assert risk_band(0.9) == "HIGH"
        assert risk_band(0.5) == "MEDIUM"
        assert risk_band(0.1) == "LOW"

    def test_recommendations_threshold(self, evaluator, base_app):
        assessment = evaluator.assess(base_app.codebase)
        recs = recommendations_for(assessment, threshold=0.0)
        assert recs  # at threshold 0 every known hypothesis fires
        assert recommendations_for(assessment, threshold=1.1) == []

    def test_property_hints_mapping(self):
        hints = property_hints(
            [("bugs.rule.format-string_per_kloc", 1.0), ("nohint.x", 0.5)]
        )
        assert len(hints) == 1
        assert "format" in hints[0]

    def test_format_assessment_contains_sections(
        self, evaluator, base_app, small_training
    ):
        from repro.core.features import extract_features

        features = extract_features(base_app.codebase)
        assessment = small_training.model.assess(features)
        text = format_assessment(
            base_app.name, assessment, small_training.model, features
        )
        assert "Security assessment" in text
        assert "classification hypotheses" in text
        assert "regression hypotheses" in text

    def test_format_delta_verdict_line(self, evaluator, base_app):
        delta = evaluator.risk_delta(base_app.codebase, base_app.codebase)
        text = format_delta(base_app.name, delta)
        assert "risk unchanged" in text
