"""The public API contract, snapshotted.

``repro.api`` is the stable programmatic surface (``repro gate`` and CI
scripts build on it), so its shape is pinned here as golden data:
``repro.__all__``, ``repro.api.__all__``, and the exact
``inspect.signature`` of every ``repro.api`` function. A failure in
this file means the public contract moved — that is sometimes the
point of a PR, but it must be a *decision* (update the snapshot in the
same change that announces the break), never an accident.
"""

from __future__ import annotations

import inspect

import repro
import repro.api

#: Everything importable from the package root. Sorted, so additions
#: show up as a clean one-line diff.
ROOT_ALL = [
    "ChangeEvaluator",
    "Codebase",
    "EngineConfig",
    "ExtractionEngine",
    "FeatureCache",
    "GateReport",
    "RiskAssessment",
    "SecurityModel",
    "SourceFile",
    "analysis",
    "analyze_tree",
    "assess_delta",
    "assess_tree",
    "bugfind",
    "build_corpus",
    "core",
    "cve",
    "engine",
    "extract_features",
    "gate_tree",
    "lang",
    "load_model",
    "ml",
    "package_version",
    "stats",
    "surface",
    "synth",
    "train",
    "train_model",
]

#: The narrow, supported-forever surface.
API_ALL = [
    "GateReport",
    "analyze_tree",
    "assess_delta",
    "assess_tree",
    "gate_tree",
    "load_model",
    "train_model",
]

#: Exact signatures of every ``repro.api`` function. Keyword-only
#: markers, defaults, and annotations are all part of the contract —
#: changing any of them changes what user code can pass.
API_SIGNATURES = {
    "analyze_tree": (
        "(tree: 'Union[str, Codebase]', *,"
        " include_dynamic: 'bool' = False,"
        " config: 'Optional[EngineConfig]' = None)"
        " -> 'Dict[str, float]'"
    ),
    "assess_delta": (
        "(base: 'Union[str, Codebase]', head: 'Union[str, Codebase]',"
        " model: 'Optional[Union[str, SecurityModel]]' = None,"
        " config: 'Optional[EngineConfig]' = None, *,"
        " seed: 'int' = 0) -> 'GateReport'"
    ),
    "assess_tree": (
        "(tree: 'Union[str, Codebase]', *,"
        " model: 'Union[str, SecurityModel]',"
        " config: 'Optional[EngineConfig]' = None)"
        " -> 'RiskAssessment'"
    ),
    "gate_tree": (
        "(base: 'Union[str, Codebase]', head: 'Union[str, Codebase]',"
        " model: 'Optional[Union[str, SecurityModel]]' = None,"
        " threshold: 'float' = 0.02,"
        " config: 'Optional[EngineConfig]' = None, *,"
        " seed: 'int' = 0) -> 'GateReport'"
    ),
    "load_model": "(path: 'str') -> 'SecurityModel'",
    "train_model": (
        "(*, seed: 'int' = 42, apps: 'int' = 40, folds: 'int' = 5,"
        " config: 'Optional[EngineConfig]' = None,"
        " full_result: 'bool' = False)"
        " -> 'Union[SecurityModel, TrainingResult]'"
    ),
}


class TestRootSurface:
    def test_root_all_is_snapshotted(self):
        assert list(repro.__all__) == ROOT_ALL

    def test_root_all_is_sorted(self):
        assert list(repro.__all__) == sorted(repro.__all__)

    def test_every_root_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_api_names_reexported_at_root(self):
        for name in API_ALL:
            assert getattr(repro, name) is getattr(repro.api, name)


class TestApiSurface:
    def test_api_all_is_snapshotted(self):
        assert list(repro.api.__all__) == API_ALL

    def test_api_all_is_sorted(self):
        assert list(repro.api.__all__) == sorted(repro.api.__all__)

    def test_signatures_are_golden(self):
        for name, expected in API_SIGNATURES.items():
            actual = str(inspect.signature(getattr(repro.api, name)))
            assert actual == expected, (
                f"repro.api.{name} signature changed:\n"
                f"  expected {expected}\n"
                f"  actual   {actual}\n"
                "If this break is intentional, update API_SIGNATURES "
                "in the same PR."
            )

    def test_snapshot_covers_every_api_function(self):
        functions = [
            name for name in repro.api.__all__
            if callable(getattr(repro.api, name))
            and not isinstance(getattr(repro.api, name), type)
        ]
        assert sorted(API_SIGNATURES) == sorted(functions)

    def test_every_api_function_has_docstring(self):
        for name in repro.api.__all__:
            assert (getattr(repro.api, name).__doc__ or "").strip()
