"""Structural parser tests: function and class recovery."""

import pytest

from repro.lang import SourceFile, extract_classes, extract_functions


def c_functions(text):
    return extract_functions(SourceFile("t.c", text))


def py_functions(text):
    return extract_functions(SourceFile("t.py", text))


class TestCFunctions:
    def test_simple_function(self, c_source):
        names = [f.name for f in extract_functions(c_source)]
        assert names == ["helper", "main"]

    def test_param_names(self, c_source):
        helper = extract_functions(c_source)[0]
        assert helper.param_names == ["dst", "src", "n"]
        assert helper.param_count == 3

    def test_void_params(self):
        fns = c_functions("int f(void) {\n    return 0;\n}\n")
        assert fns[0].param_count == 0

    def test_empty_params(self):
        fns = c_functions("int f() { return 0; }")
        assert fns[0].param_count == 0

    def test_pointer_params(self):
        fns = c_functions("int g(char **argv, int *n) { return 0; }")
        assert fns[0].param_names == ["argv", "n"]

    def test_extent_lines(self, c_source):
        helper, main = extract_functions(c_source)
        assert helper.start_line == 5
        assert helper.end_line == 16
        assert main.length == main.end_line - main.start_line + 1

    def test_static_is_not_public(self, c_source):
        helper, main = extract_functions(c_source)
        assert not helper.is_public
        assert main.is_public

    def test_nesting_depth(self, c_source):
        helper, main = extract_functions(c_source)
        assert helper.max_nesting >= 2

    def test_if_is_not_a_function(self):
        fns = c_functions("int f(int x) {\n  if (x) { return 1; }\n  return 0;\n}")
        assert [f.name for f in fns] == ["f"]

    def test_call_with_block_initializer_not_matched(self):
        # `x = foo(1)` followed by struct block should not produce `foo`.
        fns = c_functions("int f(void) {\n  int x = foo(1);\n  return x;\n}")
        assert [f.name for f in fns] == ["f"]

    def test_function_with_const_qualifier_cpp(self):
        src = SourceFile("t.cc", "class A {\nint get(int i) const {\n  return i;\n}\n};\n")
        fns = extract_functions(src)
        assert [f.name for f in fns] == ["get"]

    def test_unbalanced_braces_tolerated(self):
        fns = c_functions("int f(int a) {\n  if (a) {\n  return 1;\n")
        assert fns and fns[0].name == "f"


class TestJava:
    def test_methods_and_class(self, java_source):
        classes = extract_classes(java_source)
        assert [c.name for c in classes] == ["Widget"]
        method_names = {m.name for m in classes[0].methods}
        assert {"Widget", "total", "reset"} <= method_names

    def test_private_method_visibility(self, java_source):
        fns = {f.name: f for f in extract_functions(java_source)}
        assert not fns["reset"].is_public
        assert fns["total"].is_public

    def test_owner_assigned(self, java_source):
        classes = extract_classes(java_source)
        assert all(m.owner == "Widget" for m in classes[0].methods)


class TestPythonFunctions:
    def test_names(self, py_source):
        names = [f.name for f in extract_functions(py_source)]
        assert names == ["greet", "__init__", "run"]

    def test_param_names_exclude_defaults(self, py_source):
        greet = extract_functions(py_source)[0]
        assert greet.param_names == ["name", "times"]

    def test_underscore_private(self):
        fns = py_functions("def _hidden():\n    pass\n")
        assert not fns[0].is_public

    def test_block_extent(self, py_source):
        greet = extract_functions(py_source)[0]
        assert greet.start_line == 3
        assert greet.end_line == 9

    def test_nested_function_extent(self):
        text = (
            "def outer(a):\n"
            "    def inner(b):\n"
            "        return b\n"
            "    return inner(a)\n"
            "\n"
            "def after():\n"
            "    return 1\n"
        )
        fns = py_functions(text)
        by_name = {f.name: f for f in fns}
        assert by_name["outer"].end_line == 4
        assert by_name["inner"].end_line == 3
        assert by_name["after"].start_line == 6

    def test_default_value_idents_not_params(self):
        fns = py_functions("def f(a, b=DEFAULT, *args, **kw):\n    pass\n")
        assert fns[0].param_names == ["a", "b", "args", "kw"]

    def test_annotation_idents_not_params(self):
        fns = py_functions("def f(a: int, b: str = name):\n    pass\n")
        assert "int" not in fns[0].param_names
        assert fns[0].param_names[:2] == ["a", "b"]

    def test_python_classes(self, py_source):
        classes = extract_classes(py_source)
        assert [c.name for c in classes] == ["Greeter"]
        assert {m.name for m in classes[0].methods} == {"__init__", "run"}

    def test_comment_lines_do_not_end_block(self):
        text = (
            "def f():\n"
            "    x = 1\n"
            "# outdented comment\n"
            "    return x\n"
        )
        fns = py_functions(text)
        assert fns[0].end_line == 4


class TestEdgeCases:
    def test_empty_file(self):
        assert c_functions("") == []

    def test_declaration_only_no_body(self):
        assert c_functions("int f(int a);\n") == []

    def test_macro_call_at_top_level_skipped(self):
        # No '{' after the parens -> not a function.
        assert c_functions("MODULE_LICENSE(x);\n") == []
