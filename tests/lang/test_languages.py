"""Language spec and detection tests."""

import pytest

from repro.lang import (
    ALL_LANGUAGES,
    C,
    CPP,
    JAVA,
    PYTHON,
    UnknownLanguageError,
    detect_language,
    language_by_name,
)


class TestDetection:
    @pytest.mark.parametrize(
        "path,expected",
        [
            ("a.c", C),
            ("dir/b.h", C),
            ("x.cc", CPP),
            ("x.cpp", CPP),
            ("x.hpp", CPP),
            ("Foo.java", JAVA),
            ("pkg/mod.py", PYTHON),
        ],
    )
    def test_by_extension(self, path, expected):
        assert detect_language(path) is expected

    def test_case_insensitive_extension(self):
        assert detect_language("A.C") is C

    def test_unknown_extension(self):
        assert detect_language("readme.txt") is None

    def test_no_extension(self):
        assert detect_language("Makefile") is None


class TestLookup:
    @pytest.mark.parametrize("name", ["c", "cpp", "java", "python"])
    def test_by_name(self, name):
        assert language_by_name(name).name == name

    def test_by_name_case_insensitive(self):
        assert language_by_name("Python") is PYTHON

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownLanguageError):
            language_by_name("cobol")


class TestSpecs:
    def test_all_extensions_unique(self):
        seen = set()
        for spec in ALL_LANGUAGES:
            for ext in spec.extensions:
                assert ext not in seen
                seen.add(ext)

    def test_cpp_keywords_superset_of_c(self):
        assert C.keywords < CPP.keywords

    def test_python_has_no_block_comment(self):
        assert PYTHON.block_comment is None

    def test_c_has_preprocessor(self):
        assert C.has_preprocessor and CPP.has_preprocessor
        assert not JAVA.has_preprocessor and not PYTHON.has_preprocessor

    def test_decision_tokens_contain_if(self):
        for spec in ALL_LANGUAGES:
            assert "if" in spec.decision_tokens

    def test_python_uses_indent_style(self):
        assert PYTHON.function_style == "indent"
        assert C.function_style == "braces"
