"""Lexer tests: token classification, tolerance, and invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import C, CPP, JAVA, PYTHON, Token, TokenKind, tokenize


def kinds(text, spec):
    return [t.kind for t in tokenize(text, spec) if t.kind != TokenKind.NEWLINE]


def texts(text, spec, kind=None):
    return [
        t.text
        for t in tokenize(text, spec)
        if (kind is None and t.is_code()) or t.kind == kind
    ]


class TestBasicTokens:
    def test_keyword_vs_identifier(self):
        toks = tokenize("int foo;", C)
        assert toks[0].kind == TokenKind.KEYWORD
        assert toks[1].kind == TokenKind.IDENT

    def test_number_literal(self):
        assert kinds("42", C) == [TokenKind.NUMBER]

    def test_hex_literal(self):
        toks = tokenize("0xFF07", C)
        assert toks[0].kind == TokenKind.NUMBER
        assert toks[0].text == "0xFF07"

    def test_binary_literal(self):
        assert texts("0b1010", PYTHON, TokenKind.NUMBER) == ["0b1010"]

    def test_float_with_exponent(self):
        toks = tokenize("1.5e-3", C)
        assert [t.text for t in toks] == ["1.5e-3"]

    def test_float_suffix(self):
        assert texts("2.5f", C, TokenKind.NUMBER) == ["2.5f"]

    def test_integer_suffix(self):
        assert texts("10UL", C, TokenKind.NUMBER) == ["10UL"]

    def test_string_literal(self):
        toks = tokenize('"hello world"', C)
        assert toks[0].kind == TokenKind.STRING
        assert toks[0].text == '"hello world"'

    def test_string_with_escape(self):
        toks = tokenize(r'"a\"b"', C)
        assert toks[0].text == r'"a\"b"'
        assert len([t for t in toks if t.kind == TokenKind.STRING]) == 1

    def test_char_literal(self):
        toks = tokenize("'x'", C)
        assert toks[0].kind == TokenKind.CHAR

    def test_char_escape(self):
        toks = tokenize(r"'\n'", C)
        assert toks[0].kind == TokenKind.CHAR
        assert toks[0].text == r"'\n'"

    def test_multichar_operators_maximal_munch(self):
        assert texts("a <<= b", C) == ["a", "<<=", "b"]

    def test_arrow_operator(self):
        assert "->" in texts("p->field", C)

    def test_increment(self):
        assert "++" in texts("i++", C)

    def test_punctuation(self):
        toks = tokenize("f(a, b);", C)
        punct = [t.text for t in toks if t.kind == TokenKind.PUNCT]
        assert punct == ["(", ",", ")", ";"]

    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b", C)
        ident_b = [t for t in toks if t.text == "b"][0]
        assert ident_b.line == 2
        assert ident_b.col == 3

    def test_unknown_character(self):
        toks = tokenize("a $ b", C)
        assert TokenKind.UNKNOWN in [t.kind for t in toks]


class TestComments:
    def test_line_comment(self):
        toks = tokenize("x = 1; // note\ny = 2;", C)
        comments = [t for t in toks if t.kind == TokenKind.COMMENT]
        assert len(comments) == 1
        assert comments[0].text == "// note"

    def test_block_comment(self):
        toks = tokenize("/* multi\nline */ x", C)
        assert toks[0].kind == TokenKind.COMMENT
        assert "multi" in toks[0].text

    def test_unterminated_block_comment(self):
        toks = tokenize("/* never closed", C)
        assert toks[0].kind == TokenKind.COMMENT

    def test_comment_marker_inside_string(self):
        toks = tokenize('"no // comment"', C)
        assert toks[0].kind == TokenKind.STRING
        assert all(t.kind != TokenKind.COMMENT for t in toks)

    def test_python_hash_comment(self):
        toks = tokenize("x = 1  # note", PYTHON)
        assert toks[-1].kind == TokenKind.COMMENT

    def test_python_no_block_comments(self):
        toks = tokenize("x = 1 / 2 * 3", PYTHON)
        assert all(t.kind != TokenKind.COMMENT for t in toks)

    def test_line_numbers_after_block_comment(self):
        toks = tokenize("/* a\nb\nc */\nx", C)
        x_tok = [t for t in toks if t.text == "x"][0]
        assert x_tok.line == 4


class TestPython:
    def test_triple_quoted_string(self):
        toks = tokenize('"""doc\nstring"""\nx = 1', PYTHON)
        assert toks[0].kind == TokenKind.STRING
        assert "doc" in toks[0].text

    def test_triple_single_quotes(self):
        toks = tokenize("'''doc'''", PYTHON)
        assert toks[0].kind == TokenKind.STRING

    def test_single_quote_string(self):
        toks = tokenize("x = 'hi'", PYTHON)
        assert toks[-1].kind == TokenKind.STRING

    def test_python_keywords(self):
        toks = tokenize("def f(): return None", PYTHON)
        keywords = [t.text for t in toks if t.kind == TokenKind.KEYWORD]
        assert keywords == ["def", "return", "None"]

    def test_walrus_operator(self):
        assert ":=" in texts("if (n := 10) > 5: pass", PYTHON)


class TestPreprocessor:
    def test_include_is_preproc(self):
        toks = tokenize("#include <stdio.h>\nint x;", C)
        assert toks[0].kind == TokenKind.PREPROC

    def test_define_with_continuation(self):
        toks = tokenize("#define MAX(a, b) \\\n  ((a) > (b))\nint x;", C)
        assert toks[0].kind == TokenKind.PREPROC
        assert "((a) > (b))" in toks[0].text

    def test_hash_not_at_line_start_java(self):
        # Java has no preprocessor; '#' lexes as unknown.
        toks = tokenize("# x", JAVA)
        assert toks[0].kind == TokenKind.UNKNOWN

    def test_preproc_only_at_line_start(self):
        toks = tokenize("int a; # not preproc", C)
        assert all(t.kind != TokenKind.PREPROC for t in toks)


class TestTolerance:
    def test_unterminated_string_stops_at_newline(self):
        toks = tokenize('"open\nnext', C)
        kinds_ = [t.kind for t in toks]
        assert TokenKind.STRING in kinds_
        assert TokenKind.IDENT in kinds_  # `next` still lexes

    def test_empty_input(self):
        assert tokenize("", C) == []

    def test_whitespace_only(self):
        assert [t.kind for t in tokenize("  \t \n ", C)] == [TokenKind.NEWLINE]


@settings(max_examples=60)
@given(st.text(max_size=300))
def test_lexer_never_crashes_on_arbitrary_text(text):
    """Tolerance invariant: any input lexes without raising."""
    for spec in (C, CPP, JAVA, PYTHON):
        tokenize(text, spec)


@settings(max_examples=60)
@given(st.text(max_size=200))
def test_newline_tokens_match_newline_count(text):
    toks = tokenize(text, C)
    # One NEWLINE per line terminator: \n, lone \r, or \r\n (counted once),
    # matching str.splitlines so token lines agree with the physical line table.
    terminators = text.count("\n") + text.count("\r") - text.count("\r\n")
    assert sum(1 for t in toks if t.kind == TokenKind.NEWLINE) == terminators


@settings(max_examples=60)
@given(
    st.lists(
        st.sampled_from(["int", "x", "42", "+", "(", ")", ";", '"s"', "if"]),
        max_size=30,
    )
)
def test_token_texts_reassemble_code(parts):
    """Code tokens reproduce the input when joined (modulo whitespace)."""
    text = " ".join(parts)
    toks = tokenize(text, C)
    reassembled = " ".join(t.text for t in toks if t.kind != TokenKind.NEWLINE)
    assert reassembled == text.strip()


@settings(max_examples=40)
@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
               max_size=200))
def test_offsets_are_monotonic(text):
    toks = tokenize(text, C)
    lines = [t.line for t in toks]
    assert lines == sorted(lines)
