"""SourceFile and Codebase tests."""

import os

import pytest

from repro.lang import Codebase, SourceFile


class TestSourceFile:
    def test_language_detection(self):
        assert SourceFile("x.py", "pass\n").language == "python"

    def test_undetectable_raises(self):
        with pytest.raises(ValueError):
            SourceFile("notes.txt", "hello")

    def test_explicit_spec_overrides(self):
        from repro.lang import C

        src = SourceFile("weird.txt", "int x;", spec=C)
        assert src.language == "c"

    def test_tokens_cached(self):
        src = SourceFile("x.c", "int x;")
        assert src.tokens is src.tokens

    def test_lines(self):
        src = SourceFile("x.c", "a\nb\n")
        assert src.lines == ["a", "b"]


class TestCodebase:
    def test_from_sources_sorted(self):
        cb = Codebase.from_sources("app", {"b.c": "int b;", "a.c": "int a;"})
        assert [f.path for f in cb.files] == ["a.c", "b.c"]

    def test_len_and_iter(self, mixed_codebase):
        assert len(mixed_codebase) == 3
        assert len(list(mixed_codebase)) == 3

    def test_add_replaces_by_path(self):
        cb = Codebase("app")
        cb.add(SourceFile("a.c", "int a;"))
        cb.add(SourceFile("a.c", "int b;"))
        assert len(cb) == 1
        assert "b" in cb.get("a.c").text

    def test_remove(self, mixed_codebase):
        mixed_codebase.remove("app.py")
        assert mixed_codebase.get("app.py") is None

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            Codebase("x").remove("nope.c")

    def test_by_language(self, mixed_codebase):
        assert [f.path for f in mixed_codebase.by_language("python")] == ["app.py"]

    def test_languages_counts(self, mixed_codebase):
        assert mixed_codebase.languages() == {"c": 1, "python": 1, "java": 1}

    def test_primary_language_by_loc(self, mixed_codebase):
        # The C sample is the longest in the fixture.
        assert mixed_codebase.primary_language() == "c"

    def test_primary_language_empty(self):
        assert Codebase("empty").primary_language() is None

    def test_from_directory(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "a.c").write_text("int a;\n")
        (tmp_path / "sub" / "b.py").write_text("x = 1\n")
        (tmp_path / "notes.md").write_text("skip me\n")
        cb = Codebase.from_directory(str(tmp_path), name="scan")
        assert sorted(f.path for f in cb) == ["a.c", os.path.join("sub", "b.py")]
        assert cb.name == "scan"

    def test_from_directory_bad_encoding_tolerated(self, tmp_path):
        (tmp_path / "bin.c").write_bytes(b"int x;\n\xff\xfe\n")
        cb = Codebase.from_directory(str(tmp_path))
        assert len(cb) == 1
