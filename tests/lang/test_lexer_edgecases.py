"""Regression tests for lexer edge cases fixed with the artifact refactor.

Each class pins one historically wrong behaviour:

- line accounting for lone ``\\r`` and ``\\r\\n`` terminators now matches
  ``str.splitlines`` (CR used to be treated as plain whitespace);
- digit separators (C++14 ``1'000'000``, Python ``1_000``) now lex as a
  single NUMBER token instead of splitting at the separator;
- block comments: column tracking after a multi-line comment, and an
  unterminated comment consuming exactly the rest of the file as one
  COMMENT token instead of leaking garbage tokens.
"""

from repro.lang import C, CPP, PYTHON, TokenKind, tokenize


def _kinds_texts(text, spec, kind):
    return [t.text for t in tokenize(text, spec) if t.kind == kind]


class TestCarriageReturnLines:
    def test_lone_cr_advances_lines(self):
        toks = tokenize("int a;\rint b;\rint c;\n", C)
        lines = [t.line for t in toks if t.kind == TokenKind.KEYWORD]
        assert lines == [1, 2, 3]

    def test_crlf_counts_once(self):
        text = "int a;\r\nint b;\r\nint c;\r\n"
        toks = tokenize(text, C)
        lines = [t.line for t in toks if t.kind == TokenKind.KEYWORD]
        assert lines == [1, 2, 3]
        newlines = [t for t in toks if t.kind == TokenKind.NEWLINE]
        assert len(newlines) == 3  # one per \r\n pair, not two

    def test_terminator_count_matches_splitlines(self):
        for text in ("a\rb", "a\r\nb", "a\nb", "a\r\rb", "a\n\rb"):
            toks = tokenize(text, C)
            n_newlines = sum(1 for t in toks if t.kind == TokenKind.NEWLINE)
            assert n_newlines == len(text.splitlines()) - 1, text
            assert toks[-1].line == len(text.splitlines()), text


class TestDigitSeparators:
    def test_cpp_quote_separator_single_token(self):
        assert _kinds_texts("x = 1'000'000;", CPP, TokenKind.NUMBER) == \
            ["1'000'000"]

    def test_hex_with_separator_and_suffix(self):
        assert _kinds_texts("m = 0xFF'FFul;", CPP, TokenKind.NUMBER) == \
            ["0xFF'FFul"]

    def test_python_underscore_separator(self):
        assert _kinds_texts("x = 1_000_000", PYTHON, TokenKind.NUMBER) == \
            ["1_000_000"]

    def test_separator_needs_digits_both_sides(self):
        # A trailing quote is a char literal, not part of the number.
        toks = tokenize("a = 1' '", C)
        numbers = [t.text for t in toks if t.kind == TokenKind.NUMBER]
        assert numbers == ["1"]


class TestBlockComments:
    def test_column_after_multiline_comment(self):
        toks = tokenize("/* a\n * b */ int z;", C)
        kw = next(t for t in toks if t.kind == TokenKind.KEYWORD)
        # `... * b */ int` — 'int' starts at column 9 of line 2.
        assert (kw.line, kw.col) == (2, 9)

    def test_unterminated_block_comment_is_one_token(self):
        text = "int x = 1; /* never closes\nint y = 2;\nint z = 3;"
        toks = tokenize(text, C)
        comments = [t for t in toks if t.kind == TokenKind.COMMENT]
        assert len(comments) == 1
        assert comments[0].text == text[text.index("/*"):]
        # Nothing after the comment opener leaks out as code.
        idents = [t.text for t in toks if t.kind == TokenKind.IDENT]
        assert idents == ["x"]

    def test_comment_interior_newlines_counted(self):
        toks = tokenize("/* a\nb\nc */ int z;", C)
        kw = next(t for t in toks if t.kind == TokenKind.KEYWORD)
        assert kw.line == 3
