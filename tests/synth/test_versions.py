"""Version-evolution generator tests."""

import pytest

from repro.bugfind import run_all
from repro.synth.versions import CHANGE_KINDS, evolve, version_pairs


@pytest.fixture(scope="module")
def app(small_corpus):
    # Pick an app with some danger sites so hardening has work to do.
    return max(small_corpus.apps, key=lambda a: len(a.vulnerable_files))


class TestEvolve:
    def test_unknown_kind(self, app):
        with pytest.raises(ValueError):
            evolve(app, "explode")

    def test_harden_reduces_findings(self, app):
        pair = evolve(app, "harden", seed=1)
        before = run_all(pair.before).total
        after = run_all(pair.after).total
        assert after < before
        assert pair.danger_delta < 0

    def test_regress_adds_findings(self, app):
        pair = evolve(app, "regress", seed=1)
        before = run_all(pair.before).total
        after = run_all(pair.after).total
        assert after > before
        assert pair.danger_delta > 0
        assert any("imported" in f.path for f in pair.after)

    def test_neutral_keeps_findings(self, app):
        pair = evolve(app, "neutral", seed=1)
        assert run_all(pair.after).total == run_all(pair.before).total
        assert pair.danger_delta == 0

    def test_before_is_untouched(self, app):
        original = {f.path: f.text for f in app.codebase}
        evolve(app, "harden", seed=1)
        assert {f.path: f.text for f in app.codebase} == original

    def test_deterministic(self, app):
        a = evolve(app, "regress", seed=5)
        b = evolve(app, "regress", seed=5)
        assert {f.path: f.text for f in a.after} == {
            f.path: f.text for f in b.after
        }

    def test_code_still_parses(self, app):
        from repro.lang import extract_functions

        for kind in CHANGE_KINDS:
            pair = evolve(app, kind, seed=2)
            for source in pair.after:
                extract_functions(source)  # must not raise
                if source.path.endswith((".c", ".cc", ".java")):
                    assert source.text.count("{") == source.text.count("}")


class TestVersionPairs:
    def test_round_robin_kinds(self, small_corpus):
        pairs = version_pairs(small_corpus.apps[:6], seed=1)
        assert [p.kind for p in pairs] == [
            "harden", "regress", "neutral", "harden", "regress", "neutral"
        ]

    def test_one_pair_per_app(self, small_corpus):
        pairs = version_pairs(small_corpus.apps[:5], seed=1)
        assert [p.app_name for p in pairs] == [
            a.name for a in small_corpus.apps[:5]
        ]
