"""Corpus bundle tests."""

import pytest

from repro.synth.corpus import build_corpus


class TestBuildCorpus:
    def test_limit(self, small_corpus):
        assert len(small_corpus.apps) == 16

    def test_histories_aligned(self, small_corpus):
        for app in small_corpus.apps:
            history = small_corpus.history(app.name)
            assert history.files == {f.path for f in app.codebase}

    def test_database_covers_all_profiles(self, small_corpus):
        # The database is built over the FULL profile set even when apps
        # are limited, so corpus-level statistics stay calibrated.
        assert small_corpus.database.totals()[0] == 164

    def test_app_lookup(self, small_corpus):
        app = small_corpus.apps[3]
        assert small_corpus.app(app.name) is app

    def test_app_lookup_missing(self, small_corpus):
        with pytest.raises(KeyError):
            small_corpus.app("no-such-app")

    def test_profiles_property(self, small_corpus):
        assert [p.name for p in small_corpus.profiles] == [
            a.name for a in small_corpus.apps
        ]

    def test_deterministic(self):
        a = build_corpus(seed=3, limit=4)
        b = build_corpus(seed=3, limit=4)
        assert [x.name for x in a.apps] == [x.name for x in b.apps]
        assert a.database.totals() == b.database.totals()
