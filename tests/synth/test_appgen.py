"""Application source-generator tests."""

import statistics

import pytest

from repro.analysis import cyclomatic, loc
from repro.bugfind import run_all
from repro.lang import extract_functions
from repro.stats.correlation import pearson
from repro.synth import appgen, cvegen
from repro.synth.appgen import GeneratorConfig, generate_app, generate_apps


@pytest.fixture(scope="module")
def profiles():
    return cvegen.generate_profiles(seed=42)


@pytest.fixture(scope="module")
def apps(profiles):
    return generate_apps(profiles, seed=42)


class TestSingleApp:
    def test_language_matches_profile(self, profiles):
        for p in profiles[:4]:
            app = generate_app(p, seed=1)
            assert app.codebase.primary_language() == p.language

    def test_sample_size_within_config(self, profiles):
        config = GeneratorConfig(max_lines=500, min_lines=100)
        app = generate_app(profiles[0], seed=1, config=config)
        total = sum(len(f.lines) for f in app.codebase)
        # Budget is approximate (functions finish their bodies).
        assert 80 <= total <= 900

    def test_code_is_lexically_sane(self, profiles):
        app = generate_app(profiles[0], seed=1)
        for f in app.codebase:
            functions = extract_functions(f)
            if f.path.endswith((".c", ".cc", ".java")):
                assert functions, f"{f.path} yielded no functions"
                # Braces must balance for the parser to recover extents.
                assert f.text.count("{") == f.text.count("}")

    def test_deterministic(self, profiles):
        a = generate_app(profiles[0], seed=9)
        b = generate_app(profiles[0], seed=9)
        assert {f.path: f.text for f in a.codebase} == {
            f.path: f.text for f in b.codebase
        }
        assert a.vulnerable_files == b.vulnerable_files

    def test_network_facing_gets_server_file(self, profiles):
        facing = next(p for p in profiles if p.network_facing)
        hidden = next(p for p in profiles if not p.network_facing)
        app_f = generate_app(facing, seed=1)
        app_h = generate_app(hidden, seed=1)
        assert any("server" in f.path for f in app_f.codebase)
        assert not any("server" in f.path for f in app_h.codebase)

    def test_vulnerable_files_subset_of_files(self, apps):
        for app in apps[:20]:
            paths = {f.path for f in app.codebase}
            assert app.vulnerable_files <= paths


class TestCorpusSignal:
    def test_vulnerable_fraction_reasonable(self, apps):
        fractions = [
            len(a.vulnerable_files) / len(a.codebase) for a in apps
        ]
        mean = statistics.mean(fractions)
        assert 0.1 < mean < 0.7
        assert min(fractions) < 0.3  # some clean apps exist

    def test_danger_density_tracks_z_danger(self, apps):
        densities = [
            run_all(a.codebase).total / loc.count_codebase(a.codebase).code
            for a in apps
        ]
        r = pearson(densities, [a.profile.z_danger for a in apps])
        assert r > 0.3

    def test_complexity_tracks_z_complexity(self, apps):
        densities = [
            cyclomatic.codebase_complexity(a.codebase)
            / loc.count_codebase(a.codebase).code
            for a in apps
        ]
        r = pearson(densities, [a.profile.z_complexity for a in apps])
        assert r > 0.3

    def test_larger_apps_get_larger_samples(self, apps):
        small = min(apps, key=lambda a: a.profile.kloc)
        large = max(apps, key=lambda a: a.profile.kloc)
        assert loc.count_codebase(large.codebase).code >= loc.count_codebase(
            small.codebase
        ).code
