"""Calibrated CVE-corpus generator tests.

The full 164-app generation takes ~1s; it is session-cached here because
several invariants are checked against the same corpus.
"""

import math

import pytest

from repro.stats.regression import fit_loglog
from repro.synth import cvegen
from repro.synth import profiles as P


@pytest.fixture(scope="module")
def profiles():
    return cvegen.generate_profiles(seed=42)


@pytest.fixture(scope="module")
def database(profiles):
    return cvegen.generate_database(profiles, seed=42)


class TestCalibration:
    def test_app_count(self, profiles):
        assert len(profiles) == P.N_APPS == 164

    def test_language_composition(self, profiles):
        by_lang = {}
        for p in profiles:
            by_lang[p.language] = by_lang.get(p.language, 0) + 1
        assert by_lang == P.APPS_PER_LANGUAGE

    def test_total_reports_exact(self, profiles):
        assert sum(p.n_vulns for p in profiles) == P.N_VULNERABILITIES

    def test_fig2_trend_reproduced(self, profiles):
        fit = fit_loglog([p.kloc for p in profiles],
                         [p.n_vulns for p in profiles])
        assert fit.slope == pytest.approx(P.FIG2_SLOPE, abs=0.02)
        assert fit.intercept == pytest.approx(P.FIG2_INTERCEPT, abs=0.03)
        assert fit.r_squared == pytest.approx(P.FIG2_R_SQUARED, abs=0.02)

    def test_min_reports(self, profiles):
        assert min(p.n_vulns for p in profiles) >= cvegen.MIN_REPORTS

    def test_history_at_least_five_years(self, profiles):
        assert all(p.history_years >= 5.0 for p in profiles)

    def test_sizes_within_figure_axis(self, profiles):
        for p in profiles:
            assert 10 ** P.LOG10_KLOC_MIN <= p.kloc <= 10 ** P.LOG10_KLOC_MAX

    def test_deterministic(self):
        a = cvegen.generate_profiles(seed=3)
        b = cvegen.generate_profiles(seed=3)
        assert [(p.name, p.n_vulns, p.kloc) for p in a] == [
            (p.name, p.n_vulns, p.kloc) for p in b
        ]

    def test_seed_changes_profiles(self, profiles):
        other = cvegen.generate_profiles(seed=5)
        assert [p.n_vulns for p in other] != [p.n_vulns for p in profiles]

    def test_latent_factors_correlate_with_counts(self, profiles):
        from repro.stats.correlation import pearson

        log_counts = [math.log10(p.n_vulns) for p in profiles]
        for attr in ("z_complexity", "z_danger", "z_surface", "z_churn"):
            r = pearson([getattr(p, attr) for p in profiles], log_counts)
            assert r > 0.1, f"{attr} carries no signal (r={r:.3f})"


class TestDatabaseGeneration:
    def test_totals_match(self, database):
        assert database.totals() == (164, P.N_VULNERABILITIES)

    def test_all_converging(self, database):
        assert len(database.select_converging()) == 164

    def test_history_span_matches_profile(self, profiles, database):
        p = max(profiles, key=lambda q: q.n_vulns)
        assert database.history_years(p.app if hasattr(p, "app") else p.name) \
            == pytest.approx(p.history_years, abs=0.2)

    def test_cwe_mix_respects_language(self, profiles, database):
        c_apps = [p.name for p in profiles if p.language == "c"][:20]
        memory = injection = 0
        for app in c_apps:
            s = database.summary(app)
            memory += s.n_by_category.get("memory", 0)
            injection += s.n_by_category.get("injection", 0)
        assert memory > injection  # C skews to memory weaknesses

    def test_network_facing_apps_more_av_n(self, profiles, database):
        facing = [p for p in profiles if p.network_facing and p.n_vulns >= 10]
        hidden = [p for p in profiles if not p.network_facing and p.n_vulns >= 10]
        if not facing or not hidden:
            pytest.skip("degenerate corpus split")
        share = lambda ps: sum(
            database.summary(p.name).n_network for p in ps
        ) / sum(p.n_vulns for p in ps)
        assert share(facing) > share(hidden)

    def test_unique_cve_ids(self, database):
        # CVEDatabase.add enforces uniqueness; totals confirm no loss.
        assert len(database) == P.N_VULNERABILITIES

    def test_records_deterministic(self, profiles):
        a = cvegen.generate_records(profiles[0], seed=1, id_offset=0)
        b = cvegen.generate_records(profiles[0], seed=1, id_offset=0)
        assert [(r.cve_id, r.day, r.cwe_id) for r in a] == [
            (r.cve_id, r.day, r.cwe_id) for r in b
        ]
