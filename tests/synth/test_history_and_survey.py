"""Commit-history generator and paper-survey tests."""

import statistics

import pytest

from repro.analysis.churn import churn_metrics, developer_activity, file_churn
from repro.synth import cvegen, papersurvey
from repro.synth import profiles as P
from repro.synth.appgen import generate_app
from repro.synth.history import generate_history, history_for_app


@pytest.fixture(scope="module")
def profile():
    return cvegen.generate_profiles(seed=42)[0]


@pytest.fixture(scope="module")
def app(profile):
    return generate_app(profile, seed=42)


class TestHistoryGenerator:
    def test_covers_all_files(self, app):
        history = history_for_app(app, seed=1)
        assert history.files == {f.path for f in app.codebase}

    def test_span_tracks_history_years(self, app):
        history = history_for_app(app, seed=1)
        expected = app.profile.history_years * 365.25
        assert history.span_days <= expected
        assert history.span_days >= expected * 0.5

    def test_vulnerable_files_more_churn(self, app):
        if not app.vulnerable_files or app.vulnerable_files == {
            f.path for f in app.codebase
        }:
            pytest.skip("app has no clean/vulnerable split")
        history = history_for_app(app, seed=1)
        churn = file_churn(history)
        vuln = [churn[p].total_churn for p in app.vulnerable_files]
        clean = [
            c.total_churn
            for p, c in churn.items()
            if p not in app.vulnerable_files
        ]
        assert statistics.mean(vuln) > statistics.mean(clean)

    def test_authors_bounded_by_profile(self, app):
        history = history_for_app(app, seed=1)
        assert len(history.authors) <= app.profile.n_developers

    def test_deterministic(self, profile, app):
        h1 = history_for_app(app, seed=5)
        h2 = history_for_app(app, seed=5)
        assert churn_metrics(h1) == churn_metrics(h2)

    def test_generate_history_empty_files(self, profile):
        history = generate_history(profile, [], frozenset(), seed=1)
        assert len(history.commits) == 0


class TestPaperSurvey:
    @pytest.fixture(scope="class")
    def corpus(self):
        return papersurvey.generate_corpus(seed=11)

    def test_totals_match_figure1(self, corpus):
        result = papersurvey.survey(corpus)
        assert result.totals["loc"] == 384
        assert result.totals["cve"] == 116
        assert result.totals["formal"] == 31

    def test_classifier_accuracy(self, corpus):
        assert papersurvey.survey(corpus).accuracy == 1.0

    def test_per_venue_sums(self, corpus):
        result = papersurvey.survey(corpus)
        for style in ("loc", "cve", "formal"):
            assert sum(v[style] for v in result.by_venue.values()) == \
                result.totals[style]

    def test_venues_complete(self, corpus):
        result = papersurvey.survey(corpus)
        assert set(result.by_venue) == set(P.SURVEY_VENUES)

    def test_corpus_size(self, corpus):
        expected = (
            sum(P.SURVEY_LOC_PAPERS.values())
            + sum(P.SURVEY_CVE_PAPERS.values())
            + sum(P.SURVEY_FORMAL_PAPERS.values())
            + sum(P.SURVEY_OTHER_PAPERS.values())
        )
        assert len(corpus) == expected

    def test_classify_styles(self):
        paper = papersurvey.Paper("CCS", "T", "we prove the invariant", "formal")
        assert papersurvey.classify(paper) == "formal"
        paper2 = papersurvey.Paper("CCS", "T", "only 12 lines of code", "loc")
        assert papersurvey.classify(paper2) == "loc"
        paper3 = papersurvey.Paper("CCS", "T", "34 CVE reports", "cve")
        assert papersurvey.classify(paper3) == "cve"

    def test_formal_precedence(self):
        paper = papersurvey.Paper(
            "CCS", "T", "we prove the kernel correct in 9k lines of code",
            "formal",
        )
        assert papersurvey.classify(paper) == "formal"

    def test_empty_survey(self):
        result = papersurvey.survey([])
        assert result.accuracy == 0.0
        assert result.totals["loc"] == 0
