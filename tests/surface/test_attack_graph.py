"""Attack-graph generation and analysis tests."""

import pytest

from repro.lang import Codebase
from repro.surface.attack_graph import (
    AttackGraph,
    Exploit,
    exploits_from_surface,
    measure_codebase,
)
from repro.surface.rasq import AttackSurface


def chain_exploits():
    return [
        Exploit("entry", frozenset({"remote"}), frozenset({"user"}), 0.5),
        Exploit("escalate", frozenset({"user"}), frozenset({"root"}), 0.8),
    ]


class TestGeneration:
    def test_goal_reachable_via_chain(self):
        graph = AttackGraph(chain_exploits(), initial=("remote",))
        assert graph.goal_reachable
        assert graph.shortest_attack_path() == ["entry", "escalate"]

    def test_goal_unreachable_without_entry(self):
        graph = AttackGraph(
            [Exploit("escalate", frozenset({"user"}), frozenset({"root"}), 0.5)],
            initial=("remote",),
        )
        assert not graph.goal_reachable
        assert graph.shortest_attack_path() is None
        assert graph.cheapest_attack_cost() is None

    def test_exploit_applicable(self):
        e = Exploit("x", frozenset({"a"}), frozenset({"b"}))
        assert e.applicable(frozenset({"a"}))
        assert not e.applicable(frozenset())
        assert not e.applicable(frozenset({"a", "b"}))  # nothing to gain

    def test_state_space_bounded(self):
        exploits = [
            Exploit(f"e{i}", frozenset({"remote"}), frozenset({f"p{i}"}), 0.5)
            for i in range(20)
        ]
        graph = AttackGraph(exploits, initial=("remote",), max_states=50)
        assert graph.graph.number_of_nodes() <= 50

    def test_path_count(self):
        exploits = chain_exploits() + [
            Exploit("alt-entry", frozenset({"remote"}), frozenset({"user"}), 0.3)
        ]
        graph = AttackGraph(exploits, initial=("remote",))
        assert graph.attack_path_count() >= 2

    def test_cheapest_cost(self):
        graph = AttackGraph(chain_exploits(), initial=("remote",))
        assert graph.cheapest_attack_cost() == pytest.approx(1.3)


class TestFromSurface:
    def test_network_surface_yields_remote_entry(self):
        surface = AttackSurface(
            channel_counts={"network": 3}, n_public_methods=2,
            n_privilege_sites=0,
        )
        names = {e.name for e in exploits_from_surface(surface)}
        assert "remote-entry" in names

    def test_full_chain_reaches_root(self):
        surface = AttackSurface(
            channel_counts={"network": 1, "process_spawn": 2, "file_write": 1},
            n_public_methods=4,
            n_privilege_sites=1,
        )
        graph = AttackGraph(exploits_from_surface(surface),
                            initial=("remote", "local"))
        assert graph.goal_reachable

    def test_more_channels_lower_complexity(self):
        lo = AttackSurface(channel_counts={"network": 1}, n_public_methods=0,
                           n_privilege_sites=0)
        hi = AttackSurface(channel_counts={"network": 9}, n_public_methods=0,
                           n_privilege_sites=0)
        e_lo = exploits_from_surface(lo)[0]
        e_hi = exploits_from_surface(hi)[0]
        assert e_hi.complexity < e_lo.complexity


class TestCodebaseMetrics:
    def test_dangerous_network_app(self):
        text = (
            "int serve(void) {\n"
            "  int s = socket(AF_INET, SOCK_STREAM, 0);\n"
            "  accept(s, a, l);\n"
            "  system(cmd);\n"
            "  setuid(0);\n"
            "  return 0;\n}\n"
        )
        m = measure_codebase(Codebase.from_sources("danger", {"s.c": text}))
        assert m.goal_reachable
        assert m.shortest_attack_path_len_ok() if hasattr(m, "shortest_attack_path_len_ok") else m.shortest_path_length >= 2

    def test_inert_app(self):
        text = "static int f(int a) {\n  return a;\n}\n"
        m = measure_codebase(Codebase.from_sources("inert", {"s.c": text}))
        assert not m.goal_reachable
        assert m.cheapest_cost == float("inf")
        assert m.attack_paths == 0


class TestDefenderAnalysis:
    def test_single_chain_every_link_critical(self):
        graph = AttackGraph(chain_exploits(), initial=("remote",))
        spof = graph.single_points_of_failure()
        assert spof == ["entry", "escalate"]
        assert graph.critical_exploits() in (
            frozenset({"entry"}), frozenset({"escalate"})
        )

    def test_parallel_entries_need_both_patched(self):
        exploits = chain_exploits() + [
            Exploit("alt-entry", frozenset({"remote"}), frozenset({"user"}), 0.3)
        ]
        graph = AttackGraph(exploits, initial=("remote",))
        # escalate is still a single point of failure; entry alone is not.
        assert graph.single_points_of_failure() == ["escalate"]
        cut = graph.critical_exploits()
        assert cut == frozenset({"escalate"}) or cut == frozenset(
            {"entry", "alt-entry"}
        )

    def test_unreachable_goal_no_cut_needed(self):
        graph = AttackGraph(
            [Exploit("dead", frozenset({"nothing"}), frozenset({"root"}))],
            initial=("remote",),
        )
        assert graph.critical_exploits() is None
        assert graph.single_points_of_failure() == []

    def test_cut_actually_protects(self):
        from repro.surface.rasq import AttackSurface

        surface = AttackSurface(
            channel_counts={"network": 2, "process_spawn": 1, "file_write": 1},
            n_public_methods=3,
            n_privilege_sites=1,
        )
        graph = AttackGraph(exploits_from_surface(surface),
                            initial=("remote", "local"))
        cut = graph.critical_exploits()
        assert cut is not None
        assert not graph._reaches_goal_without(cut)
        # Minimality: removing any single member restores reachability.
        for member in cut:
            assert graph._reaches_goal_without(cut - {member}) or len(cut) == 1
