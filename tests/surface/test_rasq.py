"""RASQ attack-surface tests."""

import pytest

from repro.lang import Codebase
from repro.surface.rasq import (
    CHANNEL_WEIGHTS,
    AttackSurface,
    measure_codebase,
    relative_quotient,
)


def cb(text, path="t.c", name="app"):
    return Codebase.from_sources(name, {path: text})


NETWORK_APP = """\
int serve(int port) {
    int sock = socket(AF_INET, SOCK_STREAM, 0);
    bind(sock, addr, len);
    listen(sock, 8);
    int conn = accept(sock, addr, len);
    recv(conn, buf, 64, 0);
    return 0;
}
"""

LOCAL_APP = """\
static int compute(int a) {
    return a * 2;
}
"""


class TestChannels:
    def test_network_channels_detected(self):
        surface = measure_codebase(cb(NETWORK_APP))
        assert surface.channel_counts["network"] == 5
        assert surface.network_facing

    def test_local_app_no_network(self):
        surface = measure_codebase(cb(LOCAL_APP))
        assert surface.channel_counts["network"] == 0
        assert not surface.network_facing

    def test_file_channels(self):
        text = 'int f(void) {\n  FILE *h = fopen(path, mode);\n  fread(b, 1, 8, h);\n  return 0;\n}\n'
        surface = measure_codebase(cb(text))
        assert surface.channel_counts["file_write"] == 1  # fopen
        assert surface.channel_counts["file_read"] == 1  # fread

    def test_process_spawn(self):
        surface = measure_codebase(cb("int f(void) {\n  system(cmd);\n  return 0;\n}\n"))
        assert surface.channel_counts["process_spawn"] == 1

    def test_privilege_sites(self):
        surface = measure_codebase(cb("int f(void) {\n  setuid(0);\n  return 0;\n}\n"))
        assert surface.n_privilege_sites == 1

    def test_name_without_call_not_counted(self):
        surface = measure_codebase(cb("int socket;\n"))
        assert surface.channel_counts["network"] == 0


class TestScore:
    def test_rasq_weights(self):
        surface = AttackSurface(
            channel_counts={"network": 2, "file_read": 1},
            n_public_methods=3,
            n_privilege_sites=1,
        )
        expected = 2 * CHANNEL_WEIGHTS["network"] + CHANNEL_WEIGHTS["file_read"]
        expected += 3 * 0.2 + 1.5
        assert surface.rasq == pytest.approx(expected)

    def test_network_app_scores_higher(self):
        net = measure_codebase(cb(NETWORK_APP, name="net"))
        local = measure_codebase(cb(LOCAL_APP, name="local"))
        assert net.rasq > local.rasq

    def test_public_methods_counted(self):
        surface = measure_codebase(cb(LOCAL_APP))
        assert surface.n_public_methods == 0  # static
        surface2 = measure_codebase(cb("int api(void) {\n  return 1;\n}\n"))
        assert surface2.n_public_methods == 1


class TestRelative:
    def test_relative_quotient(self):
        a = cb(NETWORK_APP, name="a")
        b = cb(LOCAL_APP, name="b")
        assert relative_quotient(a, b) > 1.0
        assert relative_quotient(b, a) < 1.0

    def test_zero_denominator(self):
        empty = Codebase("empty")
        a = cb(NETWORK_APP)
        assert relative_quotient(a, empty) == float("inf")
        assert relative_quotient(empty, Codebase("empty2")) == 1.0
