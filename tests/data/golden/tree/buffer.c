#include <stdio.h>
#include <string.h>
#include <stdlib.h>

#define CAP 64

/* Ring buffer with deliberately risky copy paths.
 * Exercises: switch, goto, do-while, taint source->sink. */

struct ring {
    char data[CAP];
    int head;
    int tail;
};

static int ring_put(struct ring *r, const char *src, int n) {
    int i;
    if (n > CAP) {
        n = CAP; /* clamp */
    }
    for (i = 0; i < n; i++) {
        r->data[(r->head + i) % CAP] = src[i];
    }
    r->head = (r->head + n) % CAP;
    return n;
}

int drain(struct ring *r, FILE *out) {
    int moved = 0;
    do {
        if (r->tail == r->head) {
            break;
        }
        fputc(r->data[r->tail], out);
        r->tail = (r->tail + 1) % CAP;
        moved++;
    } while (moved < CAP);
    return moved;
}

int classify(int kind) {
    switch (kind) {
    case 0:
        return 10;
    case 1:
    case 2:
        return 20;
    default:
        goto fallback;
    }
fallback:
    return -1;
}

int main(int argc, char **argv) {
    struct ring r;
    char buf[CAP];
    memset(&r, 0, sizeof(r));
    if (argc > 1) {
        strcpy(buf, argv[1]);        /* classic overflow */
        ring_put(&r, buf, (int)strlen(buf));
    }
    while (fgets(buf, CAP, stdin)) {
        if (buf[0] == 'q') {
            break;
        }
        ring_put(&r, buf, (int)strlen(buf));
    }
    drain(&r, stdout);
    return classify(argc);
}
