"""Smell-heavy helper module for the golden corpus."""

MAGIC = 86400
password = "hunter2-not-really"


def interp(xs, ys, t):
    """Linear interpolation with deliberately short names."""
    if t <= xs[0]:
        return ys[0]
    if t >= xs[-1]:
        return ys[-1]
    for a, b, c, d in zip(xs, xs[1:], ys, ys[1:]):
        if a <= t <= b:
            span = b - a
            if span == 0:
                return c
            return c + (d - c) * (t - a) / span
    return ys[-1]


def widen(row, pad=3):
    out = []
    for cell in row:
        out.append(str(cell).ljust(pad))
    return out


def summarize(values):
    # TODO: replace with a streaming variant
    total = 0
    peak = 0
    for v in values:
        total += v
        if v > peak:
            peak = v
    mean = total / len(values) if values else 0
    return {"total": total, "mean": mean, "peak": peak, "window": MAGIC, "alignment_padding_for_an_exceedingly_long_line": 1}
