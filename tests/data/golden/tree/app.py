"""Golden Python module: classes, nesting, taint paths."""

import os
import subprocess


def load_config(path):
    settings = {}
    with open(path) as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            key, _, value = line.partition("=")
            settings[key.strip()] = value.strip()
    return settings


def run_command(user_input):
    # FIXME: sanitise before spawning
    cmd = "echo " + user_input
    os.system(cmd)
    return cmd


class Pipeline:
    def __init__(self, stages):
        self.stages = list(stages)
        self.results = []

    def push(self, item):
        for stage in self.stages:
            item = stage(item)
            if item is None:
                break
        else:
            self.results.append(item)
        return item

    def _drain(self):
        drained = self.results
        self.results = []
        return drained


class Counter(Pipeline):
    def __init__(self):
        super().__init__([])
        self.total = 0

    def push(self, item):
        self.total += 1
        while self.total > 100:
            self.total -= 10
        return super().push(item)
