import java.io.*;
import java.net.*;
import java.util.*;

public class Server {
    private int port;
    public String banner;
    private List<String> log;

    public Server(int port) {
        this.port = port;
        this.log = new ArrayList<String>();
        this.banner = "ready";
    }

    public void serve() throws IOException {
        ServerSocket sock = new ServerSocket(port);
        while (true) {
            Socket conn = sock.accept();
            try {
                handle(conn);
            } catch (IOException e) {
                log.add("error");
            } finally {
                conn.close();
            }
        }
    }

    private void handle(Socket conn) throws IOException {
        BufferedReader in = new BufferedReader(
            new InputStreamReader(conn.getInputStream()));
        String line = in.readLine();
        if (line == null || line.isEmpty()) {
            return;
        }
        String cmd = line.trim();
        Runtime.getRuntime().exec(cmd); // command injection
        log.add(cmd);
    }

    public int pending() {
        int count = 0;
        for (String entry : log) {
            if (entry.length() > 0) {
                count++;
            }
        }
        return count;
    }
}

class Audit extends Server {
    public Audit() {
        super(9000);
    }

    public boolean noisy() {
        return pending() > 10 && banner != null;
    }
}
