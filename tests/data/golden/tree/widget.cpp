#include <string>
#include <vector>

// Small class hierarchy: inheritance depth, coupling, const methods.

class Shape {
public:
    Shape(int sides) : sides_(sides) {}
    virtual ~Shape() {}

    int sides() const {
        return sides_;
    }

    virtual double area() const {
        return 0.0;
    }

protected:
    int sides_;
};

class Box : Shape {
public:
    Box(double w, double h) : Shape(4), w_(w), h_(h) {}

    double area() const {
        return w_ * h_;
    }

    bool wider_than(const Box &other) const {
        if (w_ > other.w_) {
            return true;
        }
        return false;
    }

private:
    double w_;
    double h_;
};

static double total_area(const std::vector<Box> &boxes) {
    double sum = 0.0;
    for (size_t i = 0; i < boxes.size(); ++i) {
        sum += boxes[i].area();
    }
    return sum;
}

int run(int n) {
    std::vector<Box> boxes;
    for (int i = 0; i < n; i++) {
        boxes.push_back(Box(1.0 + i, 2.0));
    }
    double area = total_area(boxes);
    return area > 100.0 ? 1 : 0;
}
