"""CLI tests (invoking main() in-process)."""

import pickle

import pytest

from repro.cli import main

RISKY_C = (
    "#include <string.h>\n"
    "int handle(char *req) {\n"
    "    char buf[32];\n"
    "    strcpy(buf, req);\n"
    "    system(req);\n"
    "    return 0;\n"
    "}\n"
)

SAFE_C = (
    "#include <string.h>\n"
    "int handle(const char *req, char *out, unsigned cap) {\n"
    "    strncpy(out, req, cap - 1);\n"
    "    out[cap - 1] = 0;\n"
    "    return 0;\n"
    "}\n"
)


@pytest.fixture
def risky_tree(tmp_path):
    d = tmp_path / "risky"
    d.mkdir()
    (d / "app.c").write_text(RISKY_C)
    return str(d)


@pytest.fixture
def safe_tree(tmp_path):
    d = tmp_path / "safe"
    d.mkdir()
    (d / "app.c").write_text(SAFE_C)
    return str(d)


@pytest.fixture(scope="module")
def model_path(tmp_path_factory, small_training):
    path = tmp_path_factory.mktemp("model") / "m.pkl"
    with open(path, "wb") as handle:
        pickle.dump(small_training.model, handle)
    return str(path)


class TestAnalyze:
    def test_prints_metrics(self, risky_tree, capsys):
        assert main(["analyze", risky_tree]) == 0
        out = capsys.readouterr().out
        assert "complexity.per_kloc" in out
        assert "bugs.rule.unbounded-copy/strcpy_per_kloc" in out

    def test_dynamic_flag(self, risky_tree, capsys):
        assert main(["analyze", risky_tree, "--dynamic"]) == 0
        assert "dynamic.node_coverage" in capsys.readouterr().out

    def test_empty_directory_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="no recognised"):
            main(["analyze", str(tmp_path)])


class TestAssess:
    def test_with_saved_model(self, risky_tree, model_path, capsys):
        assert main(["assess", risky_tree, "--model", model_path]) == 0
        out = capsys.readouterr().out
        assert "Security assessment" in out
        assert "classification hypotheses" in out

    def test_bad_model_file(self, risky_tree, tmp_path):
        bogus = tmp_path / "bogus.pkl"
        with open(bogus, "wb") as handle:
            pickle.dump({"not": "a model"}, handle)
        with pytest.raises(SystemExit, match="not a saved model"):
            main(["assess", risky_tree, "--model", str(bogus)])


class TestGateAndCompare:
    def test_gate_identical_passes(self, risky_tree, model_path, capsys):
        code = main(["gate", risky_tree, risky_tree, "--model", model_path])
        assert code == 0
        assert "gate: pass" in capsys.readouterr().out

    def test_compare_reports_both(self, risky_tree, safe_tree, model_path,
                                  capsys):
        assert main(
            ["compare", safe_tree, risky_tree, "--model", model_path]
        ) == 0
        out = capsys.readouterr().out
        assert "model chooses:" in out
        assert "LoC-naive metric would choose" in out


class TestSurveyAndCorpus:
    def test_survey_totals(self, capsys):
        assert main(["survey", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "384" in out and "116" in out and "31" in out

    def test_corpus_export(self, tmp_path, capsys):
        out_path = str(tmp_path / "feed.json")
        assert main(["corpus", "--out", out_path, "--seed", "5"]) == 0
        from repro.cve import io as cve_io

        db = cve_io.load(out_path)
        assert db.totals() == (164, 5975)


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestHotspots:
    def test_lists_functions_and_findings(self, risky_tree, capsys):
        assert main(["hotspots", risky_tree]) == 0
        out = capsys.readouterr().out
        assert "least maintainable functions" in out
        assert "unbounded-copy/strcpy" in out
        assert "handle" in out

    def test_clean_tree_no_findings(self, tmp_path, capsys):
        d = tmp_path / "clean"
        d.mkdir()
        (d / "m.c").write_text("static int add(int a, int b) {\n    return a + b;\n}\n")
        assert main(["hotspots", str(d)]) == 0
        assert "no security findings" in capsys.readouterr().out

    def test_top_limits_output(self, risky_tree, capsys):
        assert main(["hotspots", risky_tree, "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "more" in out or out.count("HIGH") <= 2
