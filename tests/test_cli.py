"""CLI tests (invoking main() in-process)."""

import json
import pickle

import pytest

from repro import obs
from repro.cli import main


@pytest.fixture(autouse=True)
def obs_disabled():
    """main() manages its own obs session; never leak one across tests."""
    obs.disable()
    yield
    obs.disable()

RISKY_C = (
    "#include <string.h>\n"
    "int handle(char *req) {\n"
    "    char buf[32];\n"
    "    strcpy(buf, req);\n"
    "    system(req);\n"
    "    return 0;\n"
    "}\n"
)

SAFE_C = (
    "#include <string.h>\n"
    "int handle(const char *req, char *out, unsigned cap) {\n"
    "    strncpy(out, req, cap - 1);\n"
    "    out[cap - 1] = 0;\n"
    "    return 0;\n"
    "}\n"
)


@pytest.fixture
def risky_tree(tmp_path):
    d = tmp_path / "risky"
    d.mkdir()
    (d / "app.c").write_text(RISKY_C)
    return str(d)


@pytest.fixture
def safe_tree(tmp_path):
    d = tmp_path / "safe"
    d.mkdir()
    (d / "app.c").write_text(SAFE_C)
    return str(d)


@pytest.fixture(scope="module")
def model_path(tmp_path_factory, small_training):
    path = tmp_path_factory.mktemp("model") / "m.pkl"
    with open(path, "wb") as handle:
        pickle.dump(small_training.model, handle)
    return str(path)


class TestAnalyze:
    def test_prints_metrics(self, risky_tree, capsys):
        assert main(["analyze", risky_tree]) == 0
        out = capsys.readouterr().out
        assert "complexity.per_kloc" in out
        assert "bugs.rule.unbounded-copy/strcpy_per_kloc" in out

    def test_dynamic_flag(self, risky_tree, capsys):
        assert main(["analyze", risky_tree, "--dynamic"]) == 0
        assert "dynamic.node_coverage" in capsys.readouterr().out

    def test_empty_directory_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="no recognised"):
            main(["analyze", str(tmp_path)])

    def test_json_output(self, risky_tree, capsys):
        assert main(["analyze", risky_tree, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["app"] == "risky"
        assert payload["files"] == 1
        assert payload["primary_language"] == "c"
        features = payload["features"]
        assert list(features) == sorted(features)
        assert features["bugs.rule.unbounded-copy/strcpy_per_kloc"] > 0
        assert isinstance(features["complexity.per_kloc"], float)

    def test_json_matches_text_values(self, risky_tree, capsys):
        assert main(["analyze", risky_tree, "--json"]) == 0
        features = json.loads(capsys.readouterr().out)["features"]
        assert main(["analyze", risky_tree]) == 0
        text = capsys.readouterr().out
        assert f"{features['size.sample_loc']:12.4f}" in text


class TestObservabilityFlags:
    def test_trace_writes_valid_jsonl(self, risky_tree, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        # --no-cache keeps analyzer spans present even when the suite
        # runs with a warm REPRO_CACHE_DIR (the CI engine matrix leg).
        assert main(["--trace", trace, "analyze", risky_tree,
                     "--no-cache"]) == 0
        records = [json.loads(line) for line in open(trace)]
        assert records, "trace file is empty"
        for record in records:
            assert sorted(record) == ["attrs", "duration", "name",
                                      "parent", "span_id", "start",
                                      "trace_id"]
        names = {r["name"] for r in records}
        assert "testbed.extract_features" in names
        assert "analysis.cfg" in names
        # nested spans link to a recorded parent
        ids = {r["span_id"] for r in records}
        assert all(r["parent"] in ids for r in records
                   if r["parent"] is not None)

    def test_trace_flag_after_subcommand(self, risky_tree, tmp_path):
        trace = str(tmp_path / "t.jsonl")
        assert main(["analyze", risky_tree, "--trace", trace]) == 0
        assert [json.loads(line) for line in open(trace)]

    def test_trace_unwritable_path_fails_cleanly(self, risky_tree, capsys):
        code = main(["analyze", risky_tree,
                     "--trace", "/nonexistent-dir/t.jsonl"])
        assert code == 1
        assert "cannot write trace" in capsys.readouterr().err

    def test_profile_prints_telemetry(self, risky_tree, capsys):
        assert main(["analyze", risky_tree, "--profile",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "repro telemetry" in out
        assert "per-phase / per-analyzer breakdown" in out
        assert "analysis.cfg" in out
        assert "testbed.files_analyzed" in out

    def test_profile_survey(self, capsys):
        assert main(["--profile", "survey", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "papers per evaluation style" in out
        assert "repro telemetry" in out

    def test_obs_disabled_after_run(self, risky_tree, capsys):
        assert main(["analyze", risky_tree, "--profile"]) == 0
        assert not obs.is_enabled()

    def test_no_flags_no_telemetry(self, risky_tree, capsys):
        assert main(["analyze", risky_tree]) == 0
        assert "repro telemetry" not in capsys.readouterr().out


class TestAssess:
    def test_with_saved_model(self, risky_tree, model_path, capsys):
        assert main(["assess", risky_tree, "--model", model_path]) == 0
        out = capsys.readouterr().out
        assert "Security assessment" in out
        assert "classification hypotheses" in out

    def test_bad_model_file(self, risky_tree, tmp_path):
        bogus = tmp_path / "bogus.pkl"
        with open(bogus, "wb") as handle:
            pickle.dump({"not": "a model"}, handle)
        with pytest.raises(SystemExit, match="not a saved model"):
            main(["assess", risky_tree, "--model", str(bogus)])

    def test_corrupt_model_file(self, risky_tree, tmp_path):
        corrupt = tmp_path / "corrupt.pkl"
        corrupt.write_bytes(b"\x80\x04this is not a pickle at all")
        with pytest.raises(SystemExit, match="not a readable model file"):
            main(["assess", risky_tree, "--model", str(corrupt)])

    def test_truncated_model_file(self, risky_tree, tmp_path, model_path):
        truncated = tmp_path / "truncated.pkl"
        truncated.write_bytes(open(model_path, "rb").read()[:64])
        with pytest.raises(SystemExit, match="not a readable model file"):
            main(["assess", risky_tree, "--model", str(truncated)])

    def test_model_format_version_stamped(self, model_path):
        from repro.core.model import SecurityModel

        with open(model_path, "rb") as handle:
            model = pickle.load(handle)
        assert model.format_version == SecurityModel.FORMAT_VERSION

    def test_model_format_version_mismatch(self, risky_tree, tmp_path,
                                           model_path):
        with open(model_path, "rb") as handle:
            model = pickle.load(handle)
        model.format_version = 0  # simulate a stale on-disk format
        stale = tmp_path / "stale.pkl"
        with open(stale, "wb") as handle:
            pickle.dump(model, handle)
        with pytest.raises(SystemExit, match="model format version"):
            main(["assess", risky_tree, "--model", str(stale)])


class TestExitCodes:
    """The documented exit-code contract, pinned as a regression test."""

    def test_constants_are_stable(self):
        from repro import cli

        assert cli.EXIT_OK == 0
        assert cli.EXIT_FAILURES == 1
        assert cli.EXIT_USAGE == 2
        assert cli.EXIT_GATE_BREACH == 3

    def test_argparse_usage_errors_use_exit_usage(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["no-such-command"])
        assert excinfo.value.code == 2


class TestGateAndCompare:
    def test_gate_identical_passes(self, risky_tree, model_path, capsys):
        code = main(["gate", risky_tree, risky_tree, "--model", model_path])
        assert code == 0
        assert "gate: pass" in capsys.readouterr().out

    def test_gate_model_mode_breach_exit_code(self, risky_tree, safe_tree,
                                              model_path, capsys):
        # Any delta is strictly above a -1 threshold, so this pins the
        # breach path (exit 3) without depending on what the tiny
        # fixture trees score under the session model.
        code = main(["gate", safe_tree, risky_tree, "--model", model_path,
                     "--threshold", "-1.0"])
        assert code == 3
        out = capsys.readouterr().out
        assert "gate: BREACH" in out
        assert "mode: model" in out

    def test_gate_features_only_needs_no_model(self, risky_tree,
                                               safe_tree, capsys):
        code = main(["gate", safe_tree, risky_tree, "--features-only",
                     "--threshold", "0.0"])
        assert code == 3
        out = capsys.readouterr().out
        assert "mode: features" in out
        assert "risk UP" in out

    def test_gate_improvement_passes_zero_threshold(self, risky_tree,
                                                    safe_tree, capsys):
        code = main(["gate", risky_tree, safe_tree, "--features-only",
                     "--threshold", "0.0"])
        assert code == 0
        assert "gate: pass" in capsys.readouterr().out

    def test_gate_json_document(self, risky_tree, safe_tree, capsys):
        code = main(["gate", safe_tree, risky_tree, "--features-only",
                     "--threshold", "0.0", "--json"])
        assert code == 3
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == 1
        assert doc["breach"] is True
        assert doc["files"][0]["path"] == "app.c"
        assert doc["files"][0]["drivers"]

    def test_gate_base_head_flags(self, risky_tree, safe_tree, capsys):
        code = main(["gate", "--base", safe_tree, "--head", risky_tree,
                     "--features-only", "--threshold", "0.0"])
        assert code == 3

    def test_gate_requires_exactly_two_trees(self, risky_tree, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["gate", risky_tree, "--features-only"])
        assert excinfo.value.code == 2

    def test_gate_missing_tree_errors(self, risky_tree):
        with pytest.raises(SystemExit, match="not a directory"):
            main(["gate", risky_tree, risky_tree + "-gone",
                  "--features-only"])

    def test_compare_reports_both(self, risky_tree, safe_tree, model_path,
                                  capsys):
        assert main(
            ["compare", safe_tree, risky_tree, "--model", model_path]
        ) == 0
        out = capsys.readouterr().out
        assert "model chooses:" in out
        assert "LoC-naive metric would choose" in out


class TestWatch:
    def test_watch_missing_root_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="not a directory"):
            main(["watch", str(tmp_path / "gone")])

    def test_watch_zero_count_exits_clean(self, risky_tree, capsys):
        assert main(["watch", risky_tree, "--count", "0"]) == 0
        banner = capsys.readouterr().err
        assert "watching" in banner

    def test_watch_emits_stream_compatible_lines(self, risky_tree,
                                                 capsys):
        import threading
        import pathlib

        def edit():
            pathlib.Path(risky_tree, "app.c").write_text(
                "int handle(void) { return 0; }\n")

        timer = threading.Timer(0.3, edit)
        timer.start()
        try:
            code = main(["watch", risky_tree, "--count", "1",
                         "--interval", "0.05", "--debounce", "0.0"])
        finally:
            timer.cancel()
        assert code == 0
        line = capsys.readouterr().out.strip()
        event = json.loads(line)
        assert event["type"] == "event"
        assert event["name"] == "watch.assess"
        assert event["fields"]["changed"] == 1


class TestSurveyAndCorpus:
    def test_survey_totals(self, capsys):
        assert main(["survey", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "384" in out and "116" in out and "31" in out

    def test_corpus_export(self, tmp_path, capsys):
        out_path = str(tmp_path / "feed.json")
        assert main(["corpus", "--out", out_path, "--seed", "5"]) == 0
        from repro.cve import io as cve_io

        db = cve_io.load(out_path)
        assert db.totals() == (164, 5975)


class TestFailurePolicyFlags:
    def test_flags_reach_the_engine(self):
        from repro.cli import _engine_from_args, build_parser

        args = build_parser().parse_args(
            ["analyze", "ignored", "--on-error", "retry",
             "--task-timeout", "7.5", "--max-retries", "4",
             "--workers", "2"])
        engine = _engine_from_args(args)
        assert engine.on_error == "retry"
        assert engine.task_timeout == 7.5
        assert engine.max_retries == 4

    def test_defaults_are_fail_fast(self):
        from repro.cli import _engine_from_args, build_parser

        args = build_parser().parse_args(["analyze", "ignored"])
        engine = _engine_from_args(args)
        assert engine.on_error == "raise"
        assert engine.task_timeout is None

    def test_unknown_policy_rejected_by_parser(self, risky_tree):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", risky_tree, "--on-error", "ignore"])
        assert excinfo.value.code == 2

    def test_analyze_reports_extraction_failure(self, risky_tree,
                                                monkeypatch):
        from repro.engine.faults import FAULTS_ENV

        # An ambient cache (CI engine leg) would satisfy the task from a
        # prior test's row and the injected crash would never run.
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv(FAULTS_ENV, "risky=crash")
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", risky_tree, "--on-error", "skip"])
        assert "extraction failed" in str(excinfo.value)
        assert "risky" in str(excinfo.value)

    def test_train_exits_nonzero_when_apps_skipped(self, tmp_path,
                                                   monkeypatch, capsys):
        from repro.engine.faults import FAULTS_ENV

        # See test_analyze_reports_extraction_failure: cached corpus rows
        # would mask the injected crash.
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv(FAULTS_ENV, "c-app-002=crash")
        out = str(tmp_path / "m.pkl")
        code = main(["train", "--seed", "7", "--apps", "16",
                     "--folds", "3", "--out", out, "--on-error", "skip"])
        assert code == 1
        captured = capsys.readouterr()
        assert "skipped 1 application(s)" in captured.err
        assert "c-app-002" in captured.err
        # the model over the survivors was still trained and saved
        assert "model saved" in captured.out
        with open(out, "rb") as handle:
            assert pickle.load(handle) is not None

    def test_clean_train_still_exits_zero(self, tmp_path, monkeypatch,
                                          capsys):
        from repro.engine.faults import FAULTS_ENV

        monkeypatch.delenv(FAULTS_ENV, raising=False)
        out = str(tmp_path / "m.pkl")
        code = main(["train", "--seed", "7", "--apps", "16",
                     "--folds", "3", "--out", out, "--on-error", "skip"])
        assert code == 0
        assert "skipped" not in capsys.readouterr().err


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestHotspots:
    def test_lists_functions_and_findings(self, risky_tree, capsys):
        assert main(["hotspots", risky_tree]) == 0
        out = capsys.readouterr().out
        assert "least maintainable functions" in out
        assert "unbounded-copy/strcpy" in out
        assert "handle" in out

    def test_clean_tree_no_findings(self, tmp_path, capsys):
        d = tmp_path / "clean"
        d.mkdir()
        (d / "m.c").write_text("static int add(int a, int b) {\n    return a + b;\n}\n")
        assert main(["hotspots", str(d)]) == 0
        assert "no security findings" in capsys.readouterr().out

    def test_top_limits_output(self, risky_tree, capsys):
        assert main(["hotspots", risky_tree, "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "more" in out or out.count("HIGH") <= 2


class TestVersion:
    def test_version_flag_prints_and_exits_zero(self, capsys):
        from repro import package_version

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert package_version() in capsys.readouterr().out

    def test_version_is_a_dotted_release_string(self):
        import re

        import repro

        version = repro.package_version()
        assert re.match(r"^\d+\.\d+", version)

    def test_uninstalled_falls_back_to_module_constant(self, monkeypatch):
        # PYTHONPATH=src runs have no installed distribution; the module
        # constant must stand in so /healthz always has an identity.
        import importlib.metadata

        import repro

        def missing(name):
            raise importlib.metadata.PackageNotFoundError(name)

        monkeypatch.setattr(importlib.metadata, "version", missing)
        assert repro.package_version() == repro.__version__


class TestAnalyzeWithModel:
    def test_json_gains_prediction_block(self, risky_tree, model_path,
                                         capsys):
        assert main(["analyze", risky_tree, "--json",
                     "--model", model_path]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        prediction = payload["prediction"]
        assert set(prediction) == {"schema_version", "probabilities",
                                   "estimates", "overall_risk"}
        assert 0.0 <= prediction["overall_risk"] <= 1.0

    def test_json_without_model_has_no_prediction(self, risky_tree,
                                                  capsys):
        assert main(["analyze", risky_tree, "--json"]) == 0
        assert "prediction" not in json.loads(capsys.readouterr().out)

    def test_text_mode_prints_risk(self, risky_tree, model_path, capsys):
        assert main(["analyze", risky_tree, "--model", model_path]) == 0
        assert "predicted risk" in capsys.readouterr().out

    def test_bad_model_fails_before_extraction(self, risky_tree,
                                               tmp_path):
        bad = tmp_path / "bad.pkl"
        bad.write_bytes(b"garbage")
        with pytest.raises(SystemExit, match="not a readable model"):
            main(["analyze", risky_tree, "--json", "--model", str(bad)])


class TestServeParser:
    def test_model_flag_is_required(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve"])
        assert excinfo.value.code == 2

    def test_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--model", "m.pkl"])
        assert args.model == ["m.pkl"]
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.batch_window == 0.01
        assert args.batch_size == 16
        assert args.queue_depth == 64

    def test_models_accumulate_and_engine_flags_apply(self):
        from repro.cli import _engine_from_args, build_parser

        args = build_parser().parse_args(
            ["serve", "--model", "a=m1.pkl", "--model", "b=m2.pkl",
             "--workers", "3", "--port", "0"])
        assert args.model == ["a=m1.pkl", "b=m2.pkl"]
        assert _engine_from_args(args).workers == 3

    def test_unloadable_model_exits_with_message(self, tmp_path):
        bad = tmp_path / "bad.pkl"
        bad.write_bytes(b"nope")
        with pytest.raises(SystemExit, match="not a readable model"):
            main(["serve", "--model", str(bad), "--port", "0"])


class TestTelemetryStreamFlag:
    def test_stream_writes_live_events(self, risky_tree, tmp_path):
        stream = str(tmp_path / "telemetry.jsonl")
        assert main(["--stream", stream, "analyze", risky_tree,
                     "--no-cache"]) == 0
        events = obs.read_events(stream)
        assert events, "stream file is empty"
        kinds = {event["type"] for event in events}
        assert "span" in kinds
        assert all(event["v"] == obs.TELEMETRY_VERSION for event in events)

    def test_invocation_mints_one_root_trace_id(self, risky_tree,
                                                tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        assert main(["--trace", trace, "analyze", risky_tree,
                     "--no-cache"]) == 0
        records = [json.loads(line) for line in open(trace)]
        trace_ids = {record["trace_id"] for record in records}
        assert len(trace_ids) == 1
        (trace_id,) = trace_ids
        assert trace_id and len(trace_id) == 32
        int(trace_id, 16)

    def test_two_invocations_mint_distinct_trace_ids(self, risky_tree,
                                                     tmp_path):
        ids = set()
        for name in ("a.jsonl", "b.jsonl"):
            trace = str(tmp_path / name)
            assert main(["--trace", trace, "analyze", risky_tree]) == 0
            ids |= {json.loads(line)["trace_id"] for line in open(trace)}
        assert len(ids) == 2


def write_stream(tmp_path, events, name="telemetry.jsonl"):
    path = tmp_path / name
    path.write_text("".join(
        json.dumps({"v": 1, "ts": 0.0, **event}) + "\n"
        for event in events))
    return str(path)


def write_slo(tmp_path, rules, name="slo.json"):
    path = tmp_path / name
    path.write_text(json.dumps({"slo": rules}))
    return str(path)


ERROR_BUDGET = {"name": "error-budget", "kind": "counter_max",
                "counter": "serve.errors", "max_value": 10}


class TestSloCheck:
    def test_healthy_stream_exits_zero(self, tmp_path, capsys):
        stream = write_stream(tmp_path, [
            {"type": "counter", "name": "serve.errors", "delta": 3.0}])
        slo = write_slo(tmp_path, [ERROR_BUDGET])
        assert main(["slo-check", "--slo", slo, "--stream", stream]) == 0
        out = capsys.readouterr().out
        assert "slo-check against" in out
        assert "slo: ok" in out

    def test_breached_stream_exits_nonzero_naming_the_rule(
            self, tmp_path, capsys):
        stream = write_stream(tmp_path, [
            {"type": "counter", "name": "serve.errors", "delta": 50.0}])
        slo = write_slo(tmp_path, [ERROR_BUDGET])
        assert main(["slo-check", "--slo", slo, "--stream", stream]) == 3
        out = capsys.readouterr().out
        assert "DEGRADED" in out
        assert "error-budget" in out

    def test_latency_rule_against_replayed_spans(self, tmp_path, capsys):
        stream = write_stream(tmp_path, [
            {"type": "observe", "name": "serve.predict.seconds",
             "value": 2.5}])
        slo = write_slo(tmp_path, [
            {"name": "predict-p99", "kind": "latency",
             "histogram": "serve.predict.seconds", "stat": "p99",
             "max_seconds": 0.5}])
        assert main(["slo-check", "--slo", slo, "--stream", stream]) == 3
        assert "predict-p99" in capsys.readouterr().out

    def test_invalid_rules_file_exits_with_message(self, tmp_path):
        stream = write_stream(tmp_path, [])
        bad = tmp_path / "slo.json"
        bad.write_text("{broken")
        with pytest.raises(SystemExit, match="invalid JSON"):
            main(["slo-check", "--slo", str(bad), "--stream", stream])

    def test_requires_a_source(self, tmp_path, capsys):
        slo = write_slo(tmp_path, [ERROR_BUDGET])
        with pytest.raises(SystemExit):
            main(["slo-check", "--slo", slo])


class TestMonitorCommand:
    def test_once_renders_a_frame_from_a_stream(self, tmp_path, capsys):
        stream = write_stream(tmp_path, [
            {"type": "counter", "name": "serve.requests", "delta": 5.0},
            {"type": "observe", "name": "serve.predict.seconds",
             "value": 0.02}])
        assert main(["monitor", "--stream", stream, "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro monitor" in out
        assert "requests  total=5" in out
        assert "/predict" in out

    def test_once_with_slo_rules_renders_verdict(self, tmp_path, capsys):
        stream = write_stream(tmp_path, [
            {"type": "counter", "name": "serve.errors", "delta": 50.0}])
        slo = write_slo(tmp_path, [ERROR_BUDGET])
        assert main(["monitor", "--stream", stream, "--slo", slo,
                     "--once"]) == 0
        assert "DEGRADED — breached: error-budget" in \
            capsys.readouterr().out

    def test_url_and_stream_are_mutually_exclusive(self, tmp_path):
        stream = write_stream(tmp_path, [])
        with pytest.raises(SystemExit):
            main(["monitor", "--stream", stream, "--url",
                  "http://localhost:1", "--once"])
