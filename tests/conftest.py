"""Shared fixtures: sample sources, a small corpus, a trained model.

Session-scoped where construction is expensive; everything is
deterministic (fixed seeds) so failures reproduce exactly.
"""

from __future__ import annotations

import pytest

from repro.lang import Codebase, SourceFile

C_SAMPLE = """\
#include <stdio.h>
#include <string.h>

/* copy helper */
static int helper(char *dst, const char *src, int n) {
    int i;
    for (i = 0; i < n && src[i]; i++) {
        if (src[i] == 37) {
            dst[i] = 95;
        } else {
            dst[i] = src[i];
        }
    }
    dst[i] = 0;
    return i;
}

int main(int argc, char **argv) {
    char buf[64]; // trailing comment
    if (argc > 1) {
        strcpy(buf, argv[1]);
        helper(buf, argv[1], 63);
        switch (argc) {
        case 2:
            printf("%d", argc);
            break;
        default:
            break;
        }
    }
    while (argc-- > 0) {
        continue;
    }
    return 0;
}
"""

PY_SAMPLE = '''\
import os

def greet(name, times=2):
    """Say hi a few times."""
    if not name:
        return None
    for _ in range(times):
        print("hi", name)
    return name


class Greeter:
    def __init__(self, who):
        self.who = who

    def run(self):
        try:
            greet(self.who)
        except ValueError:
            pass
        return 1
'''

JAVA_SAMPLE = """\
import java.io.*;

public class Widget {
    private int count;

    public Widget(int count) {
        this.count = count;
    }

    public int total(int extra) {
        int sum = 0;
        for (int i = 0; i < count; i++) {
            if (i % 2 == 0 && extra > 0) {
                sum += i;
            }
        }
        return sum;
    }

    private void reset() {
        count = 0;
    }
}
"""


@pytest.fixture
def c_source():
    return SourceFile("main.c", C_SAMPLE)


@pytest.fixture
def py_source():
    return SourceFile("app.py", PY_SAMPLE)


@pytest.fixture
def java_source():
    return SourceFile("Widget.java", JAVA_SAMPLE)


@pytest.fixture
def mixed_codebase():
    return Codebase.from_sources(
        "demo",
        {"main.c": C_SAMPLE, "app.py": PY_SAMPLE, "Widget.java": JAVA_SAMPLE},
    )


@pytest.fixture(scope="session")
def small_corpus():
    """A 16-app corpus (session-scoped; ~2s to build)."""
    from repro.synth import build_corpus

    return build_corpus(seed=7, limit=16)


@pytest.fixture(scope="session")
def small_training(small_corpus):
    """Trained model over the small corpus (session-scoped)."""
    from repro.core.pipeline import train

    return train(small_corpus, k=4, seed=7)
