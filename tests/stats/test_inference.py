"""Bootstrap and permutation inference tests."""

import numpy as np
import pytest

from repro.stats.correlation import pearson
from repro.stats.inference import (
    InferenceError,
    bootstrap_ci,
    paired_difference_test,
    permutation_test,
)
from repro.stats.regression import r_squared


def correlated_data(n=80, noise=0.5, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=n)
    y = x + rng.normal(scale=noise, size=n)
    return x, y


class TestBootstrap:
    def test_ci_contains_estimate(self):
        x, y = correlated_data()
        result = bootstrap_ci(x, y, pearson, n_resamples=300)
        assert result.low <= result.estimate <= result.high

    def test_strong_correlation_ci_excludes_zero(self):
        x, y = correlated_data(noise=0.2)
        result = bootstrap_ci(x, y, pearson, n_resamples=300)
        assert result.low > 0.0
        assert 0.0 not in result

    def test_wider_confidence_wider_interval(self):
        x, y = correlated_data()
        narrow = bootstrap_ci(x, y, pearson, confidence=0.8, n_resamples=400)
        wide = bootstrap_ci(x, y, pearson, confidence=0.99, n_resamples=400)
        assert wide.high - wide.low >= narrow.high - narrow.low

    def test_r_squared_statistic(self):
        x, y = correlated_data(noise=0.3)
        result = bootstrap_ci(x, y, r_squared, n_resamples=200)
        assert 0.0 <= result.low <= result.high <= 1.0

    def test_deterministic(self):
        x, y = correlated_data()
        a = bootstrap_ci(x, y, pearson, n_resamples=100, seed=3)
        b = bootstrap_ci(x, y, pearson, n_resamples=100, seed=3)
        assert (a.low, a.high) == (b.low, b.high)

    def test_validation(self):
        with pytest.raises(InferenceError):
            bootstrap_ci([1, 2], [1, 2], pearson)
        with pytest.raises(InferenceError):
            bootstrap_ci([1, 2, 3], [1, 2], pearson)
        with pytest.raises(InferenceError):
            bootstrap_ci([1, 2, 3], [1, 2, 3], pearson, confidence=0.3)


class TestPermutation:
    def test_real_association_significant(self):
        x, y = correlated_data(noise=0.2)
        result = permutation_test(x, y, pearson, n_permutations=300)
        assert result.significant(0.05)
        assert result.p_value < 0.05

    def test_no_association_not_significant(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=60)
        y = rng.normal(size=60)
        result = permutation_test(x, y, pearson, n_permutations=300)
        assert result.p_value > 0.05

    def test_p_value_bounds(self):
        x, y = correlated_data()
        result = permutation_test(x, y, pearson, n_permutations=99)
        assert 0.0 < result.p_value <= 1.0

    def test_validation(self):
        with pytest.raises(InferenceError):
            permutation_test([1], [1], pearson)


class TestPairedDifference:
    def test_clear_difference_significant(self):
        a = [0.8, 0.82, 0.79, 0.85, 0.81, 0.83, 0.8, 0.84]
        b = [0.6, 0.61, 0.58, 0.63, 0.6, 0.62, 0.59, 0.61]
        result = paired_difference_test(a, b, n_permutations=500)
        assert result.significant(0.05)
        assert result.statistic > 0

    def test_identical_samples_not_significant(self):
        a = [0.7, 0.72, 0.69, 0.71, 0.7]
        result = paired_difference_test(a, list(a), n_permutations=200)
        assert not result.significant(0.05)

    def test_validation(self):
        with pytest.raises(InferenceError):
            paired_difference_test([1, 2, 3], [1, 2])
