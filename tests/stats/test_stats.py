"""Regression, correlation, and bucketing tests."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.bucketing import (
    BucketingError,
    bucket_by_magnitude,
    bucketed_means,
    magnitude_histogram,
    meaningful_loc_comparison,
    order_of_magnitude,
    orders_apart,
    same_order,
)
from repro.stats.correlation import CorrelationError, pearson, spearman
from repro.stats.regression import (
    RegressionError,
    fit_linear,
    fit_loglog,
    r_squared,
)


class TestLinearFit:
    def test_exact_line(self):
        fit = fit_linear([0, 1, 2, 3], [1, 3, 5, 7])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_linear([0, 1], [0, 2])
        assert fit.predict(10) == pytest.approx(20.0)

    def test_r_squared_noise_lower(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 10, 100)
        clean = r_squared(x, 2 * x)
        noisy = r_squared(x, 2 * x + rng.normal(scale=5.0, size=100))
        assert clean == pytest.approx(1.0)
        assert noisy < clean

    def test_too_few_points(self):
        with pytest.raises(RegressionError):
            fit_linear([1], [1])

    def test_zero_variance(self):
        with pytest.raises(RegressionError):
            fit_linear([2, 2, 2], [1, 2, 3])

    def test_length_mismatch(self):
        with pytest.raises(RegressionError):
            fit_linear([1, 2], [1])

    def test_loglog_power_law(self):
        xs = [10, 100, 1000]
        ys = [2 * x**0.5 for x in xs]
        fit = fit_loglog(xs, ys)
        assert fit.slope == pytest.approx(0.5)
        assert fit.intercept == pytest.approx(math.log10(2))

    def test_loglog_drops_nonpositive(self):
        fit = fit_loglog([10, 100, -5, 0], [1, 10, 3, 4])
        assert fit.n == 2

    def test_loglog_all_nonpositive(self):
        with pytest.raises(RegressionError):
            fit_loglog([-1, 0], [1, 2])


class TestCorrelation:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_returns_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_spearman_monotone_nonlinear(self):
        xs = [1, 2, 3, 4, 5]
        ys = [x**3 for x in xs]
        assert spearman(xs, ys) == pytest.approx(1.0)
        assert pearson(xs, ys) < 1.0

    def test_spearman_ties(self):
        assert -1.0 <= spearman([1, 1, 2, 2], [3, 3, 4, 4]) <= 1.0

    def test_errors(self):
        with pytest.raises(CorrelationError):
            pearson([1], [1])
        with pytest.raises(CorrelationError):
            spearman([1, 2], [1])


class TestBucketing:
    @pytest.mark.parametrize(
        "value,bucket",
        [(1, 0), (9.99, 0), (10, 1), (999, 2), (1000, 3), (0.5, -1)],
    )
    def test_order_of_magnitude(self, value, bucket):
        assert order_of_magnitude(value) == bucket

    def test_nonpositive_rejected(self):
        with pytest.raises(BucketingError):
            order_of_magnitude(0)
        with pytest.raises(BucketingError):
            order_of_magnitude(-3)

    def test_bucket_list(self):
        assert bucket_by_magnitude([1, 10, 100]) == [0, 1, 2]

    def test_histogram(self):
        assert magnitude_histogram([1, 2, 10, 20, 100]) == {0: 2, 1: 2, 2: 1}

    def test_same_order(self):
        assert same_order(15, 99)
        assert not same_order(9, 10)

    def test_orders_apart(self):
        assert orders_apart(10, 10000) == 3

    def test_meaningful_loc_comparison(self):
        # Within 1 order: not meaningful (the paper's rule).
        assert not meaningful_loc_comparison(5000, 50000)
        assert meaningful_loc_comparison(5000, 5000000)

    def test_bucketed_means(self):
        means = bucketed_means([1, 2, 10, 20], [1.0, 3.0, 10.0, 30.0])
        assert means == [(0, 2.0), (1, 20.0)]

    def test_bucketed_means_mismatch(self):
        with pytest.raises(BucketingError):
            bucketed_means([1, 2], [1.0])


@settings(max_examples=80)
@given(st.floats(min_value=1e-9, max_value=1e12))
def test_order_of_magnitude_bounds(value):
    bucket = order_of_magnitude(value)
    assert 10**bucket <= value * 1.0000001
    assert value < 10 ** (bucket + 1) * 1.0000001


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
        min_size=3,
        max_size=50,
    )
)
def test_pearson_bounded(pairs):
    xs = [p[0] for p in pairs]
    ys = [p[1] for p in pairs]
    assert -1.0000001 <= pearson(xs, ys) <= 1.0000001
