"""C/C++ security checker tests."""

import pytest

from repro.bugfind.c_checkers import (
    check_command_injection,
    check_format_string,
    check_multiplication_in_alloc,
    check_toctou,
    check_unbounded_copy,
    check_unchecked_allocation,
    check_weak_random,
    run,
)
from repro.bugfind.findings import Severity
from repro.lang import SourceFile


def c(text):
    return SourceFile("t.c", text)


class TestUnboundedCopy:
    def test_strcpy_flagged(self):
        findings = check_unbounded_copy(c("strcpy(dst, src);"))
        assert len(findings) == 1
        assert findings[0].cwe == 121
        assert findings[0].severity == Severity.HIGH

    def test_gets_critical(self):
        findings = check_unbounded_copy(c("gets(buf);"))
        assert findings[0].severity == Severity.CRITICAL
        assert findings[0].cwe == 242

    def test_strncpy_clean(self):
        assert check_unbounded_copy(c("strncpy(dst, src, n);")) == []

    def test_name_not_call_clean(self):
        assert check_unbounded_copy(c("int strcpy;")) == []


class TestFormatString:
    def test_variable_format_flagged(self):
        findings = check_format_string(c("printf(user_input);"))
        assert len(findings) == 1
        assert findings[0].cwe == 134

    def test_literal_format_clean(self):
        assert check_format_string(c('printf("%s", x);')) == []

    def test_fprintf_second_arg(self):
        findings = check_format_string(c("fprintf(stderr, fmt);"))
        assert len(findings) == 1

    def test_fprintf_literal_clean(self):
        assert check_format_string(c('fprintf(stderr, "%d", x);')) == []

    def test_snprintf_third_arg(self):
        findings = check_format_string(c("snprintf(buf, n, fmt);"))
        assert len(findings) == 1
        assert check_format_string(c('snprintf(buf, n, "%d", x);')) == []


class TestUncheckedAllocation:
    def test_unchecked_flagged(self):
        text = "void f(void) {\n  char *p = malloc(10);\n  p[0] = 1;\n}\n"
        findings = check_unchecked_allocation(c(text))
        assert len(findings) == 1
        assert findings[0].cwe == 476

    def test_null_check_clean(self):
        text = (
            "void f(void) {\n  char *p = malloc(10);\n"
            "  if (p == NULL) { return; }\n  p[0] = 1;\n}\n"
        )
        assert check_unchecked_allocation(c(text)) == []

    def test_negated_check_clean(self):
        text = "void f(void) {\n  char *p = malloc(4);\n  if (!p) return;\n}\n"
        assert check_unchecked_allocation(c(text)) == []


class TestAllocOverflow:
    def test_multiplication_flagged(self):
        findings = check_multiplication_in_alloc(c("p = malloc(n * size);"))
        assert len(findings) == 1
        assert findings[0].cwe == 190

    def test_constant_clean(self):
        assert check_multiplication_in_alloc(c("p = malloc(64);")) == []


class TestCommandInjection:
    def test_variable_command_flagged(self):
        findings = check_command_injection(c("system(cmd);"))
        assert len(findings) == 1
        assert findings[0].severity == Severity.CRITICAL

    def test_literal_command_clean(self):
        assert check_command_injection(c('system("ls");')) == []


class TestToctou:
    def test_access_then_open(self):
        findings = check_toctou(c("if (access(p, R_OK)) { f = open(p); }"))
        assert len(findings) == 1
        assert findings[0].cwe == 367

    def test_open_only_clean(self):
        assert check_toctou(c("f = open(p);")) == []


class TestWeakRandom:
    def test_rand_near_security_idents(self):
        findings = check_weak_random(c("token = rand();"))
        assert len(findings) == 1

    def test_rand_without_security_context_clean(self):
        assert check_weak_random(c("jitter = rand();")) == []


class TestRunner:
    def test_run_only_for_c_family(self, py_source):
        assert run(py_source) == []

    def test_run_sorted(self):
        text = "void f(void) {\n  system(cmd);\n  strcpy(a, b);\n}\n"
        findings = run(c(text))
        assert [f.line for f in findings] == sorted(f.line for f in findings)

    def test_sample_has_strcpy(self, c_source):
        rules = {f.rule for f in run(c_source)}
        assert "unbounded-copy/strcpy" in rules
