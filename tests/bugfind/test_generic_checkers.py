"""Generic (multi-language) checker tests."""

import pytest

from repro.bugfind.generic_checkers import (
    check_dynamic_eval,
    check_hardcoded_secret,
    check_permissive_mode,
    check_sql_concatenation,
    check_swallowed_exception,
    check_weak_crypto,
    run,
)
from repro.lang import SourceFile


def py(text):
    return SourceFile("t.py", text)


def c(text):
    return SourceFile("t.c", text)


def java(text):
    return SourceFile("T.java", text)


class TestHardcodedSecret:
    def test_password_literal_flagged(self):
        findings = check_hardcoded_secret(py('password = "hunter2!"'))
        assert len(findings) == 1
        assert findings[0].cwe == 798

    def test_password_from_env_clean(self):
        assert check_hardcoded_secret(py("password = os.getenv('PW')")) == []

    def test_short_literal_ignored(self):
        assert check_hardcoded_secret(py('password = ""')) == []

    def test_api_key_flagged(self):
        assert check_hardcoded_secret(py('api_key = "sk-123456"'))


class TestDynamicEval:
    def test_eval_variable_flagged(self):
        findings = check_dynamic_eval(py("eval(user_expr)"))
        assert len(findings) == 1
        assert findings[0].cwe == 95

    def test_eval_literal_clean(self):
        assert check_dynamic_eval(py('eval("1+1")')) == []


class TestSqlConcatenation:
    def test_concat_flagged(self):
        findings = check_sql_concatenation(
            py('q = "SELECT * FROM users WHERE id=" + uid')
        )
        assert len(findings) == 1
        assert findings[0].cwe == 89

    def test_static_query_clean(self):
        assert check_sql_concatenation(py('q = "SELECT 1"')) == []

    def test_non_sql_concat_clean(self):
        assert check_sql_concatenation(py('msg = "hello " + name')) == []


class TestWeakCrypto:
    def test_md5_flagged(self):
        findings = check_weak_crypto(py("digest = md5(data)"))
        assert len(findings) == 1
        assert findings[0].cwe == 327

    def test_string_algorithm_name(self):
        assert check_weak_crypto(java('Cipher.getInstance("DES");'))

    def test_sha256_clean(self):
        assert check_weak_crypto(py("digest = sha256(data)")) == []


class TestPermissiveMode:
    def test_chmod_777(self):
        findings = check_permissive_mode(c("chmod(path, 0777);"))
        assert len(findings) == 1
        assert findings[0].cwe == 732

    def test_chmod_restrictive_clean(self):
        assert check_permissive_mode(c("chmod(path, 0600);")) == []


class TestSwallowedException:
    def test_empty_catch_java(self):
        findings = check_swallowed_exception(
            java("try { x(); } catch (Exception e) {}")
        )
        assert len(findings) == 1

    def test_python_except_pass(self):
        text = "try:\n    x()\nexcept ValueError:\n    pass\n"
        assert len(check_swallowed_exception(py(text))) == 1

    def test_handled_exception_clean(self):
        text = "try:\n    x()\nexcept ValueError:\n    log()\n"
        assert check_swallowed_exception(py(text)) == []


class TestRunner:
    def test_runs_on_all_languages(self, c_source, py_source, java_source):
        for src in (c_source, py_source, java_source):
            run(src)  # must not raise

    def test_sorted_output(self):
        text = 'password = "topsecret"\neval(x)\n'
        findings = run(py(text))
        assert [f.line for f in findings] == sorted(f.line for f in findings)


class TestDeserialization:
    def test_pickle_loads_flagged(self):
        from repro.bugfind.generic_checkers import check_unsafe_deserialization

        findings = check_unsafe_deserialization(py("obj = pickle.loads(blob)"))
        assert len(findings) == 1
        assert findings[0].cwe == 502

    def test_yaml_load_flagged_safe_load_clean(self):
        from repro.bugfind.generic_checkers import check_unsafe_deserialization

        assert check_unsafe_deserialization(py("cfg = yaml.load(t)"))
        assert check_unsafe_deserialization(py("cfg = yaml.safe_load(t)")) == []

    def test_java_read_object(self):
        from repro.bugfind.generic_checkers import check_unsafe_deserialization

        findings = check_unsafe_deserialization(
            java("Object o = in.readObject();")
        )
        assert len(findings) == 1


class TestTempfile:
    def test_mktemp_flagged(self):
        from repro.bugfind.generic_checkers import check_insecure_tempfile

        findings = check_insecure_tempfile(c("char *t = mktemp(tmpl);"))
        assert len(findings) == 1
        assert findings[0].cwe == 377

    def test_tmp_path_literal_flagged(self):
        from repro.bugfind.generic_checkers import check_insecure_tempfile

        assert check_insecure_tempfile(py('path = "/tmp/x.dat"'))

    def test_mkstemp_clean(self):
        from repro.bugfind.generic_checkers import check_insecure_tempfile

        assert check_insecure_tempfile(c("int fd = mkstemp(tmpl);")) == []


class TestAssertValidation:
    def test_assert_on_input_flagged(self):
        from repro.bugfind.generic_checkers import check_assert_validation

        findings = check_assert_validation(py("assert request.size < 10"))
        assert len(findings) == 1
        assert findings[0].cwe == 617

    def test_assert_on_internal_state_clean(self):
        from repro.bugfind.generic_checkers import check_assert_validation

        assert check_assert_validation(py("assert invariant_holds")) == []

    def test_non_python_ignored(self):
        from repro.bugfind.generic_checkers import check_assert_validation

        assert check_assert_validation(java("assert request != null;")) == []
