"""Meta-tool (multi-tool combiner) tests."""

import pytest

from repro.bugfind.findings import Finding, Severity
from repro.bugfind.meta import TOOLS, run_all
from repro.lang import Codebase


def cb(text, path="t.c"):
    return Codebase.from_sources("app", {path: text})


class TestRunAll:
    def test_combines_tools(self):
        text = 'void f(void) {\n  strcpy(a, b);\n  password = "letmein1";\n}\n'
        report = run_all(cb(text))
        tools = {f.tool for f in report.findings}
        assert tools == {"clint", "genlint"}

    def test_per_tool_counts(self):
        text = "void f(void) {\n  strcpy(a, b);\n}\n"
        report = run_all(cb(text))
        assert report.per_tool["clint"] == 1
        assert report.per_tool["genlint"] == 0

    def test_per_cwe_counts(self):
        text = "void f(void) {\n  strcpy(a, b);\n  strcat(a, b);\n}\n"
        report = run_all(cb(text))
        assert report.per_cwe[121] == 2

    def test_per_severity(self):
        text = "void f(void) {\n  gets(buf);\n}\n"
        report = run_all(cb(text))
        assert report.per_severity[Severity.CRITICAL] == 1

    def test_count_at_least(self):
        text = "void f(void) {\n  gets(buf);\n  strcpy(a, b);\n}\n"
        report = run_all(cb(text))
        assert report.count_at_least(Severity.HIGH) == 2
        assert report.count_at_least(Severity.CRITICAL) == 1

    def test_dedup_same_defect(self):
        # sprintf with a variable format triggers both unbounded-copy (121)
        # and format-string (134) — different CWEs, so both survive; but
        # two tools reporting the same (path, line, cwe) collapse.
        text = "void f(void) {\n  sprintf(buf, fmt);\n}\n"
        report = run_all(cb(text))
        keys = [f.key() for f in report.findings]
        assert len(keys) == len(set(keys))

    def test_sorted_by_location(self):
        text = "void f(void) {\n  system(c);\n  gets(b);\n  strcpy(a, b);\n}\n"
        report = run_all(cb(text))
        locations = [(f.path, f.line, f.rule) for f in report.findings]
        assert locations == sorted(locations)

    def test_empty_codebase(self):
        report = run_all(Codebase("empty"))
        assert report.total == 0
        assert report.duplicates_removed == 0

    def test_registry_names_match_modules(self):
        assert set(TOOLS) == {"clint", "genlint", "memlint"}
