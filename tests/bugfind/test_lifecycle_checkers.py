"""Memory-lifecycle checker tests (memlint)."""

import pytest

from repro.bugfind.lifecycle_checkers import run
from repro.lang import SourceFile


def findings_for(body):
    text = f"void f(void) {{\n{body}\n}}\n"
    return run(SourceFile("t.c", text))


def rules(body):
    return [f.rule for f in findings_for(body)]


class TestDoubleFree:
    def test_detected(self):
        assert "double-free" in rules(
            "  char *p = malloc(8);\n  free(p);\n  free(p);"
        )

    def test_free_after_realloc_clean(self):
        body = (
            "  char *p = malloc(8);\n  free(p);\n"
            "  p = malloc(16);\n  free(p);"
        )
        assert "double-free" not in rules(body)

    def test_distinct_pointers_clean(self):
        body = (
            "  char *p = malloc(8);\n  char *q = malloc(8);\n"
            "  free(p);\n  free(q);"
        )
        assert "double-free" not in rules(body)


class TestUseAfterFree:
    def test_index_use_detected(self):
        assert "use-after-free" in rules(
            "  char *p = malloc(8);\n  free(p);\n  p[0] = 1;"
        )

    def test_arrow_use_detected(self):
        assert "use-after-free" in rules(
            "  struct node *p = malloc(32);\n  free(p);\n  p->next = 0;"
        )

    def test_free_argument_itself_not_a_use(self):
        body = "  char *p = malloc(8);\n  free(p);"
        assert "use-after-free" not in rules(body)

    def test_reassignment_clears(self):
        body = (
            "  char *p = malloc(8);\n  free(p);\n"
            "  p = other;\n  p[0] = 1;"
        )
        assert "use-after-free" not in rules(body)


class TestLeak:
    def test_unfreed_allocation_flagged(self):
        assert "memory-leak" in rules("  char *p = malloc(8);\n  p[0] = 1;")

    def test_freed_allocation_clean(self):
        assert "memory-leak" not in rules(
            "  char *p = malloc(8);\n  free(p);"
        )

    def test_leak_reports_alloc_line(self):
        findings = findings_for("  char *p = malloc(8);")
        leak = [f for f in findings if f.rule == "memory-leak"][0]
        assert leak.line == 2


class TestScope:
    def test_non_c_ignored(self, py_source):
        assert run(py_source) == []

    def test_per_function_isolation(self):
        # An alloc in one function and a free in another: the leak fires
        # (flow is per-function), but no double-free/UAF noise appears.
        text = (
            "void a(void) {\n  char *p = malloc(8);\n}\n"
            "void b(char *p) {\n  free(p);\n}\n"
        )
        found = run(SourceFile("t.c", text))
        assert [f.rule for f in found] == ["memory-leak"]

    def test_cwe_mapping(self):
        findings = findings_for(
            "  char *p = malloc(8);\n  free(p);\n  free(p);"
        )
        assert {f.cwe for f in findings} == {415}
