"""Run-report formatting: span aggregation and the telemetry table."""

import pytest

from repro import obs
from repro.obs.report import (
    aggregate_spans,
    format_error_spans,
    format_metrics,
    format_run_report,
    format_span_table,
)
from repro.obs.tracer import Tracer


@pytest.fixture(autouse=True)
def clean_session():
    obs.disable()
    yield
    obs.disable()


def _tracer_with_spans():
    tracer = Tracer()
    with tracer.span("phase"):
        for _ in range(3):
            with tracer.span("analyzer.a"):
                pass
        with tracer.span("analyzer.b"):
            pass
    return tracer


class TestAggregate:
    def test_groups_by_name(self):
        stats = aggregate_spans(_tracer_with_spans().spans)
        by_name = {s.name: s for s in stats}
        assert by_name["analyzer.a"].calls == 3
        assert by_name["analyzer.b"].calls == 1
        assert by_name["phase"].calls == 1

    def test_totals_and_self_time(self):
        stats = aggregate_spans(_tracer_with_spans().spans)
        by_name = {s.name: s for s in stats}
        phase = by_name["phase"]
        children = by_name["analyzer.a"].total + by_name["analyzer.b"].total
        assert phase.self_total == pytest.approx(phase.total - children)
        for s in stats:
            assert s.max >= s.p95 >= 0.0
            assert s.total == pytest.approx(s.mean * s.calls)

    def test_empty_spans(self):
        assert aggregate_spans([]) == []
        assert "no spans" in format_span_table([])


class TestFormat:
    def test_table_lists_every_name(self):
        table = format_span_table(_tracer_with_spans().spans)
        assert "analyzer.a" in table
        assert "analyzer.b" in table
        assert "phase" in table
        assert "self%" in table

    def test_share_column_sums_to_100(self):
        table = format_span_table(_tracer_with_spans().spans)
        shares = [float(line.rsplit(None, 1)[1].rstrip("%"))
                  for line in table.splitlines()[1:]]
        assert sum(shares) == pytest.approx(100.0, abs=0.5)

    def test_metrics_section(self):
        session = obs.configure()
        obs.incr("files_analyzed", 7)
        obs.gauge("apps", 2)
        obs.observe("cv.fold_seconds", 0.25)
        text = format_metrics(session.metrics)
        assert "files_analyzed" in text
        assert "cv.fold_seconds" in text
        # span.* histograms are redundant with the span table
        with obs.span("x"):
            pass
        assert "span.x.seconds" not in format_metrics(session.metrics)

    def test_run_report_headline(self):
        session = obs.configure()
        with obs.span("analysis.cfg"):
            pass
        obs.incr("testbed.files_analyzed")
        obs.disable()
        report = format_run_report(session)
        assert report.startswith("repro telemetry")
        assert "analysis.cfg" in report
        assert "testbed.files_analyzed" in report

    def test_run_report_without_data(self):
        session = obs.configure()
        obs.disable()
        report = format_run_report(session)
        assert "no spans" in report
        assert "no metrics" in report


class TestErrorSection:
    def _session_with_failure(self):
        session = obs.configure()
        with obs.span("testbed.app", app="lighttpd", cached=False):
            pass
        try:
            with obs.span("testbed.app", app="exim", cached=False):
                raise RuntimeError("analyzer exploded")
        except RuntimeError:
            pass
        obs.disable()
        return session

    def test_error_spans_listed_with_attrs(self):
        session = self._session_with_failure()
        text = format_error_spans(session.tracer.spans)
        assert "testbed.app" in text
        assert "RuntimeError" in text
        assert "app=exim" in text
        assert "lighttpd" not in text

    def test_clean_run_has_no_errors_section(self):
        session = obs.configure()
        with obs.span("testbed.app", app="ok"):
            pass
        obs.disable()
        assert format_error_spans(session.tracer.spans) == ""
        assert "errors:" not in format_run_report(session)

    def test_run_report_appends_errors_section(self):
        session = self._session_with_failure()
        report = format_run_report(session)
        assert "errors:" in report
        assert "RuntimeError" in report
        # the section comes after the metrics block
        assert report.index("errors:") > report.index("metrics:")
