"""Tracer, span nesting, facade enable/disable, and JSONL export."""

import json
import time

import pytest

from repro import obs
from repro.obs import NULL_SPAN, SPAN_RECORD_KEYS, Tracer
from repro.obs.export import read_jsonl, trace_lines, write_jsonl


@pytest.fixture(autouse=True)
def clean_session():
    """Every test starts and ends with observability disabled."""
    obs.disable()
    yield
    obs.disable()


class TestTracer:
    def test_span_records_duration(self):
        tracer = Tracer()
        with tracer.span("work"):
            time.sleep(0.002)
        (span,) = tracer.spans
        assert span.name == "work"
        assert span.duration >= 0.002
        assert span.parent_id is None

    def test_nesting_links_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # children finish first
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_self_time_excludes_children(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                time.sleep(0.002)
        assert outer.child_time >= 0.002
        assert outer.self_time == pytest.approx(
            outer.duration - outer.child_time
        )

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id
        assert a.span_id != b.span_id

    def test_attrs_and_set_attr(self):
        tracer = Tracer()
        with tracer.span("op", file="x.c") as span:
            span.set_attr("lines", 10)
        assert span.attrs == {"file": "x.c", "lines": 10}

    def test_exception_marks_error_attr(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (span,) = tracer.spans
        assert span.attrs["error"] == "ValueError"

    def test_spans_named(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("fold"):
                pass
        with tracer.span("other"):
            pass
        assert len(tracer.spans_named("fold")) == 3

    def test_on_finish_callback(self):
        seen = []
        tracer = Tracer(on_finish=seen.append)
        with tracer.span("x"):
            pass
        assert [s.name for s in seen] == ["x"]


class TestFacade:
    def test_disabled_returns_null_span(self):
        assert obs.span("anything", attr=1) is NULL_SPAN
        assert not obs.is_enabled()
        # metric helpers are silent no-ops
        obs.incr("c")
        obs.gauge("g", 1.0)
        obs.observe("h", 2.0)

    def test_null_span_is_inert_context_manager(self):
        with obs.span("x") as span:
            span.set_attr("k", "v")
        assert span is NULL_SPAN
        assert span.duration == 0.0

    def test_configure_enables_and_disable_returns_session(self):
        session = obs.configure()
        assert obs.is_enabled()
        assert obs.active() is session
        with obs.span("op"):
            pass
        obs.incr("count", 2)
        assert obs.disable() is session
        assert not obs.is_enabled()
        assert len(session.tracer.spans) == 1
        assert session.metrics.counters["count"].value == 2

    def test_finished_spans_feed_duration_histograms(self):
        session = obs.configure()
        with obs.span("analysis.cfg"):
            pass
        hist = session.metrics.histograms["span.analysis.cfg.seconds"]
        assert hist.count == 1
        assert hist.values[0] >= 0.0


class TestExport:
    def test_jsonl_schema(self, tmp_path):
        session = obs.configure()
        with obs.span("outer", app="demo"):
            with obs.span("inner"):
                pass
        obs.disable()
        path = str(tmp_path / "trace.jsonl")
        assert write_jsonl(session.tracer, path) == 2
        records = read_jsonl(path)
        assert len(records) == 2
        for record in records:
            assert sorted(record) == sorted(SPAN_RECORD_KEYS)
            assert isinstance(record["name"], str)
            assert isinstance(record["start"], float)
            assert isinstance(record["duration"], float)
            assert isinstance(record["attrs"], dict)
        outer, inner = records  # ordered by start time
        assert outer["name"] == "outer"
        assert outer["parent"] is None
        assert outer["attrs"] == {"app": "demo"}
        assert inner["parent"] == outer["span_id"]

    def test_lines_are_valid_json(self):
        tracer = Tracer()
        with tracer.span("op", obj=object()):
            pass
        (line,) = trace_lines(tracer)
        record = json.loads(line)
        # non-scalar attrs are repr()'d, not dropped
        assert record["attrs"]["obj"].startswith("<object")
