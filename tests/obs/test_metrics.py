"""Counters, gauges, histograms, and the registry snapshot."""

import pytest

from repro.obs.metrics import MetricsRegistry, percentile


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_single_value(self):
        assert percentile([7.0], 95) == 7.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_matches_numpy_linear(self):
        np = pytest.importorskip("numpy")
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        for q in (0, 10, 50, 90, 95, 100):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_unsorted_input(self):
        assert percentile([9.0, 1.0, 5.0], 0) == 1.0
        assert percentile([9.0, 1.0, 5.0], 100) == 9.0


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("files").inc()
        registry.counter("files").inc(4)
        assert registry.counters["files"].value == 5

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("apps").set(3)
        registry.gauge("apps").set(11)
        assert registry.gauges["apps"].value == 11.0

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency")
        for value in range(1, 101):
            hist.observe(float(value))
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["total"] == pytest.approx(5050.0)
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p95"] == pytest.approx(95.05)

    def test_empty_histogram_summary_is_zeroed(self):
        summary = MetricsRegistry().histogram("h").summary()
        assert summary == {"count": 0, "total": 0.0, "mean": 0.0,
                           "min": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}


class TestSnapshot:
    def test_snapshot_shape_and_sorting(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(3.0)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["counters"]["a"] == 2
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_snapshot_is_json_serialisable(self):
        import json

        registry = MetricsRegistry()
        registry.histogram("h").observe(1.0)
        json.dumps(registry.snapshot())
