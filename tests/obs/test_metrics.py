"""Counters, gauges, histograms, and the registry snapshot."""

import pytest

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    percentile,
    prometheus_exposition,
    sanitize_metric_name,
)


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_single_value(self):
        assert percentile([7.0], 95) == 7.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_matches_numpy_linear(self):
        np = pytest.importorskip("numpy")
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        for q in (0, 10, 50, 90, 95, 100):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_unsorted_input(self):
        assert percentile([9.0, 1.0, 5.0], 0) == 1.0
        assert percentile([9.0, 1.0, 5.0], 100) == 9.0


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("files").inc()
        registry.counter("files").inc(4)
        assert registry.counters["files"].value == 5

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("apps").set(3)
        registry.gauge("apps").set(11)
        assert registry.gauges["apps"].value == 11.0

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency")
        for value in range(1, 101):
            hist.observe(float(value))
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["total"] == pytest.approx(5050.0)
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p95"] == pytest.approx(95.05)

    def test_empty_histogram_summary_is_zeroed(self):
        summary = MetricsRegistry().histogram("h").summary()
        assert summary == {"count": 0, "total": 0.0, "mean": 0.0,
                           "min": 0.0, "p50": 0.0, "p95": 0.0,
                           "p99": 0.0, "max": 0.0}


class TestSnapshot:
    def test_snapshot_shape_and_sorting(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(3.0)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["counters"]["a"] == 2
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_snapshot_is_json_serialisable(self):
        import json

        registry = MetricsRegistry()
        registry.histogram("h").observe(1.0)
        json.dumps(registry.snapshot())


class TestServedTrafficEdgeCases:
    """Histogram/counter shapes the serving layer's handler threads hit."""

    def test_empty_histogram_report_renders(self):
        # /metricz can be scraped before any request lands an
        # observation; the report must render the zeroed summary.
        from repro.obs.report import format_metrics

        registry = MetricsRegistry()
        registry.histogram("serve.predict.seconds")
        out = format_metrics(registry)
        assert "serve.predict.seconds" in out
        assert "n=0" in out

    def test_single_sample_p95_is_that_sample(self):
        h = Histogram("serve.analyze.seconds")
        h.observe(0.125)
        summary = h.summary()
        assert summary["p95"] == 0.125
        assert summary["p50"] == 0.125
        assert summary["min"] == summary["max"] == 0.125
        assert summary["count"] == 1

    def test_two_sample_p95_interpolates_between_them(self):
        h = Histogram("h")
        h.observe(1.0)
        h.observe(2.0)
        assert 1.0 < h.summary()["p95"] < 2.0

    def test_concurrent_observe_from_handler_threads(self):
        import threading

        h = Histogram("serve.predict.seconds")
        n_threads, per_thread = 8, 500

        def hammer(value):
            for _ in range(per_thread):
                h.observe(value)

        threads = [threading.Thread(target=hammer, args=(float(i),))
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        summary = h.summary()
        assert summary["count"] == n_threads * per_thread
        assert summary["total"] == per_thread * sum(range(n_threads))

    def test_concurrent_counter_increments_are_not_lost(self):
        import threading

        c = Counter("serve.requests")
        n_threads, per_thread = 8, 2000

        def hammer():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=hammer)
                   for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * per_thread

    def test_summary_during_concurrent_observe_is_consistent(self):
        import threading

        h = Histogram("h")
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                h.observe(1.0)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                summary = h.summary()
                # mean over any consistent prefix of constant values
                # is exactly that constant
                if summary["count"]:
                    assert summary["mean"] == 1.0
                    assert summary["total"] == summary["count"]
        finally:
            stop.set()
            thread.join()

    def test_registry_get_or_create_is_thread_safe(self):
        import threading

        registry = MetricsRegistry()
        instruments = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def create():
            barrier.wait()
            inst = registry.counter("serve.requests")
            with lock:
                instruments.append(inst)

        threads = [threading.Thread(target=create) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(inst is instruments[0] for inst in instruments)


class TestSanitizeMetricName:
    @pytest.mark.parametrize("raw,clean", [
        ("serve.predict.seconds", "serve_predict_seconds"),
        ("already_legal", "already_legal"),
        ("serve.errors.503", "serve_errors_503"),
        ("weird-chars/like these", "weird_chars_like_these"),
        ("1starts_with_digit", "_1starts_with_digit"),
        ("", "_"),
    ])
    def test_coerces_to_prometheus_charset(self, raw, clean):
        assert sanitize_metric_name(raw) == clean

    def test_result_is_always_legal(self):
        import re
        legal = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
        for raw in ("a.b", "9", ".", "é", "x y z", "snake_ok"):
            assert legal.match(sanitize_metric_name(raw))


class TestPrometheusExposition:
    def test_counters_get_total_suffix(self):
        text = prometheus_exposition(
            {"counters": {"serve.requests": 42.0},
             "gauges": {}, "histograms": {}})
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 42" in text

    def test_gauges_keep_their_name(self):
        text = prometheus_exposition(
            {"counters": {}, "gauges": {"queue.depth": 3.5},
             "histograms": {}})
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 3.5" in text

    def test_histogram_exposes_summary_quantiles(self):
        registry = MetricsRegistry()
        for value in (0.01, 0.02, 0.03, 0.04):
            registry.histogram("serve.predict.seconds").observe(value)
        text = prometheus_exposition(registry.snapshot())
        assert "# TYPE repro_serve_predict_seconds summary" in text
        assert 'repro_serve_predict_seconds{quantile="0.5"}' in text
        assert 'repro_serve_predict_seconds{quantile="0.99"}' in text
        assert "repro_serve_predict_seconds_sum 0.1" in text
        assert "repro_serve_predict_seconds_count 4" in text

    def test_zero_sample_histogram_omits_quantiles_keeps_totals(self):
        registry = MetricsRegistry()
        registry.histogram("serve.predict.seconds")  # minted, never fed
        text = prometheus_exposition(registry.snapshot())
        assert "quantile=" not in text
        assert "repro_serve_predict_seconds_sum 0" in text
        assert "repro_serve_predict_seconds_count 0" in text

    def test_exposition_is_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.counter("a").inc(1)
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(0.5)
        snapshot = registry.snapshot()
        assert prometheus_exposition(snapshot) == \
            prometheus_exposition(snapshot)

    def test_every_line_is_comment_or_sample(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(5)
        registry.histogram("serve.predict.seconds").observe(0.01)
        for line in prometheus_exposition(
                registry.snapshot()).strip().splitlines():
            if line.startswith("#"):
                assert line.startswith("# TYPE repro_")
            else:
                name, value = line.rsplit(" ", 1)
                assert name.startswith("repro_")
                float(value)
