"""Trace IDs, traceparent parsing, and thread-local trace scopes."""

import threading

import pytest

from repro.obs.context import (
    current_trace_id,
    format_traceparent,
    new_trace_id,
    parse_traceparent,
    trace_scope,
)


class TestNewTraceId:
    def test_shape(self):
        trace_id = new_trace_id()
        assert len(trace_id) == 32
        assert int(trace_id, 16) != 0
        assert trace_id == trace_id.lower()

    def test_unique(self):
        assert len({new_trace_id() for _ in range(100)}) == 100


class TestParseTraceparent:
    TRACE = "4bf92f3577b34da6a3ce929d0e0e4736"

    def test_valid_header(self):
        value = f"00-{self.TRACE}-00f067aa0ba902b7-01"
        assert parse_traceparent(value) == self.TRACE

    def test_surrounding_whitespace_tolerated(self):
        value = f"  00-{self.TRACE}-00f067aa0ba902b7-01  "
        assert parse_traceparent(value) == self.TRACE

    @pytest.mark.parametrize("bad", [
        None,
        "",
        "garbage",
        "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  # version
        "00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-01",  # short
        "00-" + "0" * 32 + "-00f067aa0ba902b7-01",  # zero trace
        "00-4bf92f3577b34da6a3ce929d0e0e4736-" + "0" * 16 + "-01",  # zero span
        "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",  # upper
    ])
    def test_malformed_rejected(self, bad):
        assert parse_traceparent(bad) is None

    def test_round_trip(self):
        trace_id = new_trace_id()
        assert parse_traceparent(format_traceparent(trace_id, 7)) == trace_id

    def test_default_span_id_is_spec_valid(self):
        # The filler parent-id must not be the forbidden all-zero value.
        trace_id = new_trace_id()
        assert parse_traceparent(format_traceparent(trace_id)) == trace_id


class TestTraceScope:
    def test_unbound_by_default(self):
        assert current_trace_id() is None

    def test_binds_and_restores(self):
        with trace_scope("a" * 32):
            assert current_trace_id() == "a" * 32
        assert current_trace_id() is None

    def test_nesting_restores_outer(self):
        with trace_scope("a" * 32):
            with trace_scope("b" * 32):
                assert current_trace_id() == "b" * 32
            assert current_trace_id() == "a" * 32

    def test_none_clears_temporarily(self):
        with trace_scope("a" * 32):
            with trace_scope(None):
                assert current_trace_id() is None
            assert current_trace_id() == "a" * 32

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with trace_scope("a" * 32):
                raise RuntimeError("boom")
        assert current_trace_id() is None

    def test_binding_is_thread_local(self):
        seen = {}
        ready = threading.Event()
        release = threading.Event()

        def other():
            seen["before"] = current_trace_id()
            with trace_scope("b" * 32):
                ready.set()
                release.wait(timeout=5)
                seen["inside"] = current_trace_id()

        thread = threading.Thread(target=other)
        with trace_scope("a" * 32):
            thread.start()
            assert ready.wait(timeout=5)
            # The other thread's binding must not leak into this one.
            assert current_trace_id() == "a" * 32
            release.set()
        thread.join(timeout=5)
        assert seen["before"] is None
        assert seen["inside"] == "b" * 32
