"""SLO rule loading, validation, and snapshot evaluation."""

import json

import pytest

from repro.obs.slo import (
    SloConfigError,
    SloRule,
    evaluate_slos,
    load_slo_rules,
)


def write_rules(tmp_path, rules, name="slo.json"):
    path = tmp_path / name
    path.write_text(json.dumps({"slo": rules}))
    return str(path)


LATENCY = {"name": "predict-p99", "kind": "latency",
           "histogram": "serve.predict.seconds", "stat": "p99",
           "max_seconds": 0.5}
SHED = {"name": "shed-rate", "kind": "ratio_max",
        "numerator": "serve.shed", "denominator": "serve.requests",
        "max_ratio": 0.01}
CACHE = {"name": "cache-hit", "kind": "ratio_min",
         "numerator": "engine.cache.hits",
         "denominator": ["engine.cache.hits", "engine.cache.misses"],
         "min_ratio": 0.9}
ERRORS = {"name": "error-budget", "kind": "counter_max",
          "counter": "serve.errors", "max_value": 10}


class TestLoading:
    def test_loads_all_rule_kinds_from_json(self, tmp_path):
        path = write_rules(tmp_path, [LATENCY, SHED, CACHE, ERRORS])
        rules = load_slo_rules(path)
        assert [r.name for r in rules] == \
            ["predict-p99", "shed-rate", "cache-hit", "error-budget"]
        assert rules[0].max_seconds == 0.5
        assert rules[1].denominator == ("serve.requests",)
        assert rules[2].denominator == \
            ("engine.cache.hits", "engine.cache.misses")
        assert rules[3].max_value == 10.0

    def test_loads_toml(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "slo.toml"
        path.write_text(
            '[[slo]]\n'
            'name = "predict-p99"\n'
            'kind = "latency"\n'
            'histogram = "serve.predict.seconds"\n'
            'max_seconds = 0.5\n')
        (rule,) = load_slo_rules(str(path))
        assert rule.name == "predict-p99"
        assert rule.stat == "p99"  # default percentile

    @pytest.mark.parametrize("rules,fragment", [
        ([{"kind": "latency"}], "missing required key 'name'"),
        ([{"name": "r"}], "missing required key 'kind'"),
        ([{"name": "r", "kind": "bogus"}], "unknown kind"),
        ([{"name": "r", "kind": "latency", "histogram": "h",
           "stat": "p42", "max_seconds": 1}], "stat must be one of"),
        ([{"name": "r", "kind": "latency", "histogram": "h"}],
         "missing required key 'max_seconds'"),
        ([{"name": "r", "kind": "latency", "histogram": 3,
           "max_seconds": 1}], "wrong type"),
        ([{"name": "r", "kind": "ratio_max", "numerator": "n",
           "denominator": [], "max_ratio": 0.1}],
         "non-empty list of counter names"),
        ([{"name": "r", "kind": "counter_max", "counter": "c"}],
         "missing required key 'max_value'"),
        (["not a table"], "must be a table/object"),
    ])
    def test_malformed_rules_rejected(self, tmp_path, rules, fragment):
        path = write_rules(tmp_path, rules)
        with pytest.raises(SloConfigError, match=fragment):
            load_slo_rules(path)

    def test_duplicate_rule_names_rejected(self, tmp_path):
        path = write_rules(tmp_path, [LATENCY, LATENCY])
        with pytest.raises(SloConfigError, match="duplicate rule names"):
            load_slo_rules(path)

    def test_empty_rule_list_rejected(self, tmp_path):
        path = write_rules(tmp_path, [])
        with pytest.raises(SloConfigError, match="defines no rules"):
            load_slo_rules(path)

    def test_non_slo_document_rejected(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text('{"rules": []}')
        with pytest.raises(SloConfigError, match="'slo' array"):
            load_slo_rules(str(path))

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text("{nope")
        with pytest.raises(SloConfigError, match="invalid JSON"):
            load_slo_rules(str(path))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SloConfigError, match="cannot read"):
            load_slo_rules(str(tmp_path / "absent.json"))


def snapshot(counters=None, histograms=None):
    return {"counters": counters or {}, "gauges": {},
            "histograms": histograms or {}}


class TestEvaluation:
    def test_latency_ok_and_breach(self):
        rule = SloRule(name="p99", kind="latency",
                       histogram="serve.predict.seconds",
                       stat="p99", max_seconds=0.5)
        ok = evaluate_slos([rule], snapshot(histograms={
            "serve.predict.seconds": {"count": 10, "p99": 0.2}}))
        assert ok.ok and not ok.breached
        breach = evaluate_slos([rule], snapshot(histograms={
            "serve.predict.seconds": {"count": 10, "p99": 0.9}}))
        assert not breach.ok
        assert breach.breached == ["p99"]

    def test_latency_no_samples_is_ok(self):
        rule = SloRule(name="p99", kind="latency", histogram="h",
                       stat="p99", max_seconds=0.001)
        report = evaluate_slos([rule], snapshot(histograms={
            "h": {"count": 0, "p99": 0.0}}))
        assert report.ok
        assert report.results[0].value is None
        assert "no samples" in report.results[0].detail

    def test_ratio_max_ok_and_breach(self):
        rule = SloRule(name="shed", kind="ratio_max",
                       numerator="serve.shed",
                       denominator=("serve.requests",), max_ratio=0.1)
        ok = evaluate_slos([rule], snapshot(counters={
            "serve.shed": 1.0, "serve.requests": 100.0}))
        assert ok.ok
        breach = evaluate_slos([rule], snapshot(counters={
            "serve.shed": 50.0, "serve.requests": 100.0}))
        assert breach.breached == ["shed"]

    def test_ratio_min_sums_denominators(self):
        rule = SloRule(name="cache", kind="ratio_min",
                       numerator="hits", denominator=("hits", "misses"),
                       min_ratio=0.9)
        ok = evaluate_slos([rule], snapshot(counters={
            "hits": 95.0, "misses": 5.0}))
        assert ok.ok
        assert ok.results[0].value == pytest.approx(0.95)
        breach = evaluate_slos([rule], snapshot(counters={
            "hits": 5.0, "misses": 5.0}))
        assert not breach.ok

    def test_ratio_zero_denominator_is_ok(self):
        rule = SloRule(name="shed", kind="ratio_max", numerator="n",
                       denominator=("d",), max_ratio=0.0)
        report = evaluate_slos([rule], snapshot())
        assert report.ok
        assert report.results[0].value is None

    def test_counter_max_ok_and_breach(self):
        rule = SloRule(name="errors", kind="counter_max",
                       counter="serve.errors", max_value=10)
        assert evaluate_slos(
            [rule], snapshot(counters={"serve.errors": 10.0})).ok
        report = evaluate_slos(
            [rule], snapshot(counters={"serve.errors": 11.0}))
        assert report.breached == ["errors"]

    def test_report_describe_names_breached_rules(self):
        rules = [
            SloRule(name="errors", kind="counter_max",
                    counter="serve.errors", max_value=0),
            SloRule(name="shed", kind="ratio_max", numerator="s",
                    denominator=("r",), max_ratio=1.0),
        ]
        report = evaluate_slos(rules, snapshot(counters={
            "serve.errors": 3.0, "s": 1.0, "r": 10.0}))
        text = report.describe()
        assert "BREACH" in text
        assert "DEGRADED — breached: errors" in text
        assert "[ok" in text  # the passing rule still listed

    def test_empty_report_is_ok(self):
        report = evaluate_slos([], snapshot())
        assert report.ok
        assert report.describe() == "slo: no rules loaded"
