"""Dashboard rendering (pure) and the monitor polling loop."""

import io

from repro.obs.monitor import render_dashboard, run_monitor
from repro.obs.slo import SloRule


def snapshot(counters=None, histograms=None):
    return {"counters": counters or {}, "gauges": {},
            "histograms": histograms or {}}


SERVING = snapshot(
    counters={"serve.requests": 100.0, "serve.errors": 5.0,
              "serve.shed": 2.0, "engine.extracted": 40.0,
              "engine.cache.hits": 30.0, "engine.cache.misses": 10.0},
    histograms={
        "serve.predict.seconds": {
            "count": 90, "total": 1.8, "mean": 0.02, "min": 0.001,
            "p50": 0.01, "p95": 0.05, "p99": 0.09, "max": 0.2},
        "serve.batch_size": {
            "count": 12, "total": 90.0, "mean": 7.5, "min": 1.0,
            "p50": 8.0, "p95": 16.0, "p99": 16.0, "max": 16.0},
    })


class TestRenderDashboard:
    def test_header_and_request_line(self):
        frame = render_dashboard(SERVING, source="http://x/metricz",
                                 clock=0.0)
        assert frame.startswith("repro monitor — http://x/metricz — ")
        assert "requests  total=100" in frame
        assert "errors=5 (5.0%)" in frame
        assert "shed=2 (2.0%)" in frame

    def test_latency_table_lists_serve_histograms(self):
        frame = render_dashboard(SERVING, clock=0.0)
        assert "latency (ms)" in frame
        assert "/predict" in frame
        assert "10.00" in frame  # p50 in milliseconds
        # non-latency histograms stay out of the table
        assert "/batch_size" not in frame

    def test_rates_derive_from_previous_snapshot(self):
        previous = snapshot(counters={"serve.requests": 40.0})
        frame = render_dashboard(SERVING, previous=previous, elapsed=2.0,
                                 clock=0.0)
        assert "rate=30.0/s" in frame

    def test_first_frame_has_no_rate(self):
        frame = render_dashboard(SERVING, clock=0.0)
        assert "rate=-" in frame

    def test_cache_section(self):
        frame = render_dashboard(SERVING, clock=0.0)
        assert "cache     rows hit=75.0% (30/40)" in frame

    def test_batching_section_only_with_samples(self):
        assert "batching" in render_dashboard(SERVING, clock=0.0)
        assert "batching" not in render_dashboard(snapshot(), clock=0.0)

    def test_slo_section_renders_verdict(self):
        rule = SloRule(name="error-budget", kind="counter_max",
                       counter="serve.errors", max_value=1)
        frame = render_dashboard(SERVING, slo_rules=[rule], clock=0.0)
        assert "slo: DEGRADED — breached: error-budget" in frame

    def test_empty_snapshot_renders(self):
        frame = render_dashboard(snapshot(), clock=0.0)
        assert "requests  total=0" in frame


class TestRunMonitor:
    def test_once_renders_single_frame_without_clearing(self):
        out = io.StringIO()
        code = run_monitor(lambda: SERVING, source="stream", once=True,
                           out=out)
        assert code == 0
        frame = out.getvalue()
        assert frame.count("repro monitor") == 1
        assert "\x1b[2J" not in frame

    def test_max_frames_bounds_the_loop(self):
        out = io.StringIO()
        calls = []

        def fetch():
            calls.append(1)
            return SERVING

        code = run_monitor(fetch, interval=0.0, out=out, clear=False,
                           max_frames=3)
        assert code == 0
        assert len(calls) == 3
        assert out.getvalue().count("repro monitor") == 3

    def test_fetch_failure_renders_error_frame_and_continues(self):
        out = io.StringIO()
        attempts = []

        def fetch():
            attempts.append(1)
            if len(attempts) == 1:
                raise ConnectionError("daemon restarting")
            return SERVING

        code = run_monitor(fetch, interval=0.0, out=out, clear=False,
                           max_frames=2)
        assert code == 0
        text = out.getvalue()
        assert "fetch failed: ConnectionError: daemon restarting" in text
        assert "requests  total=100" in text
