"""The pipeline hot paths actually emit spans and metrics when enabled."""

import pytest

from repro import obs
from repro.bugfind import run_all
from repro.core.features import extract_features
from repro.ml.crossval import cross_validate_classifier
from repro.ml.dataset import Dataset
from repro.ml.logistic import LogisticRegression


@pytest.fixture(autouse=True)
def clean_session():
    obs.disable()
    yield
    obs.disable()


#: Analyzer spans extract_features must emit on any codebase.
ANALYZER_SPANS = {
    "analysis.loc", "analysis.cyclomatic", "analysis.halstead",
    "analysis.maintainability", "analysis.functions",
    "analysis.identifiers", "analysis.cfg", "analysis.dataflow",
    "analysis.callgraph", "surface.rasq", "surface.attack_graph",
    "analysis.bugfind", "analysis.smells", "analysis.oo",
}


class TestExtractFeatures:
    def test_emits_one_span_per_analyzer(self, mixed_codebase):
        session = obs.configure()
        extract_features(mixed_codebase)
        names = {s.name for s in session.tracer.spans}
        assert ANALYZER_SPANS <= names
        (root,) = session.tracer.spans_named("testbed.extract_features")
        assert root.attrs["app"] == "demo"
        assert root.attrs["files"] == len(mixed_codebase)

    def test_analyzer_spans_nest_under_root(self, mixed_codebase):
        session = obs.configure()
        extract_features(mixed_codebase)
        (root,) = session.tracer.spans_named("testbed.extract_features")
        for name in ANALYZER_SPANS:
            for span in session.tracer.spans_named(name):
                assert span.parent_id == root.span_id, name

    def test_counts_files_analyzed(self, mixed_codebase):
        session = obs.configure()
        extract_features(mixed_codebase)
        counter = session.metrics.counters["testbed.files_analyzed"]
        assert counter.value == len(mixed_codebase)

    def test_disabled_records_nothing(self, mixed_codebase):
        row = extract_features(mixed_codebase)
        assert not obs.is_enabled()
        assert row  # still produces the feature vector


class TestBugfind:
    def test_per_tool_spans(self, mixed_codebase):
        session = obs.configure()
        run_all(mixed_codebase)
        names = {s.name for s in session.tracer.spans}
        assert {"bugfind.run_all", "bugfind.clint", "bugfind.genlint",
                "bugfind.memlint"} <= names

    def test_loop_reorder_preserves_report(self, mixed_codebase):
        # tool-major iteration (for spans) must not change the merged
        # report vs the seed's file-major order
        report = run_all(mixed_codebase)
        raw = []
        from repro.bugfind.meta import TOOLS

        for source in mixed_codebase:
            for tool in TOOLS.values():
                raw.extend(tool(source))
        merged = {}
        for finding in raw:
            key = finding.key()
            if key not in merged or finding.severity > merged[key].severity:
                merged[key] = finding
        expected = tuple(sorted(
            merged.values(), key=lambda f: (f.path, f.line, f.rule)
        ))
        assert report.findings == expected


class TestCrossval:
    def test_fold_spans_and_histogram(self):
        rows = [{"a": float(i), "b": float(i % 3)} for i in range(8)]
        labels = [i % 2 for i in range(8)]
        dataset = Dataset.from_rows(rows, labels, name="toy")
        session = obs.configure()
        cross_validate_classifier(
            dataset, lambda: LogisticRegression(max_iter=50), k=2, seed=0
        )
        folds = session.tracer.spans_named("cv.fold")
        assert len(folds) == 2
        assert {s.attrs["fold"] for s in folds} == {0, 1}
        assert folds[0].attrs["dataset"] == "toy"
        hist = session.metrics.histograms["cv.fold_seconds"]
        assert hist.count == 2


class TestCorpus:
    def test_corpus_build_phases(self):
        from repro.synth import build_corpus

        session = obs.configure()
        build_corpus(seed=3, limit=1)
        names = {s.name for s in session.tracer.spans}
        assert {"corpus.build", "corpus.profiles", "corpus.database",
                "corpus.apps", "corpus.histories"} <= names
        assert session.metrics.counters["corpus.apps_generated"].value == 1
