"""Telemetry stream: emit/read round-trip, rotation, replay."""

import json
import threading

import pytest

from repro import obs
from repro.obs.stream import (
    TELEMETRY_VERSION,
    TelemetryStream,
    read_events,
    replay_registry,
    replay_snapshot,
    stream_files,
)


@pytest.fixture(autouse=True)
def clean_session():
    obs.disable()
    yield
    obs.disable()


class TestEmitAndRead:
    def test_round_trip_preserves_events(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        stream = TelemetryStream(path)
        stream.emit("counter", name="serve.requests", delta=1.0)
        stream.emit("gauge", name="queue.depth", value=4.0)
        stream.emit("observe", name="serve.predict.seconds", value=0.01)
        stream.emit("event", name="serve.shed", fields={"retry_after": 1})
        stream.close()
        events = read_events(path)
        assert [e["type"] for e in events] == \
            ["counter", "gauge", "observe", "event"]
        assert events[0]["name"] == "serve.requests"
        assert events[0]["delta"] == 1.0
        assert events[3]["fields"] == {"retry_after": 1}

    def test_every_event_stamps_version_and_timestamp(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        stream = TelemetryStream(path)
        stream.emit("counter", name="x", delta=1.0)
        stream.close()
        (event,) = read_events(path)
        assert event["v"] == TELEMETRY_VERSION
        assert event["ts"] > 0

    def test_each_line_is_standalone_json(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        stream = TelemetryStream(path)
        for i in range(5):
            stream.emit("counter", name="x", delta=float(i))
        stream.close()
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 5
        for line in lines:
            json.loads(line)

    def test_torn_and_garbage_lines_are_skipped(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        stream = TelemetryStream(path)
        stream.emit("counter", name="good", delta=1.0)
        stream.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"v": 1, "ts": 0, "type": "counter", "na')  # torn
        events = read_events(path)
        assert len(events) == 1
        assert events[0]["name"] == "good"

    def test_emit_survives_unwritable_path(self, tmp_path):
        path = str(tmp_path / "gone" / "deeper" / "stream.jsonl")
        stream = TelemetryStream(path)
        stream.emit("counter", name="x", delta=1.0)  # must not raise
        stream.close()


class TestRotation:
    def test_rotates_before_exceeding_max_bytes(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        stream = TelemetryStream(path, max_bytes=200, keep=3)
        for i in range(20):
            stream.emit("counter", name="metric", delta=float(i))
        stream.close()
        files = stream_files(path)
        assert len(files) > 1
        assert files[-1] == path
        import os
        for part in files:
            assert os.path.getsize(part) <= 200

    def test_read_events_reassembles_oldest_first(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        stream = TelemetryStream(path, max_bytes=200, keep=10)
        for i in range(20):
            stream.emit("counter", name="metric", delta=float(i))
        stream.close()
        deltas = [e["delta"] for e in read_events(path)]
        assert deltas == [float(i) for i in range(20)]

    def test_keep_bounds_generations(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        stream = TelemetryStream(path, max_bytes=120, keep=2)
        for i in range(60):
            stream.emit("counter", name="metric", delta=float(i))
        stream.close()
        assert len(stream_files(path)) <= 3  # live + keep generations

    def test_max_bytes_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            TelemetryStream(str(tmp_path / "s.jsonl"), max_bytes=0)


class TestReplay:
    def test_replay_reaccumulates_counters_and_histograms(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        stream = TelemetryStream(path)
        for _ in range(3):
            stream.emit("counter", name="serve.requests", delta=1.0)
        stream.emit("gauge", name="queue.depth", value=2.0)
        stream.emit("gauge", name="queue.depth", value=7.0)
        for value in (0.01, 0.02, 0.03):
            stream.emit("observe", name="serve.predict.seconds", value=value)
        stream.close()
        snapshot = replay_snapshot(path)
        assert snapshot["counters"]["serve.requests"] == 3.0
        assert snapshot["gauges"]["queue.depth"] == 7.0
        summary = snapshot["histograms"]["serve.predict.seconds"]
        assert summary["count"] == 3
        assert summary["max"] == pytest.approx(0.03)

    def test_span_events_refill_duration_histograms(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        session = obs.configure(stream_path=path)
        with obs.span("analysis.cfg"):
            pass
        obs.disable()
        registry = replay_registry(read_events(path))
        snapshot = registry.snapshot()
        assert snapshot["histograms"]["span.analysis.cfg.seconds"][
            "count"] == 1
        assert session.metrics.snapshot()["histograms"][
            "span.analysis.cfg.seconds"]["count"] == 1

    def test_malformed_events_are_skipped(self):
        events = [
            {"type": "counter", "name": "good", "delta": 2.0},
            {"type": "counter", "name": "bad"},  # no delta
            {"type": "observe", "name": "h", "value": "not-a-number"},
            {"type": "span", "span": {"name": "s"}},  # no duration
        ]
        snapshot = replay_registry(events).snapshot()
        assert snapshot["counters"] == {"good": 2.0}

    def test_replayed_totals_match_live_under_concurrent_increments(
            self, tmp_path):
        """The counter-delta contract: N threads incrementing through
        the facade must replay to exactly the live total."""
        path = str(tmp_path / "stream.jsonl")
        session = obs.configure(stream_path=path)
        threads = 8
        per_thread = 50
        barrier = threading.Barrier(threads)

        def worker():
            barrier.wait()
            for _ in range(per_thread):
                obs.incr("serve.requests")

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        live = session.metrics.snapshot()["counters"]["serve.requests"]
        obs.disable()
        replayed = replay_snapshot(path)["counters"]["serve.requests"]
        assert live == threads * per_thread
        assert replayed == live


class TestFacadeStreaming:
    def test_facade_writes_all_event_kinds(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        obs.configure(stream_path=path)
        obs.incr("c", 2.0)
        obs.gauge("g", 1.5)
        obs.observe("h", 0.25)
        obs.event("e", detail="x")
        with obs.span("work"):
            pass
        obs.disable()
        kinds = sorted(e["type"] for e in read_events(path))
        assert kinds == ["counter", "event", "gauge", "observe", "span"]

    def test_event_is_stream_only(self, tmp_path):
        path = str(tmp_path / "stream.jsonl")
        session = obs.configure(stream_path=path)
        obs.event("engine.pool_rebuild", suspects=["app"])
        snapshot = session.metrics.snapshot()
        obs.disable()
        assert snapshot["counters"] == {}
        (event,) = read_events(path)
        assert event["fields"] == {"suspects": ["app"]}

    def test_no_stream_means_no_file(self, tmp_path):
        obs.configure()
        obs.incr("c")
        obs.event("e")
        obs.disable()
        assert list(tmp_path.iterdir()) == []
