"""CVE feed JSON import/export tests."""

import json

import pytest

from repro.cve import io as cve_io
from repro.cve.cvss import CvssV3
from repro.cve.database import CVEDatabase
from repro.cve.records import CVERecord

RCE = CvssV3.parse("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H")


def sample_db():
    db = CVEDatabase()
    db.add(CVERecord("CVE-2014-10001", "nginx", 100, RCE, 121, "overflow"))
    db.add(CVERecord("CVE-2016-10002", "nginx", 900, RCE, 89))
    db.add(CVERecord("CVE-2015-10003", "redis", 500, RCE, 78))
    return db


class TestExport:
    def test_document_shape(self):
        doc = cve_io.to_document(sample_db())
        assert doc["format"] == "repro-cve-feed"
        assert doc["itemCount"] == 3
        item = doc["items"][0]
        assert item["cve"]["id"].startswith("CVE-")
        assert item["impact"]["baseMetricV3"]["baseScore"] == 9.8
        assert item["weakness"]["cweId"].startswith("CWE-")

    def test_dump_to_path(self, tmp_path):
        path = str(tmp_path / "feed.json")
        cve_io.dump(sample_db(), path)
        assert json.load(open(path))["itemCount"] == 3


class TestRoundtrip:
    def test_roundtrip_preserves_everything(self):
        original = sample_db()
        restored = cve_io.loads(cve_io.dumps(original))
        assert restored.totals() == original.totals()
        for app in original.apps:
            old = original.records_for(app)
            new = restored.records_for(app)
            assert [(r.cve_id, r.day, r.cwe_id, r.cvss) for r in old] == [
                (r.cve_id, r.day, r.cwe_id, r.cvss) for r in new
            ]

    def test_roundtrip_description(self):
        restored = cve_io.loads(cve_io.dumps(sample_db()))
        record = restored.records_for("nginx")[0]
        assert record.description == "overflow"

    def test_load_from_path(self, tmp_path):
        path = str(tmp_path / "feed.json")
        cve_io.dump(sample_db(), path)
        assert cve_io.load(path).totals() == (2, 3)


class TestValidation:
    def base_doc(self):
        return cve_io.to_document(sample_db())

    def test_wrong_format(self):
        doc = self.base_doc()
        doc["format"] = "something-else"
        with pytest.raises(cve_io.CveFeedError, match="not a"):
            cve_io.from_document(doc)

    def test_wrong_version(self):
        doc = self.base_doc()
        doc["version"] = 99
        with pytest.raises(cve_io.CveFeedError, match="version"):
            cve_io.from_document(doc)

    def test_item_count_mismatch(self):
        doc = self.base_doc()
        doc["itemCount"] = 5
        with pytest.raises(cve_io.CveFeedError, match="itemCount"):
            cve_io.from_document(doc)

    def test_tampered_score_rejected(self):
        doc = self.base_doc()
        doc["items"][0]["impact"]["baseMetricV3"]["baseScore"] = 1.0
        with pytest.raises(cve_io.CveFeedError, match="recomputed"):
            cve_io.from_document(doc)

    def test_bad_vector_rejected(self):
        doc = self.base_doc()
        doc["items"][0]["impact"]["baseMetricV3"]["vectorString"] = "garbage"
        with pytest.raises(cve_io.CveFeedError, match="item 0"):
            cve_io.from_document(doc)

    def test_bad_cwe_rejected(self):
        doc = self.base_doc()
        doc["items"][0]["weakness"]["cweId"] = "WEAK-121"
        with pytest.raises(cve_io.CveFeedError, match="CWE"):
            cve_io.from_document(doc)

    def test_missing_field_rejected(self):
        doc = self.base_doc()
        del doc["items"][0]["product"]
        with pytest.raises(cve_io.CveFeedError, match="item 0"):
            cve_io.from_document(doc)

    def test_invalid_json(self):
        with pytest.raises(cve_io.CveFeedError, match="invalid JSON"):
            cve_io.loads("{not json")

    def test_synthetic_corpus_roundtrip(self, small_corpus):
        text = cve_io.dumps(small_corpus.database)
        restored = cve_io.loads(text)
        assert restored.totals() == small_corpus.database.totals()
        assert restored.select_converging() == \
            small_corpus.database.select_converging()
