"""Wang-style CVSS aggregation baseline tests."""

import pytest

from repro.cve.aggregate import rank_apps, score_app
from repro.cve.cvss import CvssV3
from repro.cve.database import CVEDatabase
from repro.cve.records import CVERecord

RCE = CvssV3.parse("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H")  # 9.8
LOW = CvssV3.parse("CVSS:3.0/AV:P/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N")  # 1.6


def db_with(app_scores):
    db = CVEDatabase()
    n = 0
    for app, vectors in app_scores.items():
        for v in vectors:
            n += 1
            db.add(CVERecord(f"CVE-2015-{10000+n}", app, n, v, 121))
    return db


class TestScoreApp:
    def test_empty_app(self):
        s = score_app(CVEDatabase(), "ghost")
        assert s.n_reports == 0
        assert s.union_score == 0.0
        assert s.mean_score == 0.0

    def test_sums_and_means(self):
        db = db_with({"a": [RCE, LOW]})
        s = score_app(db, "a")
        assert s.n_reports == 2
        assert s.sum_score == pytest.approx(9.8 + 1.6)
        assert s.mean_score == pytest.approx((9.8 + 1.6) / 2)

    def test_union_score_formula(self):
        db = db_with({"a": [RCE, LOW]})
        s = score_app(db, "a")
        expected = 1.0 - (1 - 0.98) * (1 - 0.16)
        assert s.union_score == pytest.approx(expected)

    def test_union_monotone_in_reports(self):
        one = score_app(db_with({"a": [LOW]}), "a")
        two = score_app(db_with({"a": [LOW, LOW]}), "a")
        assert two.union_score > one.union_score


class TestRanking:
    def test_riskier_first(self):
        db = db_with({"risky": [RCE, RCE, RCE], "mild": [LOW]})
        ranked = rank_apps(db, ["mild", "risky"])
        assert [s.app for s in ranked] == ["risky", "mild"]

    def test_rank_key_uses_volume(self):
        many_low = score_app(db_with({"a": [LOW] * 30}), "a")
        one_high = score_app(db_with({"b": [RCE]}), "b")
        # Both orderings are defensible; the key must at least be finite
        # and monotone in its inputs.
        assert many_low.risk_rank_key > 0
        assert one_high.risk_rank_key > 0
