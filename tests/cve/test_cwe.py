"""CWE taxonomy tests."""

import pytest

from repro.cve import cwe


class TestLookup:
    def test_get_known(self):
        entry = cwe.get(121)
        assert entry.name == "Stack-based Buffer Overflow"
        assert entry.category == "memory"

    def test_get_unknown_raises(self):
        with pytest.raises(cwe.UnknownCweError):
            cwe.get(99999)

    def test_exists(self):
        assert cwe.exists(121)
        assert not cwe.exists(99999)

    def test_all_ids_sorted(self):
        assert list(cwe.ALL_CWE_IDS) == sorted(cwe.ALL_CWE_IDS)


class TestHierarchy:
    def test_ancestors_chain(self):
        # 121 (stack overflow) -> 120 (unchecked copy) -> 119 (buffer ops)
        assert cwe.ancestors(121) == [120, 119]

    def test_root_has_no_ancestors(self):
        assert cwe.ancestors(119) == []

    def test_is_a_reflexive(self):
        assert cwe.is_a(121, 121)

    def test_is_a_transitive(self):
        assert cwe.is_a(121, 119)

    def test_is_a_negative(self):
        assert not cwe.is_a(119, 121)  # parent is not a child
        assert not cwe.is_a(89, 119)

    def test_parents_exist(self):
        for cwe_id in cwe.ALL_CWE_IDS:
            parent = cwe.get(cwe_id).parent
            assert parent is None or cwe.exists(parent)

    def test_no_cycles(self):
        for cwe_id in cwe.ALL_CWE_IDS:
            chain = cwe.ancestors(cwe_id)
            assert cwe_id not in chain
            assert len(chain) == len(set(chain))


class TestCategories:
    def test_category_of(self):
        assert cwe.category_of(89) == "injection"
        assert cwe.category_of(798) == "crypto"

    def test_in_category(self):
        memory = cwe.in_category("memory")
        assert 121 in memory and 89 not in memory

    def test_in_category_unknown(self):
        with pytest.raises(cwe.UnknownCweError):
            cwe.in_category("nonsense")

    def test_children_share_parent_category(self):
        # The curated hierarchy keeps children in their parent's bucket
        # except where the taxonomy genuinely crosses (numeric is its own).
        for cwe_id in cwe.ALL_CWE_IDS:
            entry = cwe.get(cwe_id)
            if entry.parent is not None:
                parent = cwe.get(entry.parent)
                assert entry.category == parent.category

    def test_every_category_non_empty(self):
        for category in cwe.CATEGORIES:
            assert cwe.in_category(category)
