"""CVE record and database tests."""

import pytest

from repro.cve.cvss import CvssV3
from repro.cve.database import CVEDatabase
from repro.cve.records import CVERecord, InvalidCveError

RCE = CvssV3.parse("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H")  # 9.8
LOCAL = CvssV3.parse("CVSS:3.0/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:N/A:N")  # 5.5


def record(cve_id="CVE-2015-10001", app="nginx", day=0, cvss=RCE, cwe=121):
    return CVERecord(cve_id=cve_id, app=app, day=day, cvss=cvss, cwe_id=cwe)


class TestRecord:
    def test_valid_record(self):
        r = record()
        assert r.year == 2015
        assert r.score == pytest.approx(9.8)
        assert r.severity == "CRITICAL"
        assert r.category == "memory"

    @pytest.mark.parametrize(
        "bad_id", ["CVE-15-0001", "cve-2015-10001", "CVE-2015-1", "2015-10001"]
    )
    def test_malformed_id(self, bad_id):
        with pytest.raises(InvalidCveError):
            record(cve_id=bad_id)

    def test_empty_app(self):
        with pytest.raises(InvalidCveError):
            record(app="")

    def test_negative_day(self):
        with pytest.raises(InvalidCveError):
            record(day=-1)

    def test_unknown_cwe(self):
        with pytest.raises(InvalidCveError):
            record(cwe=99999)


class TestDatabase:
    def build(self):
        db = CVEDatabase()
        db.add(record("CVE-2010-10000", day=0))
        db.add(record("CVE-2013-10001", day=1200, cvss=LOCAL, cwe=89))
        db.add(record("CVE-2017-10002", day=2600))
        db.add(record("CVE-2016-10003", app="redis", day=2000, cwe=78))
        return db

    def test_len_and_apps(self):
        db = self.build()
        assert len(db) == 4
        assert db.apps == ["nginx", "redis"]

    def test_duplicate_id_rejected(self):
        db = self.build()
        with pytest.raises(ValueError, match="duplicate"):
            db.add(record("CVE-2010-10000", day=5))

    def test_records_ordered_by_day(self):
        db = self.build()
        days = [r.day for r in db.records_for("nginx")]
        assert days == sorted(days)

    def test_history_years(self):
        db = self.build()
        assert db.history_years("nginx") == pytest.approx(2600 / 365.25)
        assert db.history_years("redis") == 0.0  # single report

    def test_history_missing_app(self):
        assert self.build().history_years("nope") == 0.0

    def test_select_converging(self):
        db = self.build()
        assert db.select_converging(min_years=5.0) == ["nginx"]

    def test_summary_counts(self):
        db = self.build()
        s = db.summary("nginx")
        assert s.n_total == 3
        assert s.n_high_severity == 2  # two 9.8s; 5.5 is not > 7
        assert s.n_network == 2
        assert s.n_by_category == {"memory": 2, "injection": 1}
        assert s.max_score == pytest.approx(9.8)

    def test_summary_cwe_descendants(self):
        db = self.build()
        s = db.summary("nginx")
        assert s.count_cwe(121, include_descendants=False) == 2
        # 121 descends from 119, so counting 119 with descendants sees them.
        assert s.count_cwe(119) == 2

    def test_totals(self):
        assert self.build().totals() == (2, 4)

    def test_empty_summary(self):
        s = CVEDatabase().summary("ghost")
        assert s.n_total == 0
        assert s.mean_score == 0.0
