"""CVSS v2 tests: reference scores, parsing, conversion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cve.cvss import CvssError
from repro.cve.cvss2 import CvssV2, v2_to_v3

REFERENCE_V2 = [
    ("AV:N/AC:L/Au:N/C:P/I:P/A:P", 7.5),
    ("AV:N/AC:L/Au:N/C:C/I:C/A:C", 10.0),
    ("AV:N/AC:M/Au:N/C:N/I:P/A:N", 4.3),  # classic XSS
    ("AV:L/AC:L/Au:N/C:C/I:C/A:C", 7.2),
    ("AV:N/AC:L/Au:N/C:N/I:N/A:N", 0.0),
    ("AV:N/AC:L/Au:N/C:P/I:N/A:N", 5.0),
    # 1.176*(0.6*2.8628 + 0.4*1.2443 - 1.5) = 0.84 -> 0.8
    ("AV:L/AC:H/Au:M/C:P/I:N/A:N", 0.8),
]


class TestReferenceScores:
    @pytest.mark.parametrize("vector,expected", REFERENCE_V2)
    def test_base_score(self, vector, expected):
        assert CvssV2.parse(vector).base_score == pytest.approx(expected)

    def test_temporal(self):
        v = CvssV2.parse("AV:N/AC:L/Au:N/C:P/I:P/A:P/E:POC/RL:OF/RC:C")
        # 7.5 * 0.9 * 0.87 * 1.0 = 5.8725 -> 5.9
        assert v.temporal_score == pytest.approx(5.9)

    def test_temporal_nd_equals_base(self):
        v = CvssV2.parse(REFERENCE_V2[0][0])
        assert v.temporal_score == v.base_score


class TestParsing:
    def test_parenthesised(self):
        assert CvssV2.parse("(AV:N/AC:L/Au:N/C:P/I:P/A:P)").base_score == 7.5

    def test_nvd_prefix(self):
        assert CvssV2.parse("CVSS2#AV:N/AC:L/Au:N/C:P/I:P/A:P").base_score == 7.5

    def test_roundtrip(self):
        vec = "AV:A/AC:M/Au:S/C:C/I:P/A:N"
        assert CvssV2.parse(vec).vector() == vec

    def test_missing_metric(self):
        with pytest.raises(CvssError, match="missing"):
            CvssV2.parse("AV:N/AC:L/Au:N/C:P/I:P")

    def test_bad_value(self):
        with pytest.raises(CvssError, match="invalid v2"):
            CvssV2.parse("AV:X/AC:L/Au:N/C:P/I:P/A:P")

    def test_duplicate(self):
        with pytest.raises(CvssError, match="duplicate"):
            CvssV2.parse("AV:N/AV:L/AC:L/Au:N/C:P/I:P/A:P")


class TestSeverity:
    @pytest.mark.parametrize(
        "vector,band",
        [
            ("AV:N/AC:L/Au:N/C:C/I:C/A:C", "HIGH"),
            ("AV:N/AC:M/Au:N/C:N/I:P/A:N", "MEDIUM"),
            ("AV:L/AC:H/Au:M/C:P/I:N/A:N", "LOW"),
        ],
    )
    def test_bands(self, vector, band):
        assert CvssV2.parse(vector).severity == band


class TestConversion:
    def test_xss_maps_to_ui_required(self):
        v3 = v2_to_v3(CvssV2.parse("AV:N/AC:M/Au:N/C:N/I:P/A:N"))
        assert v3.user_interaction == "R"
        assert v3.integrity == "L"

    def test_complete_maps_to_high(self):
        v3 = v2_to_v3(CvssV2.parse("AV:N/AC:L/Au:N/C:C/I:C/A:C"))
        assert (v3.confidentiality, v3.integrity, v3.availability) == (
            "H", "H", "H"
        )
        assert v3.base_score == pytest.approx(9.8)

    def test_authentication_maps_to_privileges(self):
        v3 = v2_to_v3(CvssV2.parse("AV:N/AC:L/Au:S/C:P/I:N/A:N"))
        assert v3.privileges_required == "L"

    def test_conversion_preserves_ordering(self):
        low = CvssV2.parse("AV:L/AC:H/Au:M/C:P/I:N/A:N")
        high = CvssV2.parse("AV:N/AC:L/Au:N/C:C/I:C/A:C")
        assert v2_to_v3(high).base_score > v2_to_v3(low).base_score


@st.composite
def v2_vectors(draw):
    return CvssV2(
        access_vector=draw(st.sampled_from("NAL")),
        access_complexity=draw(st.sampled_from("LMH")),
        authentication=draw(st.sampled_from("NSM")),
        confidentiality=draw(st.sampled_from("CPN")),
        integrity=draw(st.sampled_from("CPN")),
        availability=draw(st.sampled_from("CPN")),
    )


@settings(max_examples=200)
@given(v2_vectors())
def test_v2_score_in_range(v):
    assert 0.0 <= v.base_score <= 10.0


@settings(max_examples=200)
@given(v2_vectors())
def test_v2_zero_iff_no_impact(v):
    no_impact = (v.confidentiality, v.integrity, v.availability) == ("N",) * 3
    assert (v.base_score == 0.0) == no_impact


@settings(max_examples=100)
@given(v2_vectors())
def test_v2_to_v3_always_valid(v):
    v3 = v2_to_v3(v)
    assert 0.0 <= v3.base_score <= 10.0
