"""Vulnerability-history trend tests."""

import pytest

from repro.cve.cvss import CvssV3
from repro.cve.database import CVEDatabase
from repro.cve.records import CVERecord
from repro.cve.trends import (
    analyse,
    rank_by_maturity,
    select_converging,
    yearly_counts,
)

RCE = CvssV3.parse("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H")


def db_with_days(app_days):
    db = CVEDatabase()
    n = 0
    for app, days in app_days.items():
        for day in days:
            n += 1
            db.add(CVERecord(f"CVE-2015-{10000+n}", app, day, RCE, 121))
    return db


def spread(start, end, count):
    if count == 1:
        return [start]
    step = (end - start) / (count - 1)
    return [int(start + i * step) for i in range(count)]


class TestYearlyCounts:
    def test_buckets(self):
        db = db_with_days({"a": [0, 100, 400, 800]})
        counts = yearly_counts(db.records_for("a"))
        assert counts == [(0, 2), (1, 1), (2, 1)]

    def test_gap_years_zero(self):
        db = db_with_days({"a": [0, 1200]})
        counts = yearly_counts(db.records_for("a"))
        assert counts == [(0, 1), (1, 0), (2, 0), (3, 1)]

    def test_empty(self):
        assert yearly_counts([]) == []


class TestAnalyse:
    def test_flat_history_converging(self):
        db = db_with_days({"a": spread(0, 3650, 20)})  # 10 years, uniform
        trend = analyse(db, "a")
        assert trend.span_years == pytest.approx(10.0, abs=0.1)
        assert trend.is_converging
        assert abs(trend.rate_trend) < 0.25

    def test_accelerating_history_not_converging(self):
        # Counts doubling every year: clearly still ramping up.
        days = []
        day = 0
        for year, count in enumerate([1, 2, 4, 8, 16, 32]):
            for i in range(count):
                days.append(int(year * 366 + i * 10))
        db = db_with_days({"a": days})
        trend = analyse(db, "a")
        assert trend.rate_trend > 0.25
        assert not trend.is_converging

    def test_short_history_not_converging(self):
        db = db_with_days({"a": spread(0, 700, 6)})  # < 2 years
        assert not analyse(db, "a").is_converging

    def test_decaying_history_front_loaded(self):
        days = spread(0, 365, 15) + spread(2000, 3650, 3)
        db = db_with_days({"a": days})
        trend = analyse(db, "a")
        assert trend.late_share < 0.5
        assert trend.maturity_index > 0.5

    def test_empty_app(self):
        trend = analyse(CVEDatabase(), "ghost")
        assert trend.n_reports == 0
        assert not trend.is_converging

    def test_mean_rate(self):
        db = db_with_days({"a": spread(0, 3652, 30)})
        assert analyse(db, "a").mean_rate == pytest.approx(3.0, abs=0.1)


class TestSelection:
    def test_select_converging_subset_of_span_rule(self, small_corpus):
        db = small_corpus.database
        trend_based = set(select_converging(db))
        span_based = set(db.select_converging())
        assert trend_based <= span_based
        assert trend_based  # synthetic corpus is uniform-rate: most pass

    def test_rank_by_maturity_sorted(self, small_corpus):
        trends = rank_by_maturity(small_corpus.database)
        indices = [t.maturity_index for t in trends]
        assert indices == sorted(indices, reverse=True)
        assert len(trends) == 164
