"""CVSS v3.0 tests: reference scores, parsing, and invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cve.cvss import CvssError, CvssV3, severity_rating

# Reference base scores computed per the v3.0 specification equations and
# cross-checked against the FIRST calculator for well-known CVEs.
REFERENCE = [
    ("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", 9.8),  # classic RCE
    ("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H", 10.0),
    ("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N", 7.5),  # Heartbleed-like
    ("CVSS:3.0/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:N/A:N", 5.5),
    ("CVSS:3.0/AV:N/AC:H/PR:N/UI:R/S:U/C:L/I:N/A:N", 3.1),
    ("CVSS:3.0/AV:P/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N", 1.6),
    ("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N", 0.0),
    ("CVSS:3.0/AV:L/AC:H/PR:H/UI:R/S:C/C:H/I:H/A:H", 7.2),
    # Exploitability 8.22*0.62*0.77*0.62*0.85 = 2.0681; impact
    # 6.42*(1-0.78^3) = 3.3734; roundup(5.4414) = 5.5.
    ("CVSS:3.0/AV:A/AC:L/PR:L/UI:N/S:U/C:L/I:L/A:L", 5.5),
]


class TestReferenceScores:
    @pytest.mark.parametrize("vector,expected", REFERENCE)
    def test_base_score(self, vector, expected):
        assert CvssV3.parse(vector).base_score == pytest.approx(expected)

    def test_temporal_with_poc_maturity(self):
        v = CvssV3.parse("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H/E:P")
        assert v.temporal_score == pytest.approx(9.3)

    def test_temporal_undefined_equals_base(self):
        v = CvssV3.parse(REFERENCE[0][0])
        assert v.temporal_score == v.base_score


class TestParsing:
    def test_roundtrip(self):
        vector = "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"
        assert CvssV3.parse(vector).vector() == vector

    def test_roundtrip_with_maturity(self):
        vector = "CVSS:3.0/AV:L/AC:H/PR:L/UI:R/S:C/C:L/I:L/A:N/E:F"
        assert CvssV3.parse(vector).vector() == vector

    def test_missing_metric_rejected(self):
        with pytest.raises(CvssError, match="missing"):
            CvssV3.parse("CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H")

    def test_duplicate_metric_rejected(self):
        with pytest.raises(CvssError, match="duplicate"):
            CvssV3.parse("CVSS:3.0/AV:N/AV:L/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H")

    def test_bad_prefix_rejected(self):
        with pytest.raises(CvssError):
            CvssV3.parse("CVSS:2.0/AV:N/AC:L/Au:N/C:P/I:P/A:P")

    def test_bad_value_rejected(self):
        with pytest.raises(CvssError, match="invalid AV"):
            CvssV3.parse("CVSS:3.0/AV:Z/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H")

    def test_malformed_metric_rejected(self):
        with pytest.raises(CvssError, match="malformed"):
            CvssV3.parse("CVSS:3.0/AVN/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H")

    def test_constructor_validation(self):
        with pytest.raises(CvssError):
            CvssV3("N", "L", "N", "N", "X", "H", "H", "H")  # bad scope


class TestSeverityBands:
    @pytest.mark.parametrize(
        "score,band",
        [(0.0, "NONE"), (0.1, "LOW"), (3.9, "LOW"), (4.0, "MEDIUM"),
         (6.9, "MEDIUM"), (7.0, "HIGH"), (8.9, "HIGH"), (9.0, "CRITICAL"),
         (10.0, "CRITICAL")],
    )
    def test_bands(self, score, band):
        assert severity_rating(score) == band

    def test_out_of_range(self):
        with pytest.raises(CvssError):
            severity_rating(10.1)
        with pytest.raises(CvssError):
            severity_rating(-0.1)


class TestHelpers:
    def test_is_network(self):
        assert CvssV3.parse(REFERENCE[0][0]).is_network
        assert not CvssV3.parse(REFERENCE[3][0]).is_network

    def test_is_high_severity(self):
        assert CvssV3.parse(REFERENCE[0][0]).is_high_severity  # 9.8
        assert not CvssV3.parse(REFERENCE[3][0]).is_high_severity  # 5.5
        # exactly 7.5 > 7
        assert CvssV3.parse(REFERENCE[2][0]).is_high_severity


_metric = st.sampled_from


@st.composite
def vectors(draw):
    return CvssV3(
        attack_vector=draw(_metric("NALP")),
        attack_complexity=draw(_metric("LH")),
        privileges_required=draw(_metric("NLH")),
        user_interaction=draw(_metric("NR")),
        scope=draw(_metric("UC")),
        confidentiality=draw(_metric("HLN")),
        integrity=draw(_metric("HLN")),
        availability=draw(_metric("HLN")),
        exploit_maturity=draw(_metric("XHFPU")),
    )


@settings(max_examples=200)
@given(vectors())
def test_score_in_range(v):
    assert 0.0 <= v.base_score <= 10.0


@settings(max_examples=200)
@given(vectors())
def test_score_one_decimal(v):
    assert round(v.base_score * 10) == pytest.approx(v.base_score * 10)


@settings(max_examples=200)
@given(vectors())
def test_temporal_never_exceeds_base(v):
    assert v.temporal_score <= v.base_score + 1e-9


@settings(max_examples=200)
@given(vectors())
def test_zero_iff_no_impact(v):
    no_impact = (v.confidentiality, v.integrity, v.availability) == ("N",) * 3
    assert (v.base_score == 0.0) == no_impact


@settings(max_examples=100)
@given(vectors())
def test_parse_vector_roundtrip(v):
    assert CvssV3.parse(v.vector()) == v


@settings(max_examples=100)
@given(vectors())
def test_network_av_dominates_physical(v):
    """Changing AV from P to N never lowers the score (monotonicity)."""
    physical = CvssV3(**{**v.__dict__, "attack_vector": "P"})
    network = CvssV3(**{**v.__dict__, "attack_vector": "N"})
    assert network.base_score >= physical.base_score
