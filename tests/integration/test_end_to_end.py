"""Integration tests: the full Figure-4 loop on a small corpus.

These reproduce the experiments' *shape* at test scale (16 apps); the
benchmarks run the full 164-app versions.
"""

import pytest

from repro.core.evaluator import ChangeEvaluator
from repro.core.hypotheses import DEFAULT_HYPOTHESES
from repro.core.pipeline import train
from repro.ml.baselines import ZeroR
from repro.stats.regression import fit_loglog


class TestTrainingLoop:
    def test_model_predicts_all_hypotheses(self, small_corpus, small_training):
        evaluator = ChangeEvaluator(small_training.model)
        app = small_corpus.apps[0]
        assessment = evaluator.assess(
            app.codebase,
            nominal_kloc=app.profile.kloc,
            history=small_corpus.history(app.name),
        )
        assert len(assessment.probabilities) + len(assessment.estimates) == \
            len(DEFAULT_HYPOTHESES)

    def test_learned_model_beats_zeror_on_some_hypothesis(
        self, small_corpus, small_training
    ):
        zero = train(
            small_corpus,
            table=small_training.table,
            classifier_factory=ZeroR,
            k=4,
            seed=7,
        )
        improvements = [
            small_training.cv_results[h]["auc"] - zero.cv_results[h]["auc"]
            for h in small_training.model.classification_ids
        ]
        assert max(improvements) > 0.05

    def test_weights_expose_feature_names(self, small_training):
        for hyp_id in small_training.model.classification_ids:
            props = small_training.model.top_properties(hyp_id, k=3)
            assert all(
                name in small_training.model.feature_names for name, _ in props
            )


class TestCorpusStatistics:
    def test_loc_alone_is_weak_on_the_full_profile_set(self, small_corpus):
        profiles = small_corpus.database  # full 164-app database
        apps = profiles.apps
        sizes = []
        counts = []
        # Recover sizes from names via the generator for the full set.
        from repro.synth.cvegen import generate_profiles

        for p in generate_profiles(seed=small_corpus.seed):
            sizes.append(p.kloc)
            counts.append(p.n_vulns)
        fit = fit_loglog(sizes, counts)
        assert 0.15 < fit.r_squared < 0.35  # weak, as Figure 2 reports

    def test_database_converging_selection(self, small_corpus):
        assert len(small_corpus.database.select_converging()) == 164


class TestDirectoryWorkflow:
    def test_assess_codebase_from_disk(self, tmp_path, small_training):
        (tmp_path / "app.c").write_text(
            "int main(int argc, char **argv) {\n"
            "    char buf[8];\n"
            "    strcpy(buf, argv[1]);\n"
            "    return 0;\n}\n"
        )
        from repro.lang import Codebase

        codebase = Codebase.from_directory(str(tmp_path))
        evaluator = ChangeEvaluator(small_training.model)
        assessment = evaluator.assess(codebase)
        assert 0.0 <= assessment.overall_risk <= 1.0
