"""Property-based tests over generated structured programs.

A hypothesis grammar emits random-but-valid C-like and Python function
bodies; the structural parser, CFG builder, and dataflow analyses must
uphold their invariants on every one of them.
"""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cfg import build_cfg
from repro.analysis.cyclomatic import function_complexity
from repro.analysis.dataflow import reaching_definitions, taint_analysis
from repro.lang import SourceFile, extract_functions

# -- random structured-program generator -------------------------------------


@st.composite
def c_statements(draw, depth=0):
    """A list of C statement strings, bounded nesting."""
    n = draw(st.integers(1, 4))
    statements = []
    for _ in range(n):
        kind = draw(
            st.sampled_from(
                ["assign", "if", "ifelse", "while", "return", "call"]
                if depth < 2
                else ["assign", "return", "call"]
            )
        )
        var = draw(st.sampled_from("abcxyz"))
        value = draw(st.integers(0, 99))
        if kind == "assign":
            statements.append(f"{var} = {value};")
        elif kind == "call":
            statements.append(f"{var} = helper({var});")
        elif kind == "return":
            statements.append(f"return {var};")
        elif kind == "if":
            inner = draw(c_statements(depth=depth + 1))
            statements.append(
                f"if ({var} > {value}) {{\n" + "\n".join(inner) + "\n}"
            )
        elif kind == "ifelse":
            then = draw(c_statements(depth=depth + 1))
            other = draw(c_statements(depth=depth + 1))
            statements.append(
                f"if ({var} > {value}) {{\n" + "\n".join(then)
                + "\n} else {\n" + "\n".join(other) + "\n}"
            )
        elif kind == "while":
            inner = draw(c_statements(depth=depth + 1))
            statements.append(
                f"while ({var} < {value}) {{\n" + "\n".join(inner) + "\n}"
            )
    return statements


@st.composite
def c_functions(draw):
    body = "\n".join(draw(c_statements()))
    return (
        "int f(int a, int b) {\n"
        "int x = 0;\nint y = 1;\nint c = 2;\nint z = 3;\n"
        + body
        + "\nreturn x;\n}"
    )


def _function_and_cfg(text, path="t.c"):
    src = SourceFile(path, text)
    functions = extract_functions(src)
    assert functions, text
    return functions[0], src, build_cfg(functions[0], src)


@settings(max_examples=120, deadline=None)
@given(c_functions())
def test_cfg_structural_invariants(text):
    fn, src, cfg = _function_and_cfg(text)
    graph = cfg.graph
    # Entry has no predecessors; exit has no successors.
    assert graph.in_degree(cfg.entry) == 0
    assert graph.out_degree(cfg.exit) == 0
    # Every node reachable from entry can reach exit (no trap states).
    reachable = nx.descendants(graph, cfg.entry) | {cfg.entry}
    for node in reachable:
        if node == cfg.exit:
            continue
        assert nx.has_path(graph, node, cfg.exit), (text, node)


@settings(max_examples=120, deadline=None)
@given(c_functions())
def test_cfg_cyclomatic_lower_bound(text):
    fn, src, cfg = _function_and_cfg(text)
    # Graph cyclomatic >= 1 and within the token count's neighbourhood.
    assert cfg.cyclomatic >= 1
    token_cc = function_complexity(fn, src)
    assert abs(cfg.cyclomatic - token_cc) <= token_cc  # same magnitude


@settings(max_examples=100, deadline=None)
@given(c_functions())
def test_path_count_at_least_one(text):
    _, _, cfg = _function_and_cfg(text)
    assert cfg.path_count() >= 1


@settings(max_examples=100, deadline=None)
@given(c_functions())
def test_reaching_definitions_terminates_and_is_sound(text):
    _, _, cfg = _function_and_cfg(text)
    rd = reaching_definitions(cfg)
    # Every reaching definition's origin node generated it.
    for node, reaching in rd.in_sets.items():
        for def_node, var in reaching:
            assert (def_node, var) in rd.gen[def_node]


@settings(max_examples=100, deadline=None)
@given(c_functions())
def test_taint_monotone_in_seed_params(text):
    fn, src, cfg = _function_and_cfg(text)
    none = taint_analysis(cfg, [])
    all_params = taint_analysis(cfg, fn.param_names)
    assert none.tainted_sink_calls <= all_params.tainted_sink_calls
    assert none.tainted_vars <= all_params.tainted_vars | set(fn.param_names)


@st.composite
def py_functions(draw):
    lines = ["def f(a, b):", "    x = 0"]
    n = draw(st.integers(1, 4))
    for _ in range(n):
        kind = draw(st.sampled_from(["assign", "if", "for", "return"]))
        var = draw(st.sampled_from("abxyz"))
        value = draw(st.integers(0, 9))
        if kind == "assign":
            lines.append(f"    {var} = {value}")
        elif kind == "if":
            lines.append(f"    if {var} > {value}:")
            lines.append(f"        {var} = {value} + 1")
        elif kind == "for":
            lines.append(f"    for i in range({value + 1}):")
            lines.append(f"        {var} = {var} + i" if var != "i"
                         else "        x = x + i")
        else:
            lines.append(f"    return {var}")
    lines.append("    return x")
    return "\n".join(lines) + "\n"


@settings(max_examples=100, deadline=None)
@given(py_functions())
def test_python_cfg_invariants(text):
    fn, src, cfg = _function_and_cfg(text, path="t.py")
    assert cfg.graph.in_degree(cfg.entry) == 0
    assert cfg.graph.out_degree(cfg.exit) == 0
    assert cfg.path_count() >= 1
    reaching_definitions(cfg)  # must terminate without raising
