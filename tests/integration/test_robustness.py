"""Failure injection: the testbed must survive hostile, broken input.

The paper's testbed runs unattended over hundreds of applications (§5.1);
real trees contain truncated files, mismatched braces, binary garbage,
and weird encodings. Every analyzer — and the full feature extraction —
must degrade gracefully (finite numbers, no exceptions) on all of it.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bugfind import run_all
from repro.core.features import extract_features
from repro.lang import Codebase, SourceFile


def _corrupt(text: str, mode: str, seed: int) -> str:
    rng = random.Random(seed)
    if not text:
        return text
    if mode == "truncate":
        return text[: rng.randint(0, len(text) - 1)]
    if mode == "drop_braces":
        return text.replace("}", "", rng.randint(1, 3))
    if mode == "extra_braces":
        pos = rng.randint(0, len(text))
        return text[:pos] + "}}}{{" + text[pos:]
    if mode == "binary_noise":
        pos = rng.randint(0, len(text))
        return text[:pos] + "\x00\xff\x7f�" + text[pos:]
    if mode == "shuffle_lines":
        lines = text.splitlines()
        rng.shuffle(lines)
        return "\n".join(lines)
    raise ValueError(mode)


MODES = ("truncate", "drop_braces", "extra_braces", "binary_noise",
         "shuffle_lines")


@pytest.fixture(scope="module")
def donor_sources(small_corpus):
    app = small_corpus.apps[0]
    return {f.path: f.text for f in app.codebase}


class TestCorruptedCorpusFiles:
    @pytest.mark.parametrize("mode", MODES)
    def test_feature_extraction_survives(self, donor_sources, mode):
        corrupted = {
            path: _corrupt(text, mode, seed=i)
            for i, (path, text) in enumerate(sorted(donor_sources.items()))
        }
        codebase = Codebase.from_sources("corrupted", corrupted)
        row = extract_features(codebase)
        import math

        assert all(math.isfinite(v) for v in row.values()), mode

    @pytest.mark.parametrize("mode", MODES)
    def test_bugfind_survives(self, donor_sources, mode):
        corrupted = {
            path: _corrupt(text, mode, seed=i + 100)
            for i, (path, text) in enumerate(sorted(donor_sources.items()))
        }
        run_all(Codebase.from_sources("corrupted", corrupted))

    def test_single_brace_file(self):
        row = extract_features(Codebase.from_sources("b", {"a.c": "}\n"}))
        import math

        assert all(math.isfinite(v) for v in row.values())

    def test_only_comments_file(self):
        cb = Codebase.from_sources("c", {"a.c": "/* nothing but talk */\n"})
        row = extract_features(cb)
        assert row["size.sample_loc"] == 0.0

    def test_gigantic_single_line(self):
        text = "int x = " + " + ".join(str(i) for i in range(2000)) + ";\n"
        extract_features(Codebase.from_sources("g", {"a.c": text}))


@settings(max_examples=25, deadline=None)
@given(
    st.text(
        alphabet=st.characters(min_codepoint=1, max_codepoint=0x2FF),
        max_size=400,
    ),
    st.sampled_from([".c", ".py", ".java", ".cc"]),
)
def test_feature_extraction_on_arbitrary_text(text, ext):
    """Pure fuzz: any unicode soup in any language must analyse finitely."""
    import math

    codebase = Codebase.from_sources("fuzz", {f"f{ext}": text})
    row = extract_features(codebase)
    assert all(math.isfinite(v) for v in row.values())
