"""Ensemble learner tests."""

import numpy as np
import pytest

from repro.ml.base import NotFittedError
from repro.ml.baselines import ZeroR
from repro.ml.ensemble import (
    AdaBoostClassifier,
    BaggingClassifier,
    VotingClassifier,
)
from repro.ml.logistic import LogisticRegression
from repro.ml.naive_bayes import GaussianNB
from repro.ml.tree import DecisionTreeClassifier


def xor_like(n=200, seed=0):
    """A task depth-1 stumps cannot solve but boosted stumps can."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 2))
    y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(int)
    return x, y


def separable(n=150, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 3))
    y = (x[:, 0] > 0).astype(int)
    return x, y


class TestAdaBoost:
    def test_boosting_beats_single_stump(self):
        x, y = xor_like()
        stump = DecisionTreeClassifier(max_depth=1).fit(x, y)
        boosted = AdaBoostClassifier(n_rounds=40, max_depth=2, seed=0).fit(x, y)
        acc_stump = np.mean(stump.predict(x) == y)
        acc_boost = np.mean(boosted.predict(x) == y)
        assert acc_boost > acc_stump
        assert acc_boost > 0.85

    def test_perfect_stage_short_circuit(self):
        x, y = separable()
        model = AdaBoostClassifier(n_rounds=30, max_depth=4).fit(x, y)
        assert np.mean(model.predict(x) == y) > 0.95

    def test_multiclass(self):
        rng = np.random.default_rng(1)
        centers = np.array([[0, 0], [4, 4], [0, 4]])
        x = np.vstack([rng.normal(c, 0.5, size=(40, 2)) for c in centers])
        y = np.repeat([0, 1, 2], 40)
        model = AdaBoostClassifier(n_rounds=25, max_depth=2).fit(x, y)
        assert np.mean(model.predict(x) == y) > 0.85

    def test_proba_normalised(self):
        x, y = xor_like()
        proba = AdaBoostClassifier(n_rounds=10).fit(x, y).predict_proba(x)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            AdaBoostClassifier(n_rounds=0)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            AdaBoostClassifier().predict(np.zeros((1, 2)))


class TestBagging:
    def test_bagging_trees(self):
        x, y = separable()
        model = BaggingClassifier(
            lambda: DecisionTreeClassifier(max_depth=4), n_estimators=9
        ).fit(x, y)
        assert np.mean(model.predict(x) == y) > 0.9

    def test_deterministic(self):
        x, y = separable()
        a = BaggingClassifier(GaussianNB, n_estimators=5, seed=3).fit(x, y)
        b = BaggingClassifier(GaussianNB, n_estimators=5, seed=3).fit(x, y)
        assert np.allclose(a.predict_proba(x), b.predict_proba(x))

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            BaggingClassifier(GaussianNB, n_estimators=0)


class TestVoting:
    def test_combines_members(self):
        x, y = separable()
        model = VotingClassifier(
            [LogisticRegression, GaussianNB,
             lambda: DecisionTreeClassifier(max_depth=4)]
        ).fit(x, y)
        assert np.mean(model.predict(x) == y) > 0.9

    def test_weights_bias_result(self):
        x, y = separable()
        # All weight on ZeroR makes the ensemble behave like ZeroR.
        model = VotingClassifier(
            [LogisticRegression, ZeroR], weights=[0.0, 1.0]
        ).fit(x, y)
        zero = ZeroR().fit(x, y)
        assert np.array_equal(model.predict(x), zero.predict(x))

    def test_weight_length_validation(self):
        with pytest.raises(ValueError):
            VotingClassifier([GaussianNB], weights=[1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            VotingClassifier([])

    def test_proba_rows_sum_to_one(self):
        x, y = separable()
        proba = VotingClassifier([GaussianNB, LogisticRegression]).fit(
            x, y
        ).predict_proba(x)
        assert np.allclose(proba.sum(axis=1), 1.0)
