"""ARFF import/export tests."""

import io

import numpy as np
import pytest

from repro.ml.arff import ArffError, dump, dumps, load, loads
from repro.ml.dataset import Dataset


def classification_ds():
    return Dataset(
        ("loc", "mccabe score"),
        np.array([[10.0, 2.5], [200.0, 8.0], [35.0, 3.0]]),
        np.array(["risky", "safe", "risky"]),
        name="vuln apps",
    )


def regression_ds():
    return Dataset(
        ("a", "b"),
        np.array([[1.0, 2.0], [3.0, 4.0]]),
        np.array([0.5, 1.5]),
        name="reg",
    )


class TestExport:
    def test_header_structure(self):
        text = dumps(classification_ds())
        assert "@relation 'vuln apps'" in text
        assert "@attribute loc numeric" in text
        assert "@attribute 'mccabe score' numeric" in text
        assert "@attribute class {risky,safe}" in text
        assert "@data" in text

    def test_numeric_class(self):
        text = dumps(regression_ds())
        assert "@attribute class numeric" in text

    def test_integer_formatting(self):
        text = dumps(regression_ds())
        assert "1,2,0.5" in text

    def test_dump_to_file_object(self):
        buf = io.StringIO()
        dump(classification_ds(), buf)
        assert "@data" in buf.getvalue()

    def test_dump_to_path(self, tmp_path):
        path = str(tmp_path / "out.arff")
        dump(classification_ds(), path)
        assert "@data" in open(path).read()


class TestRoundtrip:
    def test_classification_roundtrip(self):
        original = classification_ds()
        restored = loads(dumps(original))
        assert restored.feature_names == original.feature_names
        assert np.allclose(restored.x, original.x)
        assert list(restored.y) == list(original.y)
        assert restored.name == original.name

    def test_regression_roundtrip(self):
        original = regression_ds()
        restored = loads(dumps(original))
        assert np.allclose(np.asarray(restored.y, dtype=float), original.y)

    def test_load_from_path(self, tmp_path):
        path = str(tmp_path / "d.arff")
        dump(classification_ds(), path)
        assert load(path).n_rows == 3


class TestImport:
    def test_comments_and_blanks_ignored(self):
        text = (
            "% comment\n@relation r\n\n@attribute a numeric\n"
            "@attribute class {x,y}\n@data\n% another\n1,x\n2,y\n"
        )
        ds = loads(text)
        assert ds.n_rows == 2
        assert list(ds.y) == ["x", "y"]

    def test_missing_data_section(self):
        with pytest.raises(ArffError):
            loads("@relation r\n@attribute a numeric\n@attribute c numeric\n")

    def test_too_few_attributes(self):
        with pytest.raises(ArffError):
            loads("@relation r\n@attribute c numeric\n@data\n1\n")

    def test_row_width_mismatch(self):
        with pytest.raises(ArffError, match="cells"):
            loads(
                "@relation r\n@attribute a numeric\n@attribute c numeric\n"
                "@data\n1,2,3\n"
            )

    def test_undeclared_nominal_value(self):
        with pytest.raises(ArffError, match="not in declared"):
            loads(
                "@relation r\n@attribute a numeric\n@attribute c {x}\n"
                "@data\n1,z\n"
            )

    def test_non_numeric_feature_cell(self):
        with pytest.raises(ArffError, match="non-numeric"):
            loads(
                "@relation r\n@attribute a numeric\n@attribute c {x}\n"
                "@data\nfoo,x\n"
            )

    def test_nominal_feature_rejected(self):
        with pytest.raises(ArffError, match="unsupported"):
            loads(
                "@relation r\n@attribute a {p,q}\n@attribute c numeric\n"
                "@data\np,1\n"
            )

    def test_unknown_header_line(self):
        with pytest.raises(ArffError, match="unexpected"):
            loads("@relation r\n@banana\n")


class TestWekaCompatibility:
    def test_trains_after_roundtrip(self):
        from repro.ml.logistic import LogisticRegression

        rng = np.random.default_rng(0)
        x = rng.normal(size=(60, 3))
        y = np.where(x[:, 0] > 0, "pos", "neg")
        ds = Dataset(("f0", "f1", "f2"), x, y, name="t")
        restored = loads(dumps(ds))
        model = LogisticRegression().fit(restored.x, restored.y)
        acc = float(np.mean(model.predict(restored.x) == restored.y))
        assert acc > 0.8
