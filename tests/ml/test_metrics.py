"""Evaluation metric tests."""

import numpy as np
import pytest

from repro.ml.metrics import (
    MetricError,
    accuracy,
    confusion_matrix,
    mae,
    precision_recall_f1,
    r2_score,
    rmse,
    roc_auc,
    within_order_of_magnitude,
)


class TestClassification:
    def test_accuracy(self):
        assert accuracy([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)

    def test_accuracy_perfect(self):
        assert accuracy([1, 0], [1, 0]) == 1.0

    def test_length_mismatch(self):
        with pytest.raises(MetricError):
            accuracy([1], [1, 0])

    def test_empty(self):
        with pytest.raises(MetricError):
            accuracy([], [])

    def test_confusion_matrix(self):
        cm = confusion_matrix([1, 0, 1, 0], [1, 1, 1, 0])
        assert cm == {(1, 1): 2, (0, 1): 1, (0, 0): 1}

    def test_precision_recall_f1(self):
        p, r, f = precision_recall_f1([1, 1, 0, 0], [1, 0, 1, 0])
        assert p == pytest.approx(0.5)
        assert r == pytest.approx(0.5)
        assert f == pytest.approx(0.5)

    def test_no_positive_predictions(self):
        p, r, f = precision_recall_f1([1, 1], [0, 0])
        assert (p, r, f) == (0.0, 0.0, 0.0)

    def test_perfect_f1(self):
        p, r, f = precision_recall_f1([1, 0, 1], [1, 0, 1])
        assert f == 1.0


class TestAuc:
    def test_perfect_separation(self):
        assert roc_auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted(self):
        assert roc_auc([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_ties(self):
        assert roc_auc([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == 0.5

    def test_single_class(self):
        assert roc_auc([1, 1], [0.2, 0.9]) == 0.5

    def test_partial(self):
        # One inversion among 2x2 pairs -> AUC 0.75
        assert roc_auc([0, 1, 0, 1], [0.1, 0.4, 0.6, 0.9]) == pytest.approx(0.75)


class TestRegression:
    def test_mae(self):
        assert mae([1.0, 2.0], [2.0, 4.0]) == pytest.approx(1.5)

    def test_rmse(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_r2_perfect(self):
        assert r2_score([1, 2, 3], [1, 2, 3]) == 1.0

    def test_r2_mean_predictor_zero(self):
        assert r2_score([1.0, 2.0, 3.0], [2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0

    def test_within_order(self):
        # 10 vs 99 is within one order; 10 vs 1001 is not.
        assert within_order_of_magnitude([10.0], [99.0]) == 1.0
        assert within_order_of_magnitude([10.0], [1001.0]) == 0.0

    def test_within_order_fraction(self):
        assert within_order_of_magnitude(
            [10.0, 10.0], [99.0, 2000.0]
        ) == pytest.approx(0.5)
