"""Platt calibration and Brier score tests."""

import numpy as np
import pytest

from repro.ml.calibration import CalibratedClassifier, brier_score
from repro.ml.ensemble import AdaBoostClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier


def noisy_task(n=400, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 3))
    logit = 1.5 * x[:, 0]
    p = 1.0 / (1.0 + np.exp(-logit))
    y = (rng.random(n) < p).astype(int)
    return x, y


class TestBrierScore:
    def test_perfect(self):
        assert brier_score([1, 0], [1.0, 0.0]) == 0.0

    def test_worst(self):
        assert brier_score([1, 0], [0.0, 1.0]) == 1.0

    def test_uninformed(self):
        assert brier_score([1, 0], [0.5, 0.5]) == pytest.approx(0.25)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            brier_score([1], [0.5, 0.5])

    def test_empty(self):
        with pytest.raises(ValueError):
            brier_score([], [])


class TestCalibratedClassifier:
    def test_probabilities_valid(self):
        x, y = noisy_task()
        model = CalibratedClassifier(
            lambda: RandomForestClassifier(n_trees=10), seed=1
        ).fit(x, y)
        proba = model.predict_proba(x)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all() and (proba <= 1).all()

    def test_calibration_fixes_overconfident_tree(self):
        # A deep unpruned tree emits near-0/1 leaf purities: terribly
        # overconfident on noisy labels. Platt scaling pulls the scores
        # back toward honest probabilities.
        x, y = noisy_task(n=600)
        x_test, y_test = noisy_task(n=400, seed=99)
        factory = lambda: DecisionTreeClassifier(max_depth=12, min_leaf=1,
                                                 seed=2)
        raw = factory().fit(x, y)
        calibrated = CalibratedClassifier(factory, seed=2).fit(x, y)

        def positive_scores(model, data):
            proba = model.predict_proba(data)
            return proba[:, list(model.classes_).index(1)]

        raw_brier = brier_score(y_test, positive_scores(raw, x_test))
        cal_brier = brier_score(y_test, positive_scores(calibrated, x_test))
        assert cal_brier < raw_brier - 0.05

    def test_calibration_keeps_good_probabilities_good(self):
        # AdaBoost vote shares are already mid-range: calibration should
        # not blow them up.
        x, y = noisy_task(n=600)
        x_test, y_test = noisy_task(n=400, seed=99)
        raw = AdaBoostClassifier(n_rounds=25, seed=2).fit(x, y)
        calibrated = CalibratedClassifier(
            lambda: AdaBoostClassifier(n_rounds=25, seed=2), seed=2
        ).fit(x, y)

        def positive_scores(model, data):
            proba = model.predict_proba(data)
            return proba[:, list(model.classes_).index(1)]

        raw_brier = brier_score(y_test, positive_scores(raw, x_test))
        cal_brier = brier_score(y_test, positive_scores(calibrated, x_test))
        assert cal_brier <= raw_brier + 0.03

    def test_accuracy_preserved(self):
        x, y = noisy_task()
        model = CalibratedClassifier(
            lambda: DecisionTreeClassifier(max_depth=4), seed=1
        ).fit(x, y)
        assert np.mean(model.predict(x) == y) > 0.7

    def test_multiclass_rejected(self):
        x = np.random.default_rng(0).normal(size=(30, 2))
        y = np.arange(30) % 3
        with pytest.raises(ValueError, match="binary"):
            CalibratedClassifier(
                lambda: DecisionTreeClassifier()
            ).fit(x, y)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            CalibratedClassifier(lambda: DecisionTreeClassifier(),
                                 calibration_fraction=0.9)

    def test_deterministic(self):
        x, y = noisy_task(n=200)
        a = CalibratedClassifier(
            lambda: DecisionTreeClassifier(max_depth=3), seed=5
        ).fit(x, y).predict_proba(x)
        b = CalibratedClassifier(
            lambda: DecisionTreeClassifier(max_depth=3), seed=5
        ).fit(x, y).predict_proba(x)
        assert np.allclose(a, b)
