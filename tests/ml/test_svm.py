"""Linear SVM and perceptron tests."""

import numpy as np
import pytest

from repro.ml.base import NotFittedError
from repro.ml.svm import LinearSVM, Perceptron


def separable(n=200, margin=1.0, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    y = (x[:, 0] + 0.3 * x[:, 1] > 0).astype(int)
    x[y == 1] += margin / 2
    x[y == 0] -= margin / 2
    return x, y


class TestLinearSVM:
    def test_separates_clean_data(self):
        x, y = separable()
        model = LinearSVM(epochs=40).fit(x, y)
        assert np.mean(model.predict(x) == y) > 0.97

    def test_decision_function_sign_matches_prediction(self):
        x, y = separable()
        model = LinearSVM().fit(x, y)
        margins = model.decision_function(x)
        pred = model.predict(x)
        assert ((margins > 0) == (pred == 1)).all()

    def test_weights_expose_signal(self):
        x, y = separable(n=400)
        model = LinearSVM(epochs=40).fit(x, y)
        top = model.weights(("f0", "f1"))[0]
        assert top[0] == "f0" and top[1] > 0

    def test_stronger_l2_smaller_weights(self):
        x, y = separable()
        soft = LinearSVM(l2=0.001, epochs=20).fit(x, y)
        hard = LinearSVM(l2=1.0, epochs=20).fit(x, y)
        assert np.linalg.norm(hard.coef_) < np.linalg.norm(soft.coef_)

    def test_proba_valid(self):
        x, y = separable()
        proba = LinearSVM().fit(x, y).predict_proba(x)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all()

    def test_multiclass_rejected(self):
        x = np.zeros((9, 2))
        y = np.arange(9) % 3
        with pytest.raises(ValueError, match="binary"):
            LinearSVM().fit(x, y)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LinearSVM(l2=0)
        with pytest.raises(ValueError):
            LinearSVM(epochs=0)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            LinearSVM().predict(np.zeros((1, 2)))

    def test_string_labels(self):
        x, y = separable()
        labels = np.where(y == 1, "vuln", "safe")
        pred = LinearSVM().fit(x, labels).predict(x[:5])
        assert set(pred) <= {"vuln", "safe"}


class TestPerceptron:
    def test_separates_clean_data(self):
        x, y = separable()
        model = Perceptron(epochs=30).fit(x, y)
        assert np.mean(model.predict(x) == y) > 0.95

    def test_averaging_stabilises(self):
        # Averaged weights must not be the trivial zero vector.
        x, y = separable()
        model = Perceptron(epochs=5).fit(x, y)
        assert np.linalg.norm(model.coef_) > 0

    def test_multiclass_rejected(self):
        x = np.zeros((9, 2))
        y = np.arange(9) % 3
        with pytest.raises(ValueError, match="binary"):
            Perceptron().fit(x, y)

    def test_deterministic(self):
        x, y = separable()
        a = Perceptron(seed=2).fit(x, y).predict_proba(x)
        b = Perceptron(seed=2).fit(x, y).predict_proba(x)
        assert np.allclose(a, b)
