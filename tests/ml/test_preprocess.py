"""Preprocessing transform tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml.base import NotFittedError
from repro.ml.preprocess import (
    EqualWidthDiscretizer,
    Log1pTransform,
    MeanImputer,
    MinMaxScaler,
    Pipeline,
    StandardScaler,
)

X = np.array([[1.0, 10.0], [2.0, 20.0], [3.0, 30.0], [4.0, 40.0]])


class TestStandardScaler:
    def test_zero_mean_unit_var(self):
        out = StandardScaler().fit_apply(X)
        assert np.allclose(out.mean(axis=0), 0.0)
        assert np.allclose(out.std(axis=0), 1.0)

    def test_constant_column_stays_zero(self):
        x = np.array([[5.0, 1.0], [5.0, 2.0]])
        out = StandardScaler().fit_apply(x)
        assert np.allclose(out[:, 0], 0.0)

    def test_apply_before_fit(self):
        with pytest.raises(NotFittedError):
            StandardScaler().apply(X)

    def test_train_statistics_used_on_test(self):
        scaler = StandardScaler().fit(X)
        out = scaler.apply(np.array([[2.5, 25.0]]))
        assert np.allclose(out, 0.0)


class TestMinMaxScaler:
    def test_range(self):
        out = MinMaxScaler().fit_apply(X)
        assert out.min() == 0.0 and out.max() == 1.0

    def test_constant_column(self):
        x = np.array([[5.0], [5.0]])
        assert np.allclose(MinMaxScaler().fit_apply(x), 0.0)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().apply(X)


class TestLog1p:
    def test_values(self):
        out = Log1pTransform().fit_apply(np.array([[0.0, 9.0]]))
        assert np.allclose(out, [[0.0, np.log(10.0)]])

    def test_negative_clipped(self):
        out = Log1pTransform().fit_apply(np.array([[-5.0]]))
        assert out[0, 0] == 0.0


class TestDiscretizer:
    def test_bins_in_range(self):
        disc = EqualWidthDiscretizer(n_bins=4)
        out = disc.fit_apply(X)
        assert out.min() >= 0 and out.max() <= 3

    def test_monotone(self):
        disc = EqualWidthDiscretizer(n_bins=4).fit(X)
        out = disc.apply(X)
        assert (np.diff(out[:, 0]) >= 0).all()

    def test_constant_column(self):
        x = np.array([[7.0], [7.0], [7.0]])
        out = EqualWidthDiscretizer(n_bins=3).fit_apply(x)
        assert np.allclose(out, out[0, 0])

    def test_bad_bins(self):
        with pytest.raises(ValueError):
            EqualWidthDiscretizer(n_bins=1)

    def test_out_of_range_clipped(self):
        disc = EqualWidthDiscretizer(n_bins=3).fit(X)
        out = disc.apply(np.array([[100.0, -100.0]]))
        assert out[0, 0] == 2 and out[0, 1] == 0


class TestImputer:
    def test_nan_replaced_with_mean(self):
        x = np.array([[1.0, np.nan], [3.0, 4.0]])
        out = MeanImputer().fit_apply(x)
        assert out[0, 1] == 4.0

    def test_all_nan_column(self):
        x = np.array([[np.nan], [np.nan]])
        out = MeanImputer().fit_apply(x)
        assert np.allclose(out, 0.0)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            MeanImputer().apply(X)


class TestPipeline:
    def test_composition(self):
        pipe = Pipeline(Log1pTransform(), StandardScaler())
        out = pipe.fit_apply(X)
        assert np.allclose(out.mean(axis=0), 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Pipeline()

    def test_apply_uses_fitted_steps(self):
        pipe = Pipeline(StandardScaler()).fit(X)
        out = pipe.apply(X[:1])
        expected = (X[:1] - X.mean(axis=0)) / X.std(axis=0)
        assert np.allclose(out, expected)


@settings(max_examples=30)
@given(
    hnp.arrays(
        np.float64,
        st.tuples(st.integers(2, 12), st.integers(1, 5)),
        elements=st.floats(-1e3, 1e3),
    )
)
def test_standard_scaler_idempotent_statistics(x):
    # Near-constant columns amplify float rounding through the tiny std,
    # so tolerances are loose; the property is about shape, not ULPs.
    out = StandardScaler().fit_apply(x)
    assert np.allclose(out.mean(axis=0), 0.0, atol=1e-4)
    stds = out.std(axis=0)
    for s in stds:
        assert s == pytest.approx(1.0, abs=1e-4) or s == pytest.approx(0.0)
