"""Decision tree and regressor tests."""

import numpy as np
import pytest

from repro.ml.base import NotFittedError
from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import LinearRegressor
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


def linear_data(n=150, seed=0, noise=0.1):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 3))
    y = 2.0 * x[:, 0] - 1.0 * x[:, 1] + 0.5 + rng.normal(scale=noise, size=n)
    return x, y


def step_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 2))
    y = np.where(x[:, 0] > 0.2, 5.0, -5.0)
    return x, y


class TestDecisionTreeClassifier:
    def test_pure_split(self):
        x = np.array([[0.0], [0.1], [0.9], [1.0]])
        y = np.array([0, 0, 1, 1])
        model = DecisionTreeClassifier().fit(x, y)
        assert (model.predict(x) == y).all()

    def test_max_depth_limits_tree(self):
        x, y = step_data()
        stump = DecisionTreeClassifier(max_depth=1).fit(x, (y > 0).astype(int))
        assert stump._root.left is not None
        assert stump._root.left.is_leaf

    def test_min_leaf_respected(self):
        x = np.arange(10, dtype=float).reshape(-1, 1)
        y = (x[:, 0] > 4.5).astype(int)
        model = DecisionTreeClassifier(min_leaf=5).fit(x, y)
        assert np.mean(model.predict(x) == y) == 1.0

    def test_single_class_leaf(self):
        x = np.zeros((5, 1))
        y = np.ones(5, dtype=int)
        model = DecisionTreeClassifier().fit(x, y)
        assert model._root.is_leaf

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_leaf=0)


class TestDecisionTreeRegressor:
    def test_step_function_learned(self):
        x, y = step_data()
        model = DecisionTreeRegressor(max_depth=3).fit(x, y)
        pred = model.predict(x)
        assert np.mean((pred - y) ** 2) < 1.0

    def test_constant_target_single_leaf(self):
        x = np.arange(8, dtype=float).reshape(-1, 1)
        y = np.full(8, 3.0)
        model = DecisionTreeRegressor().fit(x, y)
        assert model._root.is_leaf
        assert model.predict(x)[0] == pytest.approx(3.0)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict(np.zeros((1, 1)))


class TestLinearRegressor:
    def test_recovers_coefficients(self):
        x, y = linear_data(noise=0.0)
        model = LinearRegressor().fit(x, y)
        assert model.coef_[0] == pytest.approx(2.0, abs=1e-6)
        assert model.coef_[1] == pytest.approx(-1.0, abs=1e-6)
        assert model.intercept_ == pytest.approx(0.5, abs=1e-6)

    def test_ridge_shrinks(self):
        x, y = linear_data(noise=0.0)
        ols = LinearRegressor().fit(x, y)
        ridge = LinearRegressor(l2=100.0).fit(x, y)
        assert abs(ridge.coef_[0]) < abs(ols.coef_[0])

    def test_intercept_not_regularised(self):
        x = np.zeros((10, 1))
        y = np.full(10, 7.0)
        model = LinearRegressor(l2=1000.0).fit(x, y)
        assert model.predict(np.zeros((1, 1)))[0] == pytest.approx(7.0)

    def test_rank_deficient_ols(self):
        # Duplicate column: lstsq path must still fit.
        x = np.column_stack([np.arange(5.0), np.arange(5.0)])
        y = np.arange(5.0)
        model = LinearRegressor().fit(x, y)
        assert np.allclose(model.predict(x), y, atol=1e-8)

    def test_weights_sorted_by_magnitude(self):
        x, y = linear_data(noise=0.0)
        model = LinearRegressor().fit(x, y)
        weights = model.weights(("a", "b", "c"))
        magnitudes = [abs(w) for _, w in weights]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_negative_l2_rejected(self):
        with pytest.raises(ValueError):
            LinearRegressor(l2=-0.1)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            LinearRegressor().predict(np.zeros((1, 1)))


class TestRandomForestRegressor:
    def test_fits_step_function(self):
        x, y = step_data()
        model = RandomForestRegressor(n_trees=15).fit(x, y)
        assert np.mean((model.predict(x) - y) ** 2) < 2.0

    def test_importances_sum_to_one(self):
        x, y = step_data()
        model = RandomForestRegressor(n_trees=10).fit(x, y)
        assert model.feature_importances_.sum() == pytest.approx(1.0)

    def test_prediction_is_tree_average(self):
        x, y = linear_data(n=60)
        model = RandomForestRegressor(n_trees=7).fit(x, y)
        manual = np.mean([t.predict(x) for t in model._trees], axis=0)
        assert np.allclose(model.predict(x), manual)
