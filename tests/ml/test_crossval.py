"""Cross-validation and feature-selection tests."""

import numpy as np
import pytest

from repro.ml.baselines import ZeroR
from repro.ml.crossval import (
    CrossValError,
    cross_validate_classifier,
    cross_validate_regressor,
    kfold_indices,
    stratified_kfold_indices,
)
from repro.ml.dataset import Dataset
from repro.ml.feature_selection import (
    correlation_ranking,
    information_gain,
    information_gain_ranking,
    select_top_k,
)
from repro.ml.linear import LinearRegressor
from repro.ml.logistic import LogisticRegression
from repro.ml.preprocess import StandardScaler


def classification_dataset(n=80, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 5))
    y = (x[:, 0] > 0).astype(int)
    return Dataset(tuple(f"f{i}" for i in range(5)), x, y)


class TestFolds:
    def test_kfold_partition(self):
        splits = kfold_indices(20, 4)
        all_test = np.concatenate([test for _, test in splits])
        assert sorted(all_test) == list(range(20))

    def test_kfold_disjoint(self):
        for train, test in kfold_indices(20, 4):
            assert set(train) & set(test) == set()
            assert len(train) + len(test) == 20

    def test_kfold_too_few_rows(self):
        with pytest.raises(CrossValError):
            kfold_indices(3, 5)

    def test_kfold_k_must_be_at_least_2(self):
        with pytest.raises(CrossValError):
            kfold_indices(10, 1)

    def test_stratified_preserves_ratio(self):
        labels = np.array([0] * 40 + [1] * 20)
        for train, test in stratified_kfold_indices(labels, 4, seed=1):
            ratio = labels[test].mean()
            assert 0.2 <= ratio <= 0.45

    def test_stratified_partition(self):
        labels = np.array([0, 1] * 10)
        splits = stratified_kfold_indices(labels, 5)
        all_test = np.concatenate([test for _, test in splits])
        assert sorted(all_test) == list(range(20))

    def test_seed_changes_assignment(self):
        labels = np.array([0, 1] * 20)
        a = stratified_kfold_indices(labels, 4, seed=1)
        b = stratified_kfold_indices(labels, 4, seed=2)
        assert any(
            not np.array_equal(x[1], y[1]) for x, y in zip(a, b)
        )


class TestCrossValidate:
    def test_classifier_metrics_present(self):
        res = cross_validate_classifier(
            classification_dataset(), LogisticRegression, k=4
        )
        assert set(res.metrics) == {"accuracy", "precision", "recall", "f1", "auc"}
        assert len(res.per_fold) == 4

    def test_learner_beats_zeror(self):
        ds = classification_dataset()
        zero = cross_validate_classifier(ds, ZeroR, k=4)
        logit = cross_validate_classifier(ds, LogisticRegression, k=4)
        assert logit["auc"] > zero["auc"]

    def test_transform_factory_applied(self):
        ds = classification_dataset()
        res = cross_validate_classifier(
            ds, LogisticRegression, k=4, transform_factory=StandardScaler
        )
        assert res["accuracy"] > 0.8

    def test_regressor_metrics(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(60, 3))
        y = x @ np.array([1.0, 2.0, 0.0]) + 0.05 * rng.normal(size=60)
        ds = Dataset(("a", "b", "c"), x, y)
        res = cross_validate_regressor(ds, LinearRegressor, k=5)
        assert res["r2"] > 0.9
        assert res["rmse"] < 1.0
        assert 0.0 <= res["within_order"] <= 1.0

    def test_getitem(self):
        res = cross_validate_classifier(
            classification_dataset(), ZeroR, k=3
        )
        assert res["accuracy"] == res.metrics["accuracy"]


class TestFeatureSelection:
    def test_correlation_ranks_signal_first(self):
        ds = classification_dataset(n=200)
        ranked = correlation_ranking(ds)
        assert ranked[0][0] == "f0"

    def test_information_gain_positive_for_signal(self):
        ds = classification_dataset(n=200)
        gain = information_gain(ds.column("f0"), ds.y)
        noise = information_gain(ds.column("f3"), ds.y)
        assert gain > noise

    def test_information_gain_constant_feature(self):
        assert information_gain(np.ones(10), np.arange(10) % 2) == 0.0

    def test_ig_ranking_order(self):
        ds = classification_dataset(n=200)
        ranked = information_gain_ranking(ds)
        scores = [s for _, s in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_select_top_k(self):
        ds = classification_dataset(n=200)
        reduced = select_top_k(ds, 2)
        assert reduced.n_features == 2
        assert "f0" in reduced.feature_names

    def test_select_top_k_invalid(self):
        ds = classification_dataset()
        with pytest.raises(ValueError):
            select_top_k(ds, 0)
        with pytest.raises(ValueError):
            select_top_k(ds, 2, method="psychic")
