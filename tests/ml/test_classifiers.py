"""Classifier tests: every learner on shared sanity tasks, plus
per-learner behaviour."""

import numpy as np
import pytest

from repro.ml.base import NotFittedError
from repro.ml.baselines import OneR, ZeroR
from repro.ml.forest import RandomForestClassifier
from repro.ml.knn import KNeighborsClassifier
from repro.ml.logistic import LogisticRegression
from repro.ml.naive_bayes import GaussianNB

ALL_CLASSIFIERS = [
    ZeroR,
    OneR,
    GaussianNB,
    LogisticRegression,
    lambda: RandomForestClassifier(n_trees=10),
    KNeighborsClassifier,
]
LEARNING_CLASSIFIERS = ALL_CLASSIFIERS[1:]


def separable(n=120, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 4))
    y = (x[:, 0] + 0.5 * x[:, 1] > 0).astype(int)
    return x, y


@pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
class TestCommonBehaviour:
    def test_predict_before_fit_raises(self, factory):
        with pytest.raises(NotFittedError):
            factory().predict(np.zeros((1, 4)))

    def test_proba_rows_sum_to_one(self, factory):
        x, y = separable()
        proba = factory().fit(x, y).predict_proba(x)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_proba_shape(self, factory):
        x, y = separable()
        proba = factory().fit(x, y).predict_proba(x[:5])
        assert proba.shape == (5, 2)

    def test_predictions_are_known_labels(self, factory):
        x, y = separable()
        pred = factory().fit(x, y).predict(x)
        assert set(np.unique(pred)) <= {0, 1}

    def test_string_labels_supported(self, factory):
        x, y = separable()
        labels = np.where(y == 1, "vuln", "safe")
        pred = factory().fit(x, labels).predict(x[:10])
        assert set(pred) <= {"vuln", "safe"}


@pytest.mark.parametrize("factory", LEARNING_CLASSIFIERS)
class TestLearning:
    def test_beats_chance_on_separable(self, factory):
        x, y = separable()
        model = factory().fit(x, y)
        assert np.mean(model.predict(x) == y) > 0.8

    def test_deterministic(self, factory):
        x, y = separable()
        p1 = factory().fit(x, y).predict_proba(x)
        p2 = factory().fit(x, y).predict_proba(x)
        assert np.allclose(p1, p2)


class TestZeroR:
    def test_predicts_majority(self):
        x = np.zeros((5, 2))
        y = np.array([1, 1, 1, 0, 0])
        assert (ZeroR().fit(x, y).predict(x) == 1).all()

    def test_proba_matches_frequencies(self):
        x = np.zeros((4, 1))
        y = np.array([0, 0, 0, 1])
        proba = ZeroR().fit(x, y).predict_proba(x)
        assert np.allclose(proba[0], [0.75, 0.25])


class TestOneR:
    def test_picks_informative_feature(self):
        rng = np.random.default_rng(1)
        noise = rng.normal(size=100)
        signal = np.repeat([0.0, 10.0], 50)
        x = np.column_stack([noise, signal])
        y = np.repeat([0, 1], 50)
        model = OneR().fit(x, y)
        assert model.feature_ == 1
        assert np.mean(model.predict(x) == y) == 1.0

    def test_all_constant_features_fallback(self):
        x = np.ones((6, 2))
        y = np.array([0, 0, 0, 0, 1, 1])
        assert (OneR().fit(x, y).predict(x) == 0).all()


class TestGaussianNB:
    def test_constant_feature_no_crash(self):
        x = np.column_stack([np.ones(20), np.arange(20.0)])
        y = (np.arange(20) >= 10).astype(int)
        model = GaussianNB().fit(x, y)
        assert np.mean(model.predict(x) == y) == 1.0

    def test_priors_respected(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 1))
        y = np.array([0] * 90 + [1] * 10)
        proba = GaussianNB().fit(x, y).predict_proba(x)
        assert proba[:, 0].mean() > 0.5


class TestLogistic:
    def test_weights_recover_signal(self):
        x, y = separable(n=300)
        model = LogisticRegression(max_iter=800).fit(x, y)
        weights = dict(model.weights(("f0", "f1", "f2", "f3")))
        assert abs(weights["f0"]) > abs(weights["f2"])
        assert weights["f0"] > 0

    def test_weights_name_mismatch(self):
        x, y = separable()
        model = LogisticRegression().fit(x, y)
        with pytest.raises(ValueError):
            model.weights(("a",))

    def test_multiclass_one_vs_rest(self):
        rng = np.random.default_rng(0)
        centers = np.array([[0, 0], [5, 5], [0, 5]])
        x = np.vstack([rng.normal(c, 0.4, size=(40, 2)) for c in centers])
        y = np.repeat([0, 1, 2], 40)
        model = LogisticRegression(max_iter=800).fit(x, y)
        assert np.mean(model.predict(x) == y) > 0.9

    def test_single_class_degenerate(self):
        x = np.zeros((4, 2))
        y = np.ones(4, dtype=int)
        model = LogisticRegression().fit(x, y)
        assert (model.predict(x) == 1).all()

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            LogisticRegression(learning_rate=0)
        with pytest.raises(ValueError):
            LogisticRegression(l2=-1)
        with pytest.raises(ValueError):
            LogisticRegression(max_iter=0)


class TestKNN:
    def test_memorises_training_set(self):
        x, y = separable(n=60)
        model = KNeighborsClassifier(k=1).fit(x, y)
        assert np.mean(model.predict(x) == y) == 1.0

    def test_k_larger_than_data(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        model = KNeighborsClassifier(k=10).fit(x, y)
        model.predict(x)  # must not raise

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(k=0)


class TestRandomForest:
    def test_importances_normalised(self):
        x, y = separable()
        model = RandomForestClassifier(n_trees=10).fit(x, y)
        assert model.feature_importances_.sum() == pytest.approx(1.0)

    def test_informative_feature_ranked_first(self):
        x, y = separable(n=300)
        model = RandomForestClassifier(n_trees=20).fit(x, y)
        assert int(np.argmax(model.feature_importances_)) in (0, 1)

    def test_seed_controls_result(self):
        x, y = separable()
        a = RandomForestClassifier(n_trees=5, seed=1).fit(x, y).predict_proba(x)
        b = RandomForestClassifier(n_trees=5, seed=2).fit(x, y).predict_proba(x)
        assert not np.allclose(a, b)

    def test_invalid_trees(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_trees=0)
