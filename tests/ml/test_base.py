"""Estimator-interface utility tests."""

import numpy as np
import pytest

from repro.ml.base import check_xy, encode_labels


class TestCheckXy:
    def test_accepts_valid(self):
        x = check_xy([[1, 2], [3, 4]])
        assert x.dtype == float
        assert x.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            check_xy(np.zeros(3))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one row"):
            check_xy(np.zeros((0, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_xy([[1.0, float("nan")]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_xy([[float("inf"), 1.0]])

    def test_rejects_target_length_mismatch(self):
        with pytest.raises(ValueError, match="rows but"):
            check_xy(np.zeros((3, 1)), np.zeros(2))


class TestEncodeLabels:
    def test_sorted_classes(self):
        classes, coded = encode_labels(np.array(["b", "a", "b"]))
        assert list(classes) == ["a", "b"]
        assert list(coded) == [1, 0, 1]

    def test_integer_labels(self):
        classes, coded = encode_labels(np.array([5, 3, 5, 9]))
        assert list(classes) == [3, 5, 9]
        assert list(coded) == [1, 0, 1, 2]

    def test_single_class(self):
        classes, coded = encode_labels(np.array([7, 7]))
        assert list(classes) == [7]
        assert list(coded) == [0, 0]
