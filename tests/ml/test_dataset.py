"""Dataset model tests."""

import numpy as np
import pytest

from repro.ml.dataset import Dataset, DatasetError


def simple():
    return Dataset(
        ("a", "b"),
        np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]),
        np.array([0, 1, 0]),
        name="t",
        row_ids=("r0", "r1", "r2"),
    )


class TestConstruction:
    def test_shape_properties(self):
        ds = simple()
        assert ds.n_rows == 3
        assert ds.n_features == 2

    def test_name_count_mismatch(self):
        with pytest.raises(DatasetError):
            Dataset(("a",), np.zeros((2, 2)), np.zeros(2))

    def test_duplicate_names(self):
        with pytest.raises(DatasetError):
            Dataset(("a", "a"), np.zeros((2, 2)), np.zeros(2))

    def test_target_length_mismatch(self):
        with pytest.raises(DatasetError):
            Dataset(("a",), np.zeros((2, 1)), np.zeros(3))

    def test_row_ids_mismatch(self):
        with pytest.raises(DatasetError):
            Dataset(("a",), np.zeros((2, 1)), np.zeros(2), row_ids=("x",))

    def test_non_2d_rejected(self):
        with pytest.raises(DatasetError):
            Dataset(("a",), np.zeros(3), np.zeros(3))

    def test_from_rows_union_of_keys(self):
        ds = Dataset.from_rows(
            [{"a": 1.0}, {"b": 2.0}], [0, 1]
        )
        assert ds.feature_names == ("a", "b")
        assert ds.x[0, 1] == 0.0  # missing key zero-filled
        assert ds.x[1, 0] == 0.0

    def test_from_rows_empty(self):
        with pytest.raises(DatasetError):
            Dataset.from_rows([], [])


class TestAccess:
    def test_column(self):
        assert list(simple().column("b")) == [2.0, 4.0, 6.0]

    def test_column_missing(self):
        with pytest.raises(DatasetError):
            simple().column("zz")

    def test_class_distribution(self):
        assert simple().class_distribution() == {0: 2, 1: 1}


class TestDerivation:
    def test_select_features_order(self):
        ds = simple().select_features(["b", "a"])
        assert ds.feature_names == ("b", "a")
        assert ds.x[0, 0] == 2.0

    def test_select_features_missing(self):
        with pytest.raises(DatasetError):
            simple().select_features(["zz"])

    def test_select_rows(self):
        ds = simple().select_rows([2, 0])
        assert list(ds.y) == [0, 0]
        assert ds.row_ids == ("r2", "r0")

    def test_with_target(self):
        ds = simple().with_target([9.0, 8.0, 7.0], name="reg")
        assert ds.name == "reg"
        assert list(ds.y) == [9.0, 8.0, 7.0]
        assert ds.feature_names == simple().feature_names
