"""Observability regressions for the cross-validation fold loop.

``cross_validate_*`` reads ``fold_span.duration`` *after* the span
context exits — which is the shared :class:`NullSpan` singleton when
obs is disabled, and a finished real span when enabled. Both shapes,
plus the error path (an estimator raising mid-fold), are pinned here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.ml.crossval import (
    cross_validate_classifier,
    cross_validate_regressor,
)
from repro.ml.dataset import Dataset
from repro.ml.linear import LinearRegressor
from repro.ml.logistic import LogisticRegression


@pytest.fixture(autouse=True)
def obs_isolated():
    obs.disable()
    yield
    obs.disable()


def make_dataset(kind="classification", n=24, seed=3):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 3))
    if kind == "classification":
        y = (x[:, 0] + 0.1 * rng.normal(size=n) > 0).astype(int)
    else:
        y = x[:, 0] * 2.0 + rng.normal(size=n) * 0.1
    rows = [{f"f{j}": float(v) for j, v in enumerate(row)} for row in x]
    return Dataset.from_rows(rows, list(y), name=f"obs-{kind}")


class _ExplodingClassifier:
    def fit(self, x, y):
        raise FloatingPointError("singular fold")


class TestNullSpanSafety:
    def test_classifier_cv_runs_with_obs_disabled(self):
        assert not obs.is_enabled()
        result = cross_validate_classifier(
            make_dataset(), LogisticRegression, k=3)
        assert 0.0 <= result["accuracy"] <= 1.0

    def test_regressor_cv_runs_with_obs_disabled(self):
        assert not obs.is_enabled()
        result = cross_validate_regressor(
            make_dataset("regression"), LinearRegressor, k=3)
        assert "rmse" in result.metrics

    def test_null_span_duration_is_a_float(self):
        # The exact contract the fold loop leans on: reading .duration
        # off the disabled-path singleton is a 0.0, never an error.
        span = obs.span("cv.fold", fold=0)
        with span:
            pass
        assert span.duration == 0.0
        assert span.self_time == 0.0


class TestFoldErrorSpans:
    def test_fold_span_records_error_on_estimator_raise(self):
        obs.configure()
        with pytest.raises(FloatingPointError):
            cross_validate_classifier(
                make_dataset(), _ExplodingClassifier, k=3)
        session = obs.disable()
        folds = [s for s in session.tracer.spans if s.name == "cv.fold"]
        assert len(folds) == 1  # the first fold died, none followed
        assert folds[0].attrs["error"] == "FloatingPointError"

    def test_clean_folds_record_no_error(self):
        obs.configure()
        cross_validate_classifier(make_dataset(), LogisticRegression, k=3)
        session = obs.disable()
        folds = [s for s in session.tracer.spans if s.name == "cv.fold"]
        assert len(folds) == 3
        assert all("error" not in s.attrs for s in folds)
        histogram = session.metrics.snapshot()["histograms"]
        assert histogram["cv.fold_seconds"]["count"] == 3
