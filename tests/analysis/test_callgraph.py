"""Call-graph construction and metric tests."""

import pytest

from repro.analysis.callgraph import build_callgraph, measure_codebase
from repro.lang import Codebase


def codebase_of(**files):
    return Codebase.from_sources("t", {k.replace("_", "."): v for k, v in files.items()})


SIMPLE = """\
static int leaf(int a) {
    return a + 1;
}

static int middle(int a) {
    return leaf(a) + leaf(a + 1);
}

int main(int argc, char **argv) {
    printf("%d", middle(argc));
    return 0;
}
"""


class TestConstruction:
    def test_nodes_are_defined_functions(self):
        g = build_callgraph(codebase_of(a_c=SIMPLE))
        assert set(g.nodes) == {"leaf", "middle", "main"}

    def test_edges_follow_calls(self):
        g = build_callgraph(codebase_of(a_c=SIMPLE))
        assert g.has_edge("middle", "leaf")
        assert g.has_edge("main", "middle")
        assert not g.has_edge("leaf", "middle")

    def test_duplicate_call_single_edge(self):
        g = build_callgraph(codebase_of(a_c=SIMPLE))
        assert g.number_of_edges() == 2

    def test_external_calls_counted(self):
        g = build_callgraph(codebase_of(a_c=SIMPLE))
        assert g.nodes["main"]["external"] == 1  # printf

    def test_cross_file_resolution(self):
        files = {
            "a_c": "int helper(int x) {\n    return x;\n}\n",
            "b_c": "int main(void) {\n    return helper(1);\n}\n",
        }
        g = build_callgraph(codebase_of(**files))
        assert g.has_edge("main", "helper")

    def test_recursion_self_loop(self):
        text = "int fact(int n) {\n  if (n < 2) return 1;\n  return n * fact(n - 1);\n}\n"
        g = build_callgraph(codebase_of(a_c=text))
        assert g.has_edge("fact", "fact")

    def test_python_calls(self):
        text = "def a():\n    return 1\n\ndef b():\n    return a()\n"
        g = build_callgraph(codebase_of(m_py=text))
        assert g.has_edge("b", "a")


class TestMetrics:
    def test_fan_in_out(self):
        m = measure_codebase(codebase_of(a_c=SIMPLE))
        assert m.max_fan_out == 1
        assert m.max_fan_in == 1
        assert m.n_functions == 3

    def test_entry_reachability(self):
        m = measure_codebase(codebase_of(a_c=SIMPLE))
        assert m.n_entry_points == 1
        assert m.reachable_from_entry == 3
        assert m.reachable_fraction == pytest.approx(1.0)

    def test_unreachable_function(self):
        text = SIMPLE + "\nstatic int orphan(void) {\n    return 9;\n}\n"
        m = measure_codebase(codebase_of(a_c=text))
        assert m.reachable_from_entry == 3
        assert m.reachable_fraction < 1.0

    def test_recursive_cycles_counted(self):
        text = (
            "int odd(int n) {\n  if (n == 0) return 0;\n  return even(n - 1);\n}\n"
            "int even(int n) {\n  if (n == 0) return 1;\n  return odd(n - 1);\n}\n"
        )
        m = measure_codebase(codebase_of(a_c=text))
        assert m.n_recursive_cycles == 1

    def test_empty_codebase(self):
        m = measure_codebase(Codebase("empty"))
        assert m.n_functions == 0
        assert m.reachable_fraction == 0.0
