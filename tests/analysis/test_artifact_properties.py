"""Property-based suite for the single-parse artifact and lexer invariants.

Random C-like and Python-like programs (plus raw text noise) must uphold:

- fused ``file_record`` equals the legacy reference on every generated
  program, per analyzer;
- token offsets are non-decreasing and each real token's text is the
  exact source slice at its offset (round-trip invariant);
- concatenating lexemes in offset order reconstructs the file text
  exactly for comment-free single-byte sources, and token line numbers
  agree with ``str.splitlines`` arithmetic in general;
- artifact caching is idempotent: repeated property access returns the
  same objects.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.artifact import FileArtifact, artifact_for
from repro.core.features import file_record, file_record_legacy
from repro.lang import C, PYTHON, tokenize
from repro.lang.sourcefile import SourceFile

from tests.analysis.conftest import fresh_copy


# -- random program generators ------------------------------------------------

@st.composite
def c_like_sources(draw):
    decls = ["int x = 0;", "char *buf;", "double r = 1.5;"]
    stmts = []
    for _ in range(draw(st.integers(1, 6))):
        kind = draw(st.sampled_from(["assign", "if", "while", "call", "cmt"]))
        var = draw(st.sampled_from("abcxyz"))
        val = draw(st.integers(0, 999))
        if kind == "assign":
            stmts.append(f"{var} = {val};")
        elif kind == "if":
            stmts.append(f"if ({var} > {val}) {{ {var} = {val}; }}")
        elif kind == "while":
            stmts.append(f"while ({var} < {val}) {{ {var} = {var} + 1; }}")
        elif kind == "call":
            stmts.append(f"{var} = strcpy(buf, argv[{val % 4}]);")
        else:
            stmts.append(f"/* note {val} */")
    body = "\n".join(decls + stmts)
    return f"int work(int a, char **argv) {{\n{body}\nreturn a;\n}}\n"


@st.composite
def py_like_sources(draw):
    lines = ["def work(a, b):", "    x = 0"]
    for _ in range(draw(st.integers(1, 6))):
        kind = draw(st.sampled_from(["assign", "if", "for", "cmt", "str"]))
        var = draw(st.sampled_from("abxyz"))
        val = draw(st.integers(0, 99))
        if kind == "assign":
            lines.append(f"    {var} = {val}")
        elif kind == "if":
            lines.append(f"    if {var} > {val}:")
            lines.append(f"        {var} = {val} + 1")
        elif kind == "for":
            lines.append(f"    for i in range({val + 1}):")
            lines.append("        x = x + i")
        elif kind == "cmt":
            lines.append(f"    # comment {val}")
        else:
            lines.append(f"    s = \"lit{val}\"")
    lines.append("    return x")
    return "\n".join(lines) + "\n"


def _assert_fused_equals_legacy(path, text):
    source = SourceFile(path, text)
    fused = file_record(source)
    legacy = file_record_legacy(fresh_copy(source))
    assert repr(fused) == repr(legacy), text
    assert json.dumps(fused) == json.dumps(legacy), text


@settings(max_examples=60, deadline=None)
@given(c_like_sources())
def test_fused_equals_legacy_on_random_c(text):
    _assert_fused_equals_legacy("t.c", text)


@settings(max_examples=60, deadline=None)
@given(py_like_sources())
def test_fused_equals_legacy_on_random_python(text):
    _assert_fused_equals_legacy("t.py", text)


# -- lexer round-trip invariants ----------------------------------------------

def _real_tokens(tokens):
    return [t for t in tokens if t.offset >= 0]


@settings(max_examples=120, deadline=None)
@given(st.text(alphabet=st.characters(min_codepoint=9, max_codepoint=126),
               max_size=160),
       st.sampled_from([C, PYTHON]))
def test_offsets_monotonic_and_slices_roundtrip(text, spec):
    tokens = _real_tokens(tokenize(text, spec))
    last = -1
    for tok in tokens:
        assert tok.offset >= last, (text, tok)
        last = tok.offset
        assert text[tok.offset : tok.offset + len(tok.text)] == tok.text, tok


def _terminators(chunk):
    """Line terminators in ``chunk``, with ``\\r\\n`` counting once."""
    return chunk.count("\n") + chunk.count("\r") - chunk.count("\r\n")


@settings(max_examples=120, deadline=None)
@given(st.text(alphabet=st.characters(min_codepoint=9, max_codepoint=126),
               max_size=160),
       st.sampled_from([C, PYTHON]))
def test_line_numbers_track_newline_terminators(text, spec):
    # The lexer's line accounting: 1 + completed \n/\r/\r\n terminators
    # before the token. (str.splitlines also splits on \x0b/\x1c/…, which
    # real languages do not treat as newlines — those stay on one line.)
    n_lines = _terminators(text) + 1
    for tok in _real_tokens(tokenize(text, spec)):
        prefix = text[: tok.offset]
        terms = _terminators(prefix)
        # A trailing '\r' whose pairing '\n' is this very token is half of
        # an incomplete \r\n pair — it has not finished a line yet.
        if prefix.endswith("\r") and tok.text.startswith("\n"):
            terms -= 1
        assert 1 <= tok.line <= n_lines, (text, tok)
        assert tok.line == terms + 1, (text, tok)


@settings(max_examples=80, deadline=None)
@given(c_like_sources())
def test_lexemes_reconstruct_source_modulo_whitespace(text):
    # Dropping every token's exact slice from the file must leave only
    # whitespace behind (nothing is silently swallowed or invented).
    tokens = _real_tokens(tokenize(text, C))
    consumed = bytearray(len(text))
    for tok in tokens:
        for i in range(tok.offset, tok.offset + len(tok.text)):
            consumed[i] = 1
    leftover = "".join(
        ch for ch, used in zip(text, consumed) if not used
    )
    assert leftover.strip() == "", leftover


# -- artifact caching ---------------------------------------------------------

def test_artifact_views_are_cached_and_stable():
    source = SourceFile("t.c", "int f(int a) { if (a) { a = 1; } return a; }\n")
    art = artifact_for(source)
    assert artifact_for(source) is art  # one artifact per SourceFile
    assert art.code_tokens is art.code_tokens
    assert art.functions is art.functions
    assert art.classes is art.classes
    assert art.cfgs is art.cfgs
    assert art.node_info(0) is art.node_info(0)
    assert len(art.function_cfgs()) == len(art.functions)


def test_artifact_not_pickled_with_sourcefile():
    import pickle

    source = SourceFile("t.c", "int f(void) { return 0; }\n")
    artifact_for(source).functions  # populate the cache
    clone = pickle.loads(pickle.dumps(source))
    assert clone._artifact is None
    assert isinstance(artifact_for(clone), FileArtifact)
    assert repr(artifact_for(clone).functions) == \
        repr(artifact_for(source).functions)
