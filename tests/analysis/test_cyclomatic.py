"""McCabe cyclomatic complexity tests."""

import pytest

from repro.lang import Codebase, SourceFile, extract_functions
from repro.analysis.cyclomatic import (
    codebase_complexity,
    complexity_distribution,
    file_complexities,
    file_complexity,
    function_complexity,
)


def c_complexities(text):
    return file_complexities(SourceFile("t.c", text))


class TestFunctionComplexity:
    def test_straight_line_is_one(self):
        reports = c_complexities("int f(void) {\n    return 1;\n}\n")
        assert reports[0].complexity == 1

    def test_single_if(self):
        reports = c_complexities("int f(int a) {\n  if (a) return 1;\n  return 0;\n}\n")
        assert reports[0].complexity == 2

    def test_if_else_counts_once(self):
        # else adds no decision; if/else is complexity 2.
        reports = c_complexities(
            "int f(int a) {\n  if (a) { return 1; } else { return 0; }\n}\n"
        )
        assert reports[0].complexity == 2

    def test_loop_counts(self):
        reports = c_complexities(
            "int f(int n) {\n  int s = 0;\n  for (int i = 0; i < n; i++) s++;\n"
            "  while (n--) s++;\n  return s;\n}\n"
        )
        assert reports[0].complexity == 3

    def test_boolean_operators_count(self):
        reports = c_complexities(
            "int f(int a, int b) {\n  if (a && b || a) return 1;\n  return 0;\n}\n"
        )
        assert reports[0].complexity == 4  # if + && + ||

    def test_switch_cases_count(self):
        reports = c_complexities(
            "int f(int a) {\n  switch (a) {\n  case 1: return 1;\n"
            "  case 2: return 2;\n  default: return 0;\n  }\n}\n"
        )
        assert reports[0].complexity == 3  # two cases (default free)

    def test_ternary_counts(self):
        reports = c_complexities("int f(int a) {\n  return a ? 1 : 0;\n}\n")
        assert reports[0].complexity == 2

    def test_c_sample_values(self, c_source):
        by_name = {r.name: r.complexity for r in file_complexities(c_source)}
        # helper: for + && + if = 4; main: if + switch-case + while = varies
        assert by_name["helper"] == 4
        assert by_name["main"] >= 4

    def test_python_decisions(self, py_source):
        reports = file_complexities(py_source)
        by_name = {r.name: r.complexity for r in reports}
        assert by_name["greet"] == 3  # if + for
        assert by_name["run"] == 2  # except


class TestFileAndCodebase:
    def test_file_complexity_sums_functions(self, c_source):
        total = file_complexity(c_source)
        assert total == sum(r.complexity for r in file_complexities(c_source))

    def test_stray_toplevel_decisions_counted(self):
        src = SourceFile("t.py", "import os\nif os.name == 'posix':\n    X = 1\n")
        assert file_complexity(src) >= 1

    def test_codebase_sums_files(self, mixed_codebase):
        assert codebase_complexity(mixed_codebase) == sum(
            file_complexity(f) for f in mixed_codebase
        )

    def test_distribution_keys(self, mixed_codebase):
        dist = complexity_distribution(mixed_codebase)
        assert set(dist) == {"mean", "max", "p90", "over_10"}
        assert dist["max"] >= dist["p90"] >= 0
        assert 0 <= dist["over_10"] <= 1

    def test_distribution_empty(self):
        dist = complexity_distribution(Codebase("empty"))
        assert dist["mean"] == 0.0
