"""OO design-security metric tests."""

import pytest

from repro.analysis.oo import measure_codebase
from repro.lang import Codebase


JAVA_PAIR = {
    "Account.java": """\
public class Account {
    public int balance;
    private String owner;

    public Account(String owner) {
        this.owner = owner;
    }

    public void deposit(int amount) {
        balance = balance + amount;
        audit(amount);
    }

    private void audit(int amount) {
        Logger.log(amount);
    }
}
""",
    "Teller.java": """\
public class Teller extends Worker {
    private Account current;

    public void process(int amount) {
        deposit(amount);
    }
}
""",
    "Worker.java": """\
public class Worker {
    protected int id;

    public void clock() {
        id = id + 1;
    }
}
""",
}

PY_CLASSES = {
    "model.py": """\
class Base:
    def setup(self):
        self.visible = 1
        self._hidden = 2


class Child(Base):
    def run(self):
        self.setup()
        self.result = 3
        return self.result
""",
}


class TestJava:
    @pytest.fixture(scope="class")
    def metrics(self):
        return measure_codebase(Codebase.from_sources("bank", JAVA_PAIR))

    def test_class_count(self, metrics):
        assert metrics.n_classes == 3

    def test_method_distribution(self, metrics):
        # Account: ctor + deposit + audit; Teller: process; Worker: clock.
        assert metrics.max_methods_per_class == 3
        assert metrics.mean_methods_per_class == pytest.approx(5 / 3)

    def test_public_method_fraction(self, metrics):
        # audit() is private; the other four are public -> 4/5.
        assert metrics.public_method_fraction == pytest.approx(4 / 5)

    def test_public_field_fraction(self, metrics):
        # balance public; owner, current private; id protected -> 1/4.
        assert metrics.public_field_fraction == pytest.approx(1 / 4)

    def test_coupling(self, metrics):
        # Teller.process calls deposit (owned by Account) -> coupling 1.
        assert metrics.max_coupling == 1

    def test_inheritance_depth(self, metrics):
        # Teller extends Worker -> depth 1.
        assert metrics.max_inheritance_depth == 1

    def test_accessibility_combined(self, metrics):
        expected = (4 / 5 + 1 / 4) / 2
        assert metrics.accessibility == pytest.approx(expected)


class TestPython:
    @pytest.fixture(scope="class")
    def metrics(self):
        return measure_codebase(Codebase.from_sources("py", PY_CLASSES))

    def test_class_count(self, metrics):
        assert metrics.n_classes == 2

    def test_attribute_visibility(self, metrics):
        # visible, result public; _hidden private -> 2/3.
        assert metrics.public_field_fraction == pytest.approx(2 / 3)

    def test_inheritance(self, metrics):
        assert metrics.max_inheritance_depth == 1

    def test_coupling_cross_class_call(self, metrics):
        # Child.run calls setup (owned by Base).
        assert metrics.max_coupling == 1


class TestDegenerate:
    def test_pure_c_all_zero(self, c_source):
        metrics = measure_codebase(Codebase("c", [c_source]))
        assert metrics.n_classes == 0
        assert metrics.accessibility == 0.0

    def test_empty(self):
        assert measure_codebase(Codebase("e")).n_classes == 0
