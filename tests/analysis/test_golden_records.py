"""Golden feature-row regression: committed expectations, readable diffs.

``tests/data/golden/`` holds a small hand-written source tree plus the
``file_record`` output and merged feature row the analyzer set produced
when the expectations were generated (``scripts/regen_golden.py``). Any
drift in any analyzer shows up here as a field-level diff — and demands
an ``ANALYZER_SET_VERSION`` bump, which is exactly what the single-parse
refactor must NOT need.
"""

import json
import os

import pytest

from repro.core.features import file_record, merge_records
from repro.lang.sourcefile import Codebase

from tests.analysis.conftest import GOLDEN_DIR, GOLDEN_TREE


def _load(name):
    with open(os.path.join(GOLDEN_DIR, name)) as fh:
        return json.load(fh)


@pytest.fixture()
def golden_codebase():
    return Codebase.from_directory(GOLDEN_TREE, name="golden")


def _diff_lines(expected, actual, prefix=""):
    """Human-readable field-level diff between two nested JSON values."""
    lines = []
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            where = f"{prefix}.{key}" if prefix else str(key)
            if key not in expected:
                lines.append(f"  + {where}: unexpected {actual[key]!r}")
            elif key not in actual:
                lines.append(f"  - {where}: missing (expected {expected[key]!r})")
            else:
                lines.extend(_diff_lines(expected[key], actual[key], where))
        if list(expected) != list(actual) and set(expected) == set(actual):
            lines.append(f"  ~ {prefix or '<root>'}: key order changed")
    elif expected != actual:
        lines.append(f"  ~ {prefix}: expected {expected!r}, got {actual!r}")
    return lines


def _assert_json_equal(expected, actual, label):
    diff = _diff_lines(expected, actual)
    assert not diff, f"{label} drifted (ANALYZER_SET_VERSION bump needed?):\n" \
        + "\n".join(diff)


def test_golden_file_records_unchanged(golden_codebase):
    expected = _load("expected_records.json")
    actual = {f.path: file_record(f) for f in golden_codebase.files}
    actual = json.loads(json.dumps(actual))  # JSON round-trip, like the cache
    assert sorted(actual) == sorted(expected)
    for path in sorted(expected):
        _assert_json_equal(expected[path], actual[path], f"record[{path}]")


def test_golden_feature_row_unchanged(golden_codebase):
    expected = _load("expected_row.json")
    records = [file_record(f) for f in golden_codebase.files]
    row = json.loads(json.dumps(merge_records(golden_codebase, records)))
    _assert_json_equal(expected, row, "feature row")
    assert list(row) == list(expected), "feature order changed"


def test_golden_row_bytes_unchanged(golden_codebase):
    # The strongest form: the serialised bytes are identical, which is
    # what the PR5 digest cache actually keys on.
    expected_bytes = json.dumps(_load("expected_records.json"),
                                sort_keys=True).encode()
    actual = {f.path: file_record(f) for f in golden_codebase.files}
    actual_bytes = json.dumps(json.loads(json.dumps(actual)),
                              sort_keys=True).encode()
    assert actual_bytes == expected_bytes
