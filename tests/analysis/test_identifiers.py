"""Identifier-quality metric tests."""

import math

import pytest

from repro.analysis.identifiers import measure_codebase, measure_file
from repro.lang import Codebase, SourceFile


def src(text, path="t.c"):
    return SourceFile(path, text)


class TestBasics:
    def test_counts(self):
        m = measure_file(src("alpha = beta + alpha;"))
        assert m.n_occurrences == 3
        assert m.n_distinct == 2

    def test_mean_length_weighted(self):
        m = measure_file(src("ab = abcd;"))
        assert m.mean_length == pytest.approx(3.0)

    def test_empty_file(self):
        m = measure_file(src(""))
        assert m.n_occurrences == 0
        assert m.vocabulary_richness == 0.0

    def test_keywords_not_counted(self):
        m = measure_file(src("int value;"))
        assert m.n_distinct == 1  # `int` is a keyword


class TestSmellSignals:
    def test_conventional_counters_not_short(self):
        m = measure_file(src("for (int i = 0; i < n; i++) { total += i; }"))
        assert m.short_name_fraction == 0.0

    def test_cryptic_short_names_flagged(self):
        m = measure_file(src("qq = ab + qq;"))
        assert m.short_name_fraction == 1.0

    def test_numeric_suffixes(self):
        m = measure_file(src("buf2 = buf3;"))
        assert m.numeric_suffix_fraction == 1.0

    def test_pure_number_not_suffix(self):
        m = measure_file(src("value = other;"))
        assert m.numeric_suffix_fraction == 0.0


class TestEntropy:
    def test_single_identifier_zero_entropy(self):
        m = measure_file(src("spam = spam + spam;"))
        assert m.entropy == 0.0

    def test_uniform_two_identifiers_one_bit(self):
        m = measure_file(src("alpha = beta;"))
        assert m.entropy == pytest.approx(1.0)

    def test_richer_vocabulary_higher_entropy(self):
        poor = measure_file(src("a3 = a3 + a3 + a3;"))
        rich = measure_file(src("alpha = beta + gamma + delta;"))
        assert rich.entropy > poor.entropy


class TestCodebase:
    def test_aggregates_files(self, mixed_codebase):
        m = measure_codebase(mixed_codebase)
        assert m.n_occurrences > 0
        assert 0.0 < m.vocabulary_richness <= 1.0
        assert math.isfinite(m.entropy)
