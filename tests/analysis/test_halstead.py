"""Halstead measure tests."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import SourceFile, tokenize, C
from repro.analysis.halstead import (
    HalsteadMetrics,
    measure_codebase,
    measure_file,
    measure_tokens,
)


class TestCounts:
    def test_simple_expression(self):
        # `a = b + 1;` -> operators {=, +, ;} x3, operands {a, b, 1} x3
        m = measure_tokens(tokenize("a = b + 1;", C))
        assert m.distinct_operators == 3
        assert m.distinct_operands == 3
        assert m.total_operators == 3
        assert m.total_operands == 3

    def test_repeated_operand_counts_total_not_distinct(self):
        m = measure_tokens(tokenize("a = a + a;", C))
        assert m.distinct_operands == 1
        assert m.total_operands == 3

    def test_keywords_are_operators(self):
        m = measure_tokens(tokenize("return x;", C))
        assert m.distinct_operators == 2  # return, ;
        assert m.distinct_operands == 1

    def test_comments_ignored(self):
        a = measure_tokens(tokenize("x = 1; // note", C))
        b = measure_tokens(tokenize("x = 1;", C))
        assert a == b


class TestDerived:
    def test_vocabulary_and_length(self):
        m = HalsteadMetrics(2, 3, 10, 15)
        assert m.vocabulary == 5
        assert m.length == 25

    def test_volume_formula(self):
        m = HalsteadMetrics(2, 3, 10, 15)
        assert m.volume == pytest.approx(25 * math.log2(5))

    def test_difficulty_formula(self):
        m = HalsteadMetrics(4, 5, 10, 15)
        assert m.difficulty == pytest.approx((4 / 2) * (15 / 5))

    def test_effort_is_difficulty_times_volume(self):
        m = HalsteadMetrics(4, 5, 10, 15)
        assert m.effort == pytest.approx(m.difficulty * m.volume)

    def test_estimated_bugs(self):
        m = HalsteadMetrics(4, 5, 10, 15)
        assert m.estimated_bugs == pytest.approx(m.volume / 3000.0)

    def test_time_is_effort_over_18(self):
        m = HalsteadMetrics(4, 5, 10, 15)
        assert m.time_seconds == pytest.approx(m.effort / 18.0)

    def test_estimated_length(self):
        m = HalsteadMetrics(4, 8, 0, 0)
        assert m.estimated_length == pytest.approx(4 * 2 + 8 * 3)

    def test_empty_metrics_all_zero(self):
        m = HalsteadMetrics(0, 0, 0, 0)
        assert m.volume == 0.0
        assert m.difficulty == 0.0
        assert m.effort == 0.0
        assert m.estimated_length == 0.0


class TestAggregation:
    def test_add(self):
        a = HalsteadMetrics(1, 2, 3, 4)
        b = HalsteadMetrics(10, 20, 30, 40)
        c = a + b
        assert c == HalsteadMetrics(11, 22, 33, 44)

    def test_codebase_is_sum_of_files(self, mixed_codebase):
        total = measure_codebase(mixed_codebase)
        acc = HalsteadMetrics(0, 0, 0, 0)
        for f in mixed_codebase:
            acc = acc + measure_file(f)
        assert total == acc

    def test_c_sample_nonzero(self, c_source):
        m = measure_file(c_source)
        assert m.volume > 0
        assert m.difficulty > 0


@settings(max_examples=40)
@given(st.text(alphabet="abc123 +-*/;=()", max_size=120))
def test_totals_bound_distincts(text):
    m = measure_tokens(tokenize(text, C))
    assert m.total_operators >= m.distinct_operators
    assert m.total_operands >= m.distinct_operands
    assert m.volume >= 0
