"""Differential harness: the fused single-parse path is byte-identical.

Every per-file collector in ``repro.core.features`` has a fused flavour
(reads the shared :class:`~repro.analysis.artifact.FileArtifact`) and a
legacy flavour (re-derives everything from the SourceFile alone). The
contract of the artifact refactor is *byte identity*: for every file,
every analyzer, fused and legacy must agree on repr, on JSON bytes, and
on dict key order — not merely on numeric equality. The same holds for
the tree-level analyzers with and without an artifact map, and for the
merged feature row.

The legacy side always runs on a fresh SourceFile copy, so it cannot be
contaminated by artifact caches the fused side planted.
"""

import json

import pytest

from repro.analysis import artifact_for, artifacts_for, callgraph, dynamic, oo
from repro.core.features import (
    LEGACY_PER_FILE_COLLECTORS,
    _PER_FILE_COLLECTORS,
    file_record,
    file_record_legacy,
    merge_records,
)
from repro.lang.sourcefile import Codebase
from repro.surface import attack_graph, rasq

from tests.analysis.conftest import fresh_copy

_FUSED = {key: collect for _, key, collect in _PER_FILE_COLLECTORS}
_LEGACY = {key: collect for _, key, collect in LEGACY_PER_FILE_COLLECTORS}


def _key_orders(obj):
    """Nested key-order skeleton of a record, for order-sensitive diffs."""
    if isinstance(obj, dict):
        return [(k, _key_orders(v)) for k, v in obj.items()]
    if isinstance(obj, list):
        return [_key_orders(v) for v in obj]
    return None


def test_collector_tables_align():
    assert list(_FUSED) == list(_LEGACY)
    spans_fused = [span for span, _, _ in _PER_FILE_COLLECTORS]
    spans_legacy = [span for span, _, _ in LEGACY_PER_FILE_COLLECTORS]
    assert spans_fused == spans_legacy


@pytest.mark.parametrize("key", list(_FUSED))
def test_per_analyzer_fused_equals_legacy(key, corpus_files):
    for source in corpus_files:
        fused = _FUSED[key](source)
        legacy = _LEGACY[key](fresh_copy(source))
        assert repr(fused) == repr(legacy), (key, source.path)
        assert json.dumps(fused) == json.dumps(legacy), (key, source.path)
        assert _key_orders(fused) == _key_orders(legacy), (key, source.path)


def test_file_record_fused_equals_legacy(corpus_files):
    for source in corpus_files:
        fused = file_record(source)
        legacy = file_record_legacy(fresh_copy(source))
        assert repr(fused) == repr(legacy), source.path
        assert json.dumps(fused) == json.dumps(legacy), source.path
        assert _key_orders(fused) == _key_orders(legacy), source.path


def test_artifact_views_match_legacy_derivations(corpus_files):
    from repro.lang.parser import extract_classes, extract_functions

    for source in corpus_files:
        art = artifact_for(source)
        fresh = fresh_copy(source)
        assert [repr(t) for t in art.code_tokens] == [
            repr(t) for t in fresh.tokens if t.is_code()
        ], source.path
        assert repr(art.functions) == repr(extract_functions(fresh)), source.path
        assert repr(art.classes) == repr(extract_classes(fresh)), source.path
        assert len(art.cfgs) == len(art.functions)


class TestTreeLevelAnalyzers:
    """measure_codebase with artifacts == without, on independent copies."""

    def _copies(self, corpus_files):
        with_art = Codebase("t", [fresh_copy(f) for f in corpus_files])
        without = Codebase("t", [fresh_copy(f) for f in corpus_files])
        return with_art, artifacts_for(with_art), without

    def test_callgraph(self, corpus_files):
        cb, arts, plain = self._copies(corpus_files)
        assert callgraph.measure_codebase(cb, arts) == \
            callgraph.measure_codebase(plain)

    def test_oo(self, corpus_files):
        cb, arts, plain = self._copies(corpus_files)
        assert oo.measure_codebase(cb, arts) == oo.measure_codebase(plain)

    def test_rasq(self, corpus_files):
        cb, arts, plain = self._copies(corpus_files)
        fused = rasq.measure_codebase(cb, arts)
        legacy = rasq.measure_codebase(plain)
        assert fused == legacy
        assert list(fused.channel_counts) == list(legacy.channel_counts)

    def test_attack_graph(self, corpus_files):
        cb, arts, plain = self._copies(corpus_files)
        assert attack_graph.measure_codebase(cb, artifacts=arts) == \
            attack_graph.measure_codebase(plain)

    def test_dynamic(self, corpus_files):
        cb, arts, plain = self._copies(corpus_files)
        assert dynamic.measure_codebase(cb, artifacts=arts) == \
            dynamic.measure_codebase(plain)


def test_merged_row_fused_equals_legacy(corpus_files):
    fused_cb = Codebase("corpus", [fresh_copy(f) for f in corpus_files])
    legacy_cb = Codebase("corpus", [fresh_copy(f) for f in corpus_files])
    fused_records = [file_record(f) for f in fused_cb.files]
    legacy_records = [file_record_legacy(f) for f in legacy_cb.files]
    fused_row = merge_records(fused_cb, fused_records, include_dynamic=True)
    legacy_row = merge_records(legacy_cb, legacy_records, include_dynamic=True)
    assert repr(fused_row) == repr(legacy_row)
    assert list(fused_row) == list(legacy_row)
    assert json.dumps(fused_row) == json.dumps(legacy_row)


def test_rasq_measure_file_matches_single_file_codebase(corpus_files):
    for source in corpus_files:
        per_file = rasq.measure_file(fresh_copy(source))
        wrapped = rasq.measure_codebase(
            Codebase(source.path, [fresh_copy(source)])
        )
        assert per_file == wrapped, source.path
        assert list(per_file.channel_counts) == list(wrapped.channel_counts)
