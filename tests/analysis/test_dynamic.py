"""Dynamic-trace simulator tests."""

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.dynamic import measure_codebase, simulate_cfg
from repro.lang import Codebase, SourceFile, extract_functions


def cfg_of(text, path="t.c"):
    src = SourceFile(path, text)
    fn = extract_functions(src)[0]
    return build_cfg(fn, src)


STRAIGHT = "int f(void) {\n  int a = 1;\n  return a;\n}\n"
BRANCHY = (
    "int f(int a) {\n  if (a > 0) { a = 1; } else { a = 2; }\n"
    "  if (a > 1) { a = 3; }\n  return a;\n}\n"
)
LOOPY = "int f(int n) {\n  while (n > 0) { n = n - 1; }\n  return n;\n}\n"
DANGEROUS = (
    "int f(char *s) {\n  char buf[8];\n  strcpy(buf, s);\n  return 0;\n}\n"
)


class TestSimulateCfg:
    def test_straight_line_full_coverage(self):
        result = simulate_cfg(cfg_of(STRAIGHT), n_walks=3, seed=1)
        assert result.node_coverage == 1.0
        assert result.edge_coverage == 1.0
        assert result.truncated_walks == 0

    def test_branches_partially_covered_with_one_walk(self):
        result = simulate_cfg(cfg_of(BRANCHY), n_walks=1, seed=1)
        assert result.edge_coverage < 1.0

    def test_many_walks_increase_coverage(self):
        cfg = cfg_of(BRANCHY)
        few = simulate_cfg(cfg, n_walks=1, seed=1)
        many = simulate_cfg(cfg, n_walks=50, seed=1)
        assert many.edge_coverage >= few.edge_coverage

    def test_loops_bounded_by_max_steps(self):
        result = simulate_cfg(cfg_of(LOOPY), n_walks=5, max_steps=10, seed=1)
        assert result.mean_trace_length <= 10

    def test_dangerous_execution_counted(self):
        result = simulate_cfg(cfg_of(DANGEROUS), n_walks=4, seed=1)
        assert result.dangerous_executions == 4  # straight line, every walk

    def test_deterministic_per_seed(self):
        cfg = cfg_of(BRANCHY)
        a = simulate_cfg(cfg, n_walks=10, seed=7)
        b = simulate_cfg(cfg, n_walks=10, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        cfg = cfg_of(BRANCHY)
        outcomes = {simulate_cfg(cfg, n_walks=3, seed=s).edge_coverage
                    for s in range(8)}
        assert len(outcomes) > 1

    def test_invalid_walks(self):
        with pytest.raises(ValueError):
            simulate_cfg(cfg_of(STRAIGHT), n_walks=0)

    def test_hot_concentration_bounds(self):
        result = simulate_cfg(cfg_of(LOOPY), n_walks=5, seed=2)
        assert 0.0 < result.hot_concentration <= 1.0


class TestCodebaseMetrics:
    def test_aggregates(self, mixed_codebase):
        m = measure_codebase(mixed_codebase)
        assert 0.0 < m.mean_node_coverage <= 1.0
        assert m.mean_trace_length > 0

    def test_empty(self):
        m = measure_codebase(Codebase("empty"))
        assert m.mean_node_coverage == 0.0
        assert m.dangerous_executions == 0

    def test_deterministic_across_calls(self, mixed_codebase):
        assert measure_codebase(mixed_codebase) == measure_codebase(
            mixed_codebase
        )

    def test_feature_integration(self):
        from repro.core.features import extract_features

        cb = Codebase.from_sources("t", {"a.c": BRANCHY})
        row = extract_features(cb, include_dynamic=True)
        assert "dynamic.node_coverage" in row
        without = extract_features(cb, include_dynamic=False)
        assert "dynamic.node_coverage" not in without
