"""Commit-history, churn, and developer-activity tests."""

import pytest

from repro.analysis.churn import (
    Commit,
    CommitHistory,
    FileDelta,
    churn_metrics,
    developer_activity,
    developer_network,
    file_churn,
)


def history():
    h = CommitHistory()
    h.add(Commit("alice", 0, (FileDelta("a.c", 10, 0),)))
    h.add(Commit("bob", 5, (FileDelta("a.c", 5, 3), FileDelta("b.c", 20, 0))))
    h.add(Commit("alice", 9, (FileDelta("b.c", 1, 1),)))
    h.add(Commit("carol", 20, (FileDelta("c.c", 100, 50),)))
    return h


class TestModel:
    def test_commits_sorted_by_day(self):
        h = CommitHistory()
        h.add(Commit("a", 10, ()))
        h.add(Commit("b", 2, ()))
        assert [c.day for c in h.commits] == [2, 10]

    def test_files_and_authors(self):
        h = history()
        assert h.files == {"a.c", "b.c", "c.c"}
        assert h.authors == {"alice", "bob", "carol"}

    def test_span(self):
        assert history().span_days == 20

    def test_empty_span(self):
        assert CommitHistory().span_days == 0

    def test_touched(self):
        c = Commit("a", 1, (FileDelta("x", 1, 0), FileDelta("y", 2, 2)))
        assert c.touched == {"x", "y"}


class TestFileChurn:
    def test_per_file_stats(self):
        churn = file_churn(history())
        a = churn["a.c"]
        assert a.n_commits == 2
        assert a.lines_added == 15
        assert a.lines_deleted == 3
        assert a.total_churn == 18
        assert a.n_authors == 2
        assert a.days_active == 5

    def test_churn_per_commit(self):
        churn = file_churn(history())
        assert churn["a.c"].churn_per_commit == pytest.approx(9.0)

    def test_empty(self):
        assert file_churn(CommitHistory()) == {}


class TestDeveloperNetwork:
    def test_shared_file_creates_edge(self):
        g = developer_network(history())
        assert g.has_edge("alice", "bob")  # both touched a.c and b.c
        assert not g.has_edge("alice", "carol")

    def test_activity_metrics(self):
        m = developer_activity(history())
        assert m.n_authors == 3
        assert m.n_commits == 4
        assert m.max_authors_per_file == 2
        assert m.n_peripheral_authors >= 1  # carol works alone

    def test_density_single_author(self):
        h = CommitHistory()
        h.add(Commit("solo", 0, (FileDelta("a.c", 1, 0),)))
        assert developer_activity(h).network_density == 0.0


class TestChurnMetrics:
    def test_aggregates(self):
        m = churn_metrics(history())
        assert m.total_churn == 18 + 22 + 150
        assert m.max_file_churn == 150
        assert m.n_high_churn_files == 1

    def test_relative_churn(self):
        m = churn_metrics(history())
        added = 10 + 5 + 20 + 1 + 100
        assert m.relative_churn == pytest.approx(m.total_churn / added)

    def test_empty(self):
        m = churn_metrics(CommitHistory())
        assert m.total_churn == 0
        assert m.relative_churn == 0.0
