"""Function/declaration/variable metric tests."""

import pytest

from repro.analysis.functions import (
    count_declarations,
    count_variables,
    function_table,
    measure_codebase,
    measure_file,
)
from repro.lang import Codebase, SourceFile


class TestDeclarations:
    def test_c_declarations(self):
        src = SourceFile("t.c", "int a;\nchar b;\nstruct foo s;\n")
        assert count_declarations(src) == 3

    def test_python_declarations(self):
        src = SourceFile(
            "t.py", "def f():\n    pass\n\nclass A:\n    pass\n\ng = lambda x: x\n"
        )
        assert count_declarations(src) == 3

    def test_java_declarations(self):
        src = SourceFile("T.java", "int a; final int b = 2; double d;")
        assert count_declarations(src) == 3


class TestVariables:
    def test_assigned_variables_counted(self):
        src = SourceFile("t.c", "a = 1;\nb = 2;\na = 3;\n")
        assert count_variables(src) == 2  # distinct names

    def test_comparison_not_assignment(self):
        src = SourceFile("t.c", "if (a == 1) { b = 2; }")
        assert count_variables(src) == 1

    def test_compound_assignment(self):
        src = SourceFile("t.c", "total += 5;")
        assert count_variables(src) == 1

    def test_walrus_python(self):
        src = SourceFile("t.py", "if (n := read()) > 0:\n    pass\n")
        assert count_variables(src) == 1


class TestFileMetrics:
    def test_c_sample(self, c_source):
        m = measure_file(c_source)
        assert m.n_functions == 2
        assert m.n_public_functions == 1
        assert m.max_params == 3
        assert m.mean_params == pytest.approx(2.5)
        assert m.max_length >= 12

    def test_py_sample(self, py_source):
        m = measure_file(py_source)
        assert m.n_functions == 3
        assert m.total_params == 5  # name,times / self,who / self

    def test_empty(self):
        m = measure_file(SourceFile("t.c", ""))
        assert m.n_functions == 0
        assert m.mean_length == 0.0
        assert m.mean_params == 0.0


class TestCodebaseMetrics:
    def test_aggregates(self, mixed_codebase):
        m = measure_codebase(mixed_codebase)
        assert m.n_functions == 8  # 2 C + 3 Py + 3 Java
        assert m.n_declarations > 0
        assert m.n_variables > 0

    def test_function_table_paths(self, mixed_codebase):
        table = function_table(mixed_codebase)
        assert set(table) == {"main.c", "app.py", "Widget.java"}
        assert len(table["app.py"]) == 3
