"""Reaching definitions, def-use, and taint tests."""

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import (
    measure_codebase,
    reaching_definitions,
    taint_analysis,
)
from repro.lang import Codebase, SourceFile, extract_functions


def analyse(text, path="t.c", name=None):
    src = SourceFile(path, text)
    fns = extract_functions(src)
    fn = fns[0] if name is None else next(f for f in fns if f.name == name)
    cfg = build_cfg(fn, src)
    return cfg, fn


class TestReachingDefinitions:
    def test_straight_line_def_reaches_use(self):
        cfg, _ = analyse("int f(void) {\n  int a = 1;\n  int b = a + 2;\n  return b;\n}")
        rd = reaching_definitions(cfg)
        assert rd.def_use_pairs() >= 2  # a reaches b's def; b reaches return

    def test_redefinition_kills(self):
        cfg, _ = analyse(
            "int f(void) {\n  int a = 1;\n  a = 2;\n  return a;\n}"
        )
        rd = reaching_definitions(cfg)
        # At the return node only the second definition of `a` reaches.
        return_nodes = [
            n for n, d in cfg.graph.nodes(data=True) if d["kind"] == "return"
        ]
        reaching_a = [
            d for d in rd.in_sets[return_nodes[0]] if d[1] == "a"
        ]
        assert len(reaching_a) == 1

    def test_branch_merges_definitions(self):
        cfg, _ = analyse(
            "int f(int c) {\n  int a = 0;\n  if (c) { a = 1; } else { a = 2; }\n"
            "  return a;\n}"
        )
        rd = reaching_definitions(cfg)
        return_nodes = [
            n for n, d in cfg.graph.nodes(data=True) if d["kind"] == "return"
        ]
        reaching_a = {d for d in rd.in_sets[return_nodes[0]] if d[1] == "a"}
        assert len(reaching_a) == 2  # both arms reach the merge

    def test_loop_definition_reaches_itself(self):
        cfg, _ = analyse("int f(int n) {\n  while (n > 0) { n = n - 1; }\n  return n;\n}")
        rd = reaching_definitions(cfg)
        assert rd.max_reaching() >= 1

    def test_compound_assignment_is_def_and_use(self):
        cfg, _ = analyse("int f(int a) {\n  a += 1;\n  return a;\n}")
        rd = reaching_definitions(cfg)
        gen_vars = {v for s in rd.gen.values() for (_, v) in s}
        assert "a" in gen_vars

    def test_increment_is_def(self):
        cfg, _ = analyse("int f(int a) {\n  a++;\n  return a;\n}")
        rd = reaching_definitions(cfg)
        gen_vars = {v for s in rd.gen.values() for (_, v) in s}
        assert "a" in gen_vars


class TestTaint:
    def test_param_taints_sink(self):
        cfg, fn = analyse(
            "int f(char *s) {\n  char buf[8];\n  strcpy(buf, s);\n  return 0;\n}"
        )
        result = taint_analysis(cfg, fn.param_names)
        assert result.tainted_sink_calls == 1

    def test_source_call_taints(self):
        cfg, fn = analyse(
            "int f(void) {\n  char buf[8];\n  char *s;\n  s = getenv(name);\n"
            "  system(s);\n  return 0;\n}"
        )
        result = taint_analysis(cfg, fn.param_names)
        assert result.source_sites == 1
        assert result.tainted_sink_calls >= 1

    def test_untainted_sink_not_flagged(self):
        cfg, fn = analyse(
            "int f(void) {\n  char local[8];\n  int x = 1;\n"
            "  memcpy(local, fixed, x);\n  return 0;\n}"
        )
        result = taint_analysis(cfg, [])
        assert result.tainted_sink_calls == 0

    def test_reassignment_clears_taint(self):
        cfg, fn = analyse(
            "int f(char *s) {\n  char *p;\n  p = s;\n  p = fixed;\n"
            "  system(p);\n  return 0;\n}"
        )
        result = taint_analysis(cfg, fn.param_names)
        # p was overwritten with untainted data before the sink... but the
        # merge over both assignment orderings is linear here, so taint is
        # cleared.
        assert result.tainted_sink_calls == 0

    def test_sink_site_counted_even_untainted(self):
        cfg, _ = analyse("int f(void) {\n  system(fixed);\n  return 0;\n}")
        result = taint_analysis(cfg, [])
        assert result.sink_sites == 1

    def test_python_eval_taint(self):
        cfg, fn = analyse(
            "def f(expr):\n    cmd = expr\n    eval(cmd)\n    return 0\n",
            path="t.py",
        )
        result = taint_analysis(cfg, fn.param_names)
        assert result.tainted_sink_calls == 1


class TestCodebaseMetrics:
    def test_mixed_codebase(self, mixed_codebase):
        m = measure_codebase(mixed_codebase)
        assert m.n_defs > 0
        assert m.n_uses > 0
        assert m.def_use_pairs > 0
        assert m.sink_sites >= 1  # strcpy in the C sample
        assert m.tainted_sink_calls >= 1  # strcpy(buf, argv[1])

    def test_empty(self):
        m = measure_codebase(Codebase("empty"))
        assert m.n_defs == 0 and m.tainted_sink_calls == 0
