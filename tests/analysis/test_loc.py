"""LoC counter tests (the cloc equivalent)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import Codebase, SourceFile
from repro.analysis.loc import (
    LineCounts,
    count_by_language,
    count_codebase,
    count_file,
    kloc,
)


def counts_of(text, path="t.c"):
    return count_file(SourceFile(path, text))


class TestClassification:
    def test_pure_code(self):
        assert counts_of("int x;\nint y;\n") == LineCounts(code=2)

    def test_blank_lines(self):
        c = counts_of("int x;\n\n\nint y;\n")
        assert c.blank == 2 and c.code == 2

    def test_comment_only_line(self):
        c = counts_of("// note\nint x;\n")
        assert c.comment == 1 and c.code == 1

    def test_trailing_comment_counts_as_code(self):
        # cloc convention: mixed line is a code line.
        c = counts_of("int x; // note\n")
        assert c.code == 1 and c.comment == 0

    def test_block_comment_spanning_lines(self):
        c = counts_of("/* a\n b\n c */\nint x;\n")
        assert c.comment == 3 and c.code == 1

    def test_preproc_counted_as_code_and_tallied(self):
        c = counts_of("#include <a.h>\nint x;\n")
        assert c.code == 2 and c.preproc == 1

    def test_string_containing_comment_marker(self):
        c = counts_of('char *s = "//not a comment";\n')
        assert c.code == 1 and c.comment == 0

    def test_python_docstring_is_code(self):
        # Strings are tokens, not comments (matching cloc's treatment of
        # docstrings as code by default).
        c = counts_of('"""doc"""\nx = 1\n', path="t.py")
        assert c.code == 2

    def test_empty_file(self):
        assert counts_of("").total == 0

    def test_total_is_sum(self):
        c = counts_of("int x;\n\n// c\n")
        assert c.total == c.code + c.comment + c.blank == 3

    def test_comment_ratio(self):
        c = counts_of("// a\n// b\nint x;\n")
        assert c.comment_ratio == pytest.approx(2 / 3)

    def test_comment_ratio_empty(self):
        assert counts_of("").comment_ratio == 0.0


class TestAggregation:
    def test_add(self):
        a = LineCounts(code=1, comment=2, blank=3, preproc=1)
        b = LineCounts(code=10, comment=20, blank=30, preproc=0)
        c = a + b
        assert (c.code, c.comment, c.blank, c.preproc) == (11, 22, 33, 1)

    def test_codebase_total(self, mixed_codebase):
        total = count_codebase(mixed_codebase)
        per_file = sum(
            (count_file(f) for f in mixed_codebase), LineCounts()
        )
        assert total == per_file

    def test_by_language(self, mixed_codebase):
        per_lang = count_by_language(mixed_codebase)
        assert set(per_lang) == {"c", "python", "java"}
        assert all(v.code > 0 for v in per_lang.values())

    def test_kloc(self):
        cb = Codebase.from_sources("x", {"a.c": "int a;\n" * 500})
        assert kloc(cb) == pytest.approx(0.5)


@settings(max_examples=50)
@given(st.lists(st.sampled_from(["int x;", "", "// c", "/* b */"]), max_size=40))
def test_every_line_classified_exactly_once(lines):
    text = "\n".join(lines) + ("\n" if lines else "")
    c = counts_of(text)
    assert c.total == len(lines)
