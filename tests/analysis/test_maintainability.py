"""Maintainability Index tests."""

import pytest

from repro.analysis.maintainability import (
    measure_codebase,
    measure_file,
    measure_functions,
    worst_functions,
)
from repro.lang import Codebase, SourceFile


def simple_file():
    return SourceFile("s.c", "int f(void) {\n    return 1;\n}\n")


def gnarly_file():
    body = []
    for i in range(40):
        body.append(f"  if (a > {i}) {{ x = x * {i} + a - b / (c + {i}); }}")
    text = "int g(int a, int b, int c) {\n  int x = 0;\n" + "\n".join(body) \
        + "\n  return x;\n}\n"
    return SourceFile("g.c", text)


class TestFileMI:
    def test_simple_file_high_mi(self):
        report = measure_file(simple_file())
        assert report.mi > 70
        assert report.band == "GREEN"

    def test_gnarly_file_lower_mi(self):
        simple = measure_file(simple_file()).mi
        gnarly = measure_file(gnarly_file()).mi
        assert gnarly < simple

    def test_mi_bounds(self):
        for source in (simple_file(), gnarly_file()):
            assert 0.0 <= measure_file(source).mi <= 100.0

    def test_comment_bonus_non_negative(self):
        commented = SourceFile(
            "c.c", "// explains the routine\n// thoroughly\nint f(void) {\n    return 1;\n}\n"
        )
        assert measure_file(commented).comment_bonus >= 0.0

    def test_empty_file_safe(self):
        report = measure_file(SourceFile("e.c", ""))
        assert 0.0 <= report.mi <= 100.0


class TestFunctionMI:
    def test_per_function_reports(self, c_source):
        reports = measure_functions(c_source)
        assert len(reports) == 2
        assert all(":" in r.name for r in reports)

    def test_worst_functions_sorted(self, mixed_codebase):
        worst = worst_functions(mixed_codebase, k=5)
        values = [r.mi for r in worst]
        assert values == sorted(values)

    def test_worst_functions_k_bound(self, mixed_codebase):
        assert len(worst_functions(mixed_codebase, k=3)) == 3


class TestCodebaseMI:
    def test_codebase_report(self, mixed_codebase):
        report = measure_codebase(mixed_codebase)
        assert report.name == "demo"
        assert 0.0 <= report.mi <= 100.0

    def test_bands(self):
        from repro.analysis.maintainability import MaintainabilityReport

        assert MaintainabilityReport("x", 171.0, 0.0).band == "GREEN"
        assert MaintainabilityReport("x", 25.0, 0.0).band == "YELLOW"
        assert MaintainabilityReport("x", 5.0, 0.0).band == "RED"
