"""Code-smell detector tests."""

import pytest

from repro.analysis.smells import (
    ALL_DETECTORS,
    DUPLICATE_WINDOW,
    LONG_METHOD_LINES,
    commented_out_code,
    deep_nesting,
    detect_codebase,
    detect_file,
    duplicate_code,
    god_files,
    long_lines,
    long_methods,
    long_parameter_lists,
    magic_numbers,
    smell_counts,
    todo_comments,
)
from repro.lang import Codebase, SourceFile


def c_src(text):
    return SourceFile("t.c", text)


class TestLongMethod:
    def test_detected(self):
        body = "\n".join("    x = x + 1;" for _ in range(LONG_METHOD_LINES + 5))
        text = f"int f(int x) {{\n{body}\n    return x;\n}}\n"
        smells = long_methods(c_src(text))
        assert len(smells) == 1
        assert smells[0].kind == "long-method"

    def test_short_method_clean(self, c_source):
        assert long_methods(c_source) == []


class TestLongParameterList:
    def test_detected(self):
        text = "int f(int a, int b, int c, int d, int e, int g) { return 0; }"
        assert len(long_parameter_lists(c_src(text))) == 1

    def test_five_params_ok(self):
        text = "int f(int a, int b, int c, int d, int e) { return 0; }"
        assert long_parameter_lists(c_src(text)) == []


class TestDeepNesting:
    def test_detected(self):
        text = (
            "int f(int a) {\n"
            "  if (a) {\n    if (a) {\n      if (a) {\n        if (a) {\n"
            "          if (a) { a = 1; }\n        }\n      }\n    }\n  }\n"
            "  return a;\n}\n"
        )
        assert len(deep_nesting(c_src(text))) == 1

    def test_shallow_clean(self, c_source):
        assert deep_nesting(c_source) == []


class TestGodFile:
    def test_detected(self):
        text = "int x;\n" * 1100
        assert len(god_files(c_src(text))) == 1

    def test_normal_clean(self, c_source):
        assert god_files(c_source) == []


class TestMagicNumbers:
    def test_detected(self):
        smells = magic_numbers(c_src("int x = 31337;\n"))
        assert len(smells) == 1
        assert "31337" in smells[0].detail

    def test_trivial_values_ignored(self):
        assert magic_numbers(c_src("int x = 0;\nint y = 1;\nint z = 2;\n")) == []

    def test_suffix_normalised(self):
        assert magic_numbers(c_src("long x = 1UL;\n")) == []


class TestComments:
    def test_todo_detected(self):
        smells = todo_comments(c_src("// TODO: fix overflow\nint x;\n"))
        assert len(smells) == 1

    def test_fixme_detected(self):
        assert todo_comments(c_src("/* FIXME later */\n"))

    def test_commented_out_code(self):
        smells = commented_out_code(c_src("// x = compute(a, b);\nint y;\n"))
        assert len(smells) == 1

    def test_prose_comment_clean(self):
        assert commented_out_code(c_src("// computes the sum\nint y;\n")) == []


class TestLongLines:
    def test_detected(self):
        text = "int x; // " + "a" * 130 + "\n"
        assert len(long_lines(c_src(text))) == 1


class TestDuplicateCode:
    def test_detected(self):
        block = "\n".join(f"x{i} = {i};" for i in range(DUPLICATE_WINDOW))
        text = block + "\nint sep;\n" + block + "\n"
        smells = duplicate_code(c_src(text))
        assert len(smells) >= 1
        assert smells[0].kind == "duplicate-code"

    def test_unique_code_clean(self):
        text = "\n".join(f"y{i} = {i} + {i};" for i in range(20))
        assert duplicate_code(c_src(text)) == []


class TestAggregation:
    def test_detect_file_sorted(self, c_source):
        smells = detect_file(c_source)
        assert smells == sorted(smells, key=lambda s: (s.line, s.kind))

    def test_counts_cover_all_kinds(self, mixed_codebase):
        counts = smell_counts(mixed_codebase)
        assert set(counts) == set(ALL_DETECTORS)
        assert all(v >= 0 for v in counts.values())

    def test_counts_match_detection(self, mixed_codebase):
        counts = smell_counts(mixed_codebase)
        assert sum(counts.values()) == len(detect_codebase(mixed_codebase))
