"""Statement tree and CFG tests."""

import networkx as nx
import pytest

from repro.analysis.cfg import CFG, build_cfg, measure_codebase, parse_statements
from repro.analysis.cyclomatic import function_complexity
from repro.lang import Codebase, SourceFile, extract_functions


def cfg_for(text, path="t.c", name=None):
    src = SourceFile(path, text)
    fns = extract_functions(src)
    fn = fns[0] if name is None else next(f for f in fns if f.name == name)
    return build_cfg(fn, src), fn, src


class TestStatementTree:
    def test_if_else_shape(self):
        _, fn, src = cfg_for(
            "int f(int a) {\n  if (a) { a = 1; } else { a = 2; }\n  return a;\n}"
        )
        stmts = parse_statements(fn, src)
        kinds = [s.kind for s in stmts]
        assert kinds == ["if", "return"]
        assert stmts[0].body and stmts[0].orelse

    def test_loop_shape(self):
        _, fn, src = cfg_for("int f(int n) {\n  while (n) { n--; }\n  return n;\n}")
        stmts = parse_statements(fn, src)
        assert stmts[0].kind == "loop"

    def test_do_while(self):
        _, fn, src = cfg_for("int f(int n) {\n  do { n--; } while (n);\n  return n;\n}")
        stmts = parse_statements(fn, src)
        assert stmts[0].kind == "loop"

    def test_switch_cases(self):
        _, fn, src = cfg_for(
            "int f(int a) {\n  switch (a) {\n  case 1: a = 1; break;\n"
            "  default: a = 0;\n  }\n  return a;\n}"
        )
        stmts = parse_statements(fn, src)
        assert stmts[0].kind == "switch"
        assert len(stmts[0].cases) == 2

    def test_python_elif_chain(self):
        _, fn, src = cfg_for(
            "def f(a):\n    if a > 1:\n        return 1\n"
            "    elif a > 0:\n        return 2\n    else:\n        return 3\n",
            path="t.py",
        )
        stmts = parse_statements(fn, src)
        assert stmts[0].kind == "if"
        assert stmts[0].orelse[0].kind == "if"  # elif desugared
        assert stmts[0].orelse[0].orelse  # trailing else attached

    def test_python_try_except(self):
        _, fn, src = cfg_for(
            "def f():\n    try:\n        x = 1\n    except ValueError:\n"
            "        x = 2\n    return x\n",
            path="t.py",
        )
        stmts = parse_statements(fn, src)
        assert stmts[0].kind == "try"
        assert len(stmts[0].cases) == 1


class TestCFGShape:
    def test_straight_line(self):
        cfg, _, _ = cfg_for("int f(void) {\n  int a = 1;\n  return a;\n}")
        assert cfg.cyclomatic == 1
        assert cfg.path_count() == 1

    def test_if_without_else_two_paths(self):
        cfg, _, _ = cfg_for("int f(int a) {\n  if (a) { a = 1; }\n  return a;\n}")
        assert cfg.cyclomatic == 2
        assert cfg.path_count() == 2

    def test_if_else_two_paths(self):
        cfg, _, _ = cfg_for(
            "int f(int a) {\n  if (a) { a = 1; } else { a = 2; }\n  return a;\n}"
        )
        assert cfg.path_count() == 2

    def test_sequential_ifs_multiply_paths(self):
        cfg, _, _ = cfg_for(
            "int f(int a) {\n  if (a) { a = 1; }\n  if (a > 2) { a = 2; }\n"
            "  if (a > 3) { a = 3; }\n  return a;\n}"
        )
        assert cfg.path_count() == 8

    def test_loop_adds_cycle(self):
        cfg, _, _ = cfg_for("int f(int n) {\n  while (n) { n--; }\n  return n;\n}")
        assert cfg.cyclomatic == 2
        assert not nx.is_directed_acyclic_graph(cfg.graph)

    def test_early_return_reaches_exit(self):
        cfg, _, _ = cfg_for(
            "int f(int a) {\n  if (a) { return 1; }\n  return 0;\n}"
        )
        returns = [n for n, d in cfg.graph.nodes(data=True) if d["kind"] == "return"]
        assert len(returns) == 2
        for node in returns:
            assert cfg.graph.has_edge(node, cfg.exit)

    def test_break_targets_loop_exit(self):
        cfg, _, _ = cfg_for(
            "int f(int n) {\n  while (n) {\n    if (n == 3) { break; }\n"
            "    n--;\n  }\n  return n;\n}"
        )
        breaks = [n for n, d in cfg.graph.nodes(data=True) if d["kind"] == "break"]
        assert len(breaks) == 1
        # The break node must NOT jump to function exit directly.
        assert not cfg.graph.has_edge(breaks[0], cfg.exit)

    def test_goto_resolves_to_label(self):
        cfg, _, _ = cfg_for(
            "int f(int a) {\n  if (a) { goto out; }\n  a = 2;\n"
            "out:\n  return a;\n}"
        )
        gotos = [n for n, d in cfg.graph.nodes(data=True) if d["kind"] == "goto"]
        labels = [n for n, d in cfg.graph.nodes(data=True) if d["kind"] == "label"]
        assert len(gotos) == 1 and len(labels) == 1
        assert cfg.graph.has_edge(gotos[0], labels[0])

    def test_empty_function(self):
        cfg, _, _ = cfg_for("int f(void) {\n}\n")
        assert cfg.graph.has_edge(cfg.entry, cfg.exit)
        assert cfg.path_count() == 1

    def test_cfg_cyclomatic_close_to_token_mccabe(self, c_source):
        # The two implementations agree within the switch/boolean-operator
        # convention gap on structured code.
        for fn in extract_functions(c_source):
            cfg = build_cfg(fn, c_source)
            token_cc = function_complexity(fn, c_source)
            assert abs(cfg.cyclomatic - token_cc) <= 2

    def test_max_depth_positive(self, c_source):
        fn = extract_functions(c_source)[0]
        cfg = build_cfg(fn, c_source)
        assert cfg.max_depth() >= 2

    def test_path_count_cap(self):
        text = "int f(int a) {\n" + "".join(
            f"  if (a > {i}) {{ a++; }}\n" for i in range(20)
        ) + "  return a;\n}"
        cfg, _, _ = cfg_for(text)
        assert cfg.path_count(cap=1000) == 1000


class TestPythonCFG:
    def test_for_else_free_loop(self):
        cfg, _, _ = cfg_for(
            "def f(n):\n    total = 0\n    for i in range(n):\n"
            "        total += i\n    return total\n",
            path="t.py",
        )
        assert cfg.cyclomatic == 2

    def test_try_handler_branches(self):
        cfg, _, _ = cfg_for(
            "def f():\n    try:\n        x = 1\n    except ValueError:\n"
            "        x = 2\n    return x\n",
            path="t.py",
        )
        assert cfg.path_count() == 2


class TestCodebaseMetrics:
    def test_measure_mixed(self, mixed_codebase):
        m = measure_codebase(mixed_codebase)
        assert m.n_cfg_nodes > 0
        assert m.n_cfg_edges >= m.n_cfg_nodes - 2
        assert m.n_return_nodes >= 3
        assert m.total_paths >= 1
        assert m.mean_cyclomatic >= 1.0

    def test_empty_codebase(self):
        m = measure_codebase(Codebase("empty"))
        assert m.n_cfg_nodes == 0
        assert m.mean_cyclomatic == 0.0
