"""Shared fixtures for the analysis suite.

The centrepiece is ``corpus_files``: a diverse, deterministic set of
source files — the committed golden tree, synthetic applications in all
four languages, and hand-written lexer edge cases — used by both the
fused-vs-legacy differential harness and the artifact property suite.
"""

import os

import pytest

from repro.lang.sourcefile import Codebase, SourceFile
from repro.synth.appgen import GeneratorConfig, generate_app
from repro.synth.profiles import AppProfile

GOLDEN_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "data", "golden",
)
GOLDEN_TREE = os.path.join(GOLDEN_DIR, "tree")


def _profile(name: str, language: str, **overrides) -> AppProfile:
    defaults = dict(
        name=name,
        language=language,
        kloc=30.0,
        z_complexity=0.8,
        z_danger=0.9,
        z_surface=0.7,
        z_churn=0.0,
        n_vulns=3,
        history_years=4.0,
        network_facing=True,
        n_developers=4,
    )
    defaults.update(overrides)
    return AppProfile(**defaults)


#: Hand-written edge cases: lexer corner constructs that historically
#: diverged between analyzers (unterminated comments, CR/CRLF newlines,
#: digit separators, empty files).
EDGE_CASE_SOURCES = {
    "edge_empty.c": "",
    "edge_unterminated.c": "int x = 1; /* comment never closes\nint y = 2;",
    "edge_crlf.c": "int a;\r\nif (a) {\r\n  a = 2;\r\n}\r\n",
    "edge_lone_cr.c": "int a;\rint b;\rint c;\n",
    "edge_separators.cpp":
        "long big = 1'000'000;\nunsigned mask = 0xFF'FFul;\n"
        "int py_like = 1_000;\n",
    "edge_blockcomment.c":
        "/* a\n * multi-line\n * comment */ int after; /* inline */ int z;\n",
    "edge_strings.py":
        'TEXT = """triple\nquoted\nstring"""\nq = \'unterminated\n',
}


def _synthetic_files():
    files = []
    for lang in ("c", "cpp", "java", "python"):
        app = generate_app(
            _profile(f"corpus-{lang}", lang),
            seed=7,
            config=GeneratorConfig(min_lines=200, max_lines=500),
        )
        # A couple of files per language keeps the suite fast while still
        # exercising every generator construct.
        files.extend(app.codebase.files[:3])
    return files


def _build_corpus():
    files = list(Codebase.from_directory(GOLDEN_TREE, name="golden").files)
    files.extend(_synthetic_files())
    for path, text in sorted(EDGE_CASE_SOURCES.items()):
        files.append(SourceFile(path, text))
    return files


@pytest.fixture(scope="session")
def corpus_files():
    """Deterministic corpus of (path-unique) SourceFiles for equivalence tests."""
    return _build_corpus()


def fresh_copy(source: SourceFile) -> SourceFile:
    """An independent SourceFile with no caches shared with ``source``."""
    return SourceFile(source.path, source.text, source.spec)


@pytest.fixture(scope="session")
def corpus_codebase(corpus_files):
    """The corpus as one Codebase (paths are unique across the corpus)."""
    return Codebase("corpus", [fresh_copy(f) for f in corpus_files])
