"""Tabular dataset model (the Weka ARFF-instances equivalent).

A :class:`Dataset` is an immutable table of named numeric features plus a
target column (class labels for classification hypotheses, floats for
count/severity regression). The feature testbed emits these; every
estimator, preprocessor, and cross-validation routine consumes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


class DatasetError(ValueError):
    """Raised for inconsistent dataset construction or access."""


@dataclass(frozen=True)
class Dataset:
    """An immutable feature table.

    Attributes:
        feature_names: column names, in X's column order.
        x: float matrix (n_rows, n_features).
        y: target vector (n_rows,), any dtype.
        name: human-readable label (e.g. the hypothesis id).
        row_ids: optional stable identifier per row (e.g. app names).
    """

    feature_names: Tuple[str, ...]
    x: np.ndarray
    y: np.ndarray
    name: str = "dataset"
    row_ids: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        x = np.asarray(self.x, dtype=float)
        y = np.asarray(self.y)
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)
        if x.ndim != 2:
            raise DatasetError(f"X must be 2-D, got {x.shape}")
        if len(self.feature_names) != x.shape[1]:
            raise DatasetError(
                f"{len(self.feature_names)} names for {x.shape[1]} columns"
            )
        if len(set(self.feature_names)) != len(self.feature_names):
            raise DatasetError("duplicate feature names")
        if y.shape[0] != x.shape[0]:
            raise DatasetError(f"{x.shape[0]} rows but {y.shape[0]} targets")
        if self.row_ids and len(self.row_ids) != x.shape[0]:
            raise DatasetError("row_ids length mismatch")

    # -- construction --------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Dict[str, float]],
        targets: Sequence,
        name: str = "dataset",
        row_ids: Sequence[str] = (),
    ) -> "Dataset":
        """Build from dict rows; the union of keys becomes the columns.

        Missing keys in a row become 0.0 (the testbed emits complete rows;
        zero-fill keeps ad-hoc construction convenient in tests).
        """
        if not rows:
            raise DatasetError("no rows")
        names = tuple(sorted({k for row in rows for k in row}))
        x = np.array([[float(row.get(k, 0.0)) for k in names] for row in rows])
        return cls(names, x, np.asarray(targets), name=name,
                   row_ids=tuple(row_ids))

    # -- shape ----------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self.x.shape[0]

    @property
    def n_features(self) -> int:
        return self.x.shape[1]

    def column(self, name: str) -> np.ndarray:
        """One feature column by name."""
        try:
            idx = self.feature_names.index(name)
        except ValueError:
            raise DatasetError(f"no feature named {name!r}") from None
        return self.x[:, idx]

    # -- derivation -------------------------------------------------------------

    def select_features(self, names: Sequence[str]) -> "Dataset":
        """A new dataset with only the named columns (in the given order)."""
        indices = []
        for n in names:
            if n not in self.feature_names:
                raise DatasetError(f"no feature named {n!r}")
            indices.append(self.feature_names.index(n))
        return Dataset(
            tuple(names), self.x[:, indices], self.y, name=self.name,
            row_ids=self.row_ids,
        )

    def select_rows(self, indices: Sequence[int]) -> "Dataset":
        """A new dataset with only the given rows."""
        idx = np.asarray(indices, dtype=int)
        row_ids = tuple(self.row_ids[i] for i in idx) if self.row_ids else ()
        return Dataset(
            self.feature_names, self.x[idx], self.y[idx], name=self.name,
            row_ids=row_ids,
        )

    def with_target(self, y: Sequence, name: Optional[str] = None) -> "Dataset":
        """Same features, different target (used per-hypothesis)."""
        return Dataset(
            self.feature_names, self.x, np.asarray(y),
            name=name or self.name, row_ids=self.row_ids,
        )

    def class_distribution(self) -> Dict:
        """Label -> count for classification targets."""
        values, counts = np.unique(self.y, return_counts=True)
        return {v.item() if hasattr(v, "item") else v: int(c)
                for v, c in zip(values, counts)}
