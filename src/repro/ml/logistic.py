"""L2-regularised logistic regression (binary and one-vs-rest).

Gradient descent on the regularised negative log-likelihood. Logistic
regression is the workhorse for the paper's hypotheses because its
*weights are the deliverable*: §5.3 says "each weight in the trained
model shows the importance of the corresponding code property to the
predicted vulnerability", which :meth:`LogisticRegression.weights`
exposes directly.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml.base import Classifier, check_xy, encode_labels


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Clip to keep exp() finite; gradients saturate anyway beyond +-30.
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))


class LogisticRegression(Classifier):
    """Binary/one-vs-rest logistic regression trained by gradient descent."""

    def __init__(
        self,
        learning_rate: float = 0.1,
        l2: float = 1e-3,
        max_iter: int = 500,
        tol: float = 1e-6,
    ):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be > 0")
        if l2 < 0:
            raise ValueError("l2 must be >= 0")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.learning_rate = learning_rate
        self.l2 = l2
        self.max_iter = max_iter
        self.tol = tol
        self.classes_: Optional[np.ndarray] = None
        self.coef_: Optional[np.ndarray] = None  # (n_classes_or_1, n_features)
        self.intercept_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        x = check_xy(x, np.asarray(y))
        self.classes_, coded = encode_labels(np.asarray(y))
        n_classes = len(self.classes_)
        if n_classes < 2:
            # Degenerate single-class training set: constant predictor.
            self.coef_ = np.zeros((1, x.shape[1]))
            self.intercept_ = np.array([np.inf])
            return self
        targets: List[np.ndarray]
        if n_classes == 2:
            targets = [(coded == 1).astype(float)]
        else:
            targets = [(coded == c).astype(float) for c in range(n_classes)]
        coefs = []
        intercepts = []
        for target in targets:
            w, b = self._fit_binary(x, target)
            coefs.append(w)
            intercepts.append(b)
        self.coef_ = np.vstack(coefs)
        self.intercept_ = np.array(intercepts)
        return self

    def _fit_binary(self, x: np.ndarray, target: np.ndarray):
        n, d = x.shape
        w = np.zeros(d)
        b = 0.0
        prev_loss = np.inf
        for _ in range(self.max_iter):
            z = x @ w + b
            p = _sigmoid(z)
            grad_w = x.T @ (p - target) / n + self.l2 * w
            grad_b = float(np.mean(p - target))
            w -= self.learning_rate * grad_w
            b -= self.learning_rate * grad_b
            eps = 1e-12
            loss = float(
                -np.mean(target * np.log(p + eps)
                         + (1 - target) * np.log(1 - p + eps))
                + 0.5 * self.l2 * float(w @ w)
            )
            if abs(prev_loss - loss) < self.tol:
                break
            prev_loss = loss
        return w, b

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = check_xy(x)
        if len(self.classes_) == 1:
            return np.ones((x.shape[0], 1))
        if len(self.classes_) == 2:
            p1 = _sigmoid(x @ self.coef_[0] + self.intercept_[0])
            return np.column_stack([1.0 - p1, p1])
        scores = _sigmoid(x @ self.coef_.T + self.intercept_)
        total = scores.sum(axis=1, keepdims=True)
        total[total == 0.0] = 1.0
        return scores / total

    def weights(self, feature_names) -> List[tuple]:
        """(feature, weight) pairs sorted by |weight| — §5.3's hint list.

        For binary problems the weights are those of the positive class.
        """
        self._require_fitted()
        if len(feature_names) != self.coef_.shape[1]:
            raise ValueError("feature_names length mismatch")
        row = self.coef_[0] if self.coef_.shape[0] == 1 else self.coef_[-1]
        pairs = list(zip(feature_names, row.tolist()))
        pairs.sort(key=lambda p: (-abs(p[1]), p[0]))
        return pairs
