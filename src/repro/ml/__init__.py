"""Learning engine (the Weka equivalent of Figure 4).

Datasets, preprocessing, feature selection, classifiers (ZeroR, OneR,
Gaussian naive Bayes, logistic regression, CART, random forest, k-NN),
regressors (OLS/ridge, CART, random forest), cross-validation, and a full
metric suite.
"""

from repro.ml import (
    arff,
    base,
    baselines,
    calibration,
    crossval,
    dataset,
    ensemble,
    feature_selection,
    forest,
    knn,
    linear,
    logistic,
    metrics,
    naive_bayes,
    preprocess,
    svm,
    tree,
)
from repro.ml.base import Classifier, NotFittedError, Regressor
from repro.ml.baselines import OneR, ZeroR
from repro.ml.calibration import CalibratedClassifier, brier_score
from repro.ml.ensemble import (
    AdaBoostClassifier,
    BaggingClassifier,
    VotingClassifier,
)
from repro.ml.crossval import (
    CVResult,
    cross_validate_classifier,
    cross_validate_regressor,
    kfold_indices,
    stratified_kfold_indices,
)
from repro.ml.dataset import Dataset, DatasetError
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.knn import KNeighborsClassifier
from repro.ml.linear import LinearRegressor
from repro.ml.logistic import LogisticRegression
from repro.ml.naive_bayes import GaussianNB
from repro.ml.svm import LinearSVM, Perceptron
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "AdaBoostClassifier",
    "BaggingClassifier",
    "CVResult",
    "CalibratedClassifier",
    "Classifier",
    "Dataset",
    "DatasetError",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "GaussianNB",
    "KNeighborsClassifier",
    "LinearRegressor",
    "LinearSVM",
    "LogisticRegression",
    "NotFittedError",
    "OneR",
    "Perceptron",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "Regressor",
    "VotingClassifier",
    "ZeroR",
    "arff",
    "base",
    "baselines",
    "brier_score",
    "calibration",
    "cross_validate_classifier",
    "cross_validate_regressor",
    "crossval",
    "dataset",
    "ensemble",
    "feature_selection",
    "forest",
    "kfold_indices",
    "knn",
    "linear",
    "logistic",
    "metrics",
    "naive_bayes",
    "preprocess",
    "svm",
    "stratified_kfold_indices",
    "tree",
]
