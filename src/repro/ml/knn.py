"""k-nearest-neighbours classifier (Weka's IBk)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import Classifier, check_xy, encode_labels


class KNeighborsClassifier(Classifier):
    """Distance-weighted k-NN over standardised Euclidean distance.

    Features are standardised internally (fit statistics from the training
    set) so size-like columns do not dominate the metric.
    """

    def __init__(self, k: int = 5, weighted: bool = True):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.weighted = weighted
        self.classes_: Optional[np.ndarray] = None
        self._x: Optional[np.ndarray] = None
        self._coded: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        y = np.asarray(y)
        x = check_xy(x, y)
        self.classes_, self._coded = encode_labels(y)
        self._mean = x.mean(axis=0)
        std = x.std(axis=0)
        std[std < 1e-10 * (np.abs(self._mean) + 1.0)] = np.inf
        self._std = std
        self._x = (x - self._mean) / self._std
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = (check_xy(x) - self._mean) / self._std
        n_classes = len(self.classes_)
        k = min(self.k, self._x.shape[0])
        out = np.zeros((x.shape[0], n_classes))
        for i, row in enumerate(x):
            dist = np.sqrt(np.sum((self._x - row) ** 2, axis=1))
            nearest = np.argsort(dist, kind="mergesort")[:k]
            if self.weighted:
                weights = 1.0 / (dist[nearest] + 1e-9)
            else:
                weights = np.ones(k)
            for idx, w in zip(nearest, weights):
                out[i, self._coded[idx]] += w
            out[i] /= out[i].sum()
        return out
