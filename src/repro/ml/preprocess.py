"""Preprocessing transforms.

§5.2 names "determining necessary data transformation for numeric
features" as one of the model-refinement challenges. These transforms are
fit on training folds only and applied to held-out folds, mirroring
Weka's filtered-classifier discipline.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import NotFittedError, check_xy


class Transform:
    """Base fit/apply transform over a feature matrix."""

    def fit(self, x: np.ndarray) -> "Transform":
        raise NotImplementedError

    def apply(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def fit_apply(self, x: np.ndarray) -> np.ndarray:
        """Fit on ``x`` then transform it."""
        return self.fit(x).apply(x)


class StandardScaler(Transform):
    """Zero-mean, unit-variance scaling; constant columns stay 0."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = check_xy(x)
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        # A relative threshold: a visually-constant column can have a
        # tiny nonzero std from float rounding, and dividing by it would
        # amplify noise into O(1) garbage.
        tiny = std < 1e-10 * (np.abs(self.mean_) + 1.0)
        std[tiny] = np.inf
        self.std_ = std
        return self

    def apply(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise NotFittedError("StandardScaler is not fitted")
        return (check_xy(x) - self.mean_) / self.std_


class MinMaxScaler(Transform):
    """Scale each column to [0, 1]; constant columns map to 0."""

    def __init__(self) -> None:
        self.min_: Optional[np.ndarray] = None
        self.range_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "MinMaxScaler":
        x = check_xy(x)
        self.min_ = x.min(axis=0)
        span = x.max(axis=0) - self.min_
        span[span < 1e-10 * (np.abs(self.min_) + 1.0)] = np.inf
        self.range_ = span
        return self

    def apply(self, x: np.ndarray) -> np.ndarray:
        if self.min_ is None:
            raise NotFittedError("MinMaxScaler is not fitted")
        return (check_xy(x) - self.min_) / self.range_


class Log1pTransform(Transform):
    """log(1 + x) on non-negative columns; negatives are clipped to 0.

    Size-like code properties (LoC, complexity, counts) span orders of
    magnitude; the paper's own figures work in log space.
    """

    def fit(self, x: np.ndarray) -> "Log1pTransform":
        check_xy(x)
        return self

    def apply(self, x: np.ndarray) -> np.ndarray:
        return np.log1p(np.maximum(check_xy(x), 0.0))


class EqualWidthDiscretizer(Transform):
    """Discretise each column into ``n_bins`` equal-width integer bins."""

    def __init__(self, n_bins: int = 5):
        if n_bins < 2:
            raise ValueError("n_bins must be >= 2")
        self.n_bins = n_bins
        self.edges_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "EqualWidthDiscretizer":
        x = check_xy(x)
        lo = x.min(axis=0)
        hi = x.max(axis=0)
        hi = np.where(hi == lo, lo + 1.0, hi)
        # edges_ has shape (n_bins + 1, n_features).
        self.edges_ = np.linspace(lo, hi, self.n_bins + 1)
        return self

    def apply(self, x: np.ndarray) -> np.ndarray:
        if self.edges_ is None:
            raise NotFittedError("EqualWidthDiscretizer is not fitted")
        x = check_xy(x)
        out = np.zeros_like(x)
        for col in range(x.shape[1]):
            out[:, col] = np.clip(
                np.searchsorted(self.edges_[1:-1, col], x[:, col], side="right"),
                0, self.n_bins - 1,
            )
        return out


class MeanImputer(Transform):
    """Replace NaNs with the column's training mean."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "MeanImputer":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError("X must be 2-D")
        with np.errstate(invalid="ignore"):
            mean = np.nanmean(x, axis=0)
        self.mean_ = np.where(np.isnan(mean), 0.0, mean)
        return self

    def apply(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise NotFittedError("MeanImputer is not fitted")
        x = np.asarray(x, dtype=float).copy()
        mask = np.isnan(x)
        x[mask] = np.broadcast_to(self.mean_, x.shape)[mask]
        return x


class Pipeline(Transform):
    """Sequential composition of transforms."""

    def __init__(self, *steps: Transform):
        if not steps:
            raise ValueError("pipeline needs at least one step")
        self.steps = steps

    def fit(self, x: np.ndarray) -> "Pipeline":
        for step in self.steps:
            x = step.fit_apply(x)
        return self

    def apply(self, x: np.ndarray) -> np.ndarray:
        for step in self.steps:
            x = step.apply(x)
        return x
