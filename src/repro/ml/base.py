"""Estimator interfaces for the learning engine.

The paper leaves the learner open ("a data mining tool, such as Weka");
this package provides the same algorithm families Weka ships, behind two
small abstract interfaces. All estimators are deterministic given their
``seed`` and operate on dense numpy arrays.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np


class NotFittedError(RuntimeError):
    """Raised when predict* is called before fit."""


def check_xy(x: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
    """Validate and coerce a feature matrix (and optional target length)."""
    x = np.asarray(x, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {x.shape}")
    if x.shape[0] == 0:
        raise ValueError("X must have at least one row")
    if not np.isfinite(x).all():
        raise ValueError("X contains NaN or infinite values")
    if y is not None:
        y = np.asarray(y)
        if y.shape[0] != x.shape[0]:
            raise ValueError(
                f"X has {x.shape[0]} rows but y has {y.shape[0]}"
            )
    return x


class Classifier(abc.ABC):
    """A classifier over integer-coded class labels."""

    classes_: np.ndarray

    @abc.abstractmethod
    def fit(self, x: np.ndarray, y: np.ndarray) -> "Classifier":
        """Fit on features ``x`` and labels ``y``; returns self."""

    @abc.abstractmethod
    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class-probability matrix of shape (n_rows, n_classes)."""

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most probable class per row."""
        proba = self.predict_proba(x)
        return self.classes_[np.argmax(proba, axis=1)]

    def _require_fitted(self) -> None:
        if getattr(self, "classes_", None) is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted")


class Regressor(abc.ABC):
    """A regressor over continuous targets."""

    fitted_: bool = False

    @abc.abstractmethod
    def fit(self, x: np.ndarray, y: np.ndarray) -> "Regressor":
        """Fit on features ``x`` and targets ``y``; returns self."""

    @abc.abstractmethod
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted target per row."""

    def _require_fitted(self) -> None:
        if not self.fitted_:
            raise NotFittedError(f"{type(self).__name__} is not fitted")


def encode_labels(y: np.ndarray) -> tuple:
    """(sorted unique classes, integer-coded labels)."""
    classes = np.unique(y)
    index = {c: i for i, c in enumerate(classes)}
    coded = np.array([index[v] for v in y], dtype=int)
    return classes, coded
