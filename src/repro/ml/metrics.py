"""Evaluation metrics for classification and regression."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np


class MetricError(ValueError):
    """Raised for invalid metric inputs."""


def _pair(y_true: Sequence, y_pred: Sequence) -> Tuple[np.ndarray, np.ndarray]:
    t = np.asarray(y_true)
    p = np.asarray(y_pred)
    if t.shape[0] != p.shape[0]:
        raise MetricError("y_true and y_pred lengths differ")
    if t.shape[0] == 0:
        raise MetricError("empty inputs")
    return t, p


# -- classification -----------------------------------------------------------


def accuracy(y_true: Sequence, y_pred: Sequence) -> float:
    """Fraction of exact label matches."""
    t, p = _pair(y_true, y_pred)
    return float(np.mean(t == p))


def confusion_matrix(y_true: Sequence, y_pred: Sequence) -> Dict[tuple, int]:
    """Sparse confusion counts: (true label, predicted label) -> count."""
    t, p = _pair(y_true, y_pred)
    out: Dict[tuple, int] = {}
    for a, b in zip(t, p):
        key = (a.item() if hasattr(a, "item") else a,
               b.item() if hasattr(b, "item") else b)
        out[key] = out.get(key, 0) + 1
    return out


def precision_recall_f1(
    y_true: Sequence, y_pred: Sequence, positive=1
) -> Tuple[float, float, float]:
    """Binary precision/recall/F1 for the ``positive`` label.

    Degenerate denominators yield 0.0 (never NaN), the convention most
    useful when cross-validation folds occasionally miss a class.
    """
    t, p = _pair(y_true, y_pred)
    tp = int(np.sum((t == positive) & (p == positive)))
    fp = int(np.sum((t != positive) & (p == positive)))
    fn = int(np.sum((t == positive) & (p != positive)))
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (2 * precision * recall / (precision + recall)
          if precision + recall else 0.0)
    return precision, recall, f1


def roc_auc(y_true: Sequence, scores: Sequence[float], positive=1) -> float:
    """Area under the ROC curve via the rank (Mann-Whitney) formulation.

    Returns 0.5 when only one class is present (no ranking measurable).
    """
    t, s = _pair(y_true, scores)
    s = s.astype(float)
    pos = s[t == positive]
    neg = s[t != positive]
    if len(pos) == 0 or len(neg) == 0:
        return 0.5
    combined = np.concatenate([pos, neg])
    order = np.argsort(combined, kind="mergesort")
    ranks = np.empty(len(combined), dtype=float)
    i = 0
    while i < len(combined):
        j = i
        # Mid-rank handling of ties.
        while j + 1 < len(combined) and combined[order[j + 1]] == combined[order[i]]:
            j += 1
        mid = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = mid
        i = j + 1
    rank_sum_pos = float(np.sum(ranks[: len(pos)]))
    n_pos, n_neg = len(pos), len(neg)
    u = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return u / (n_pos * n_neg)


# -- regression -----------------------------------------------------------------


def mae(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Mean absolute error."""
    t, p = _pair(y_true, y_pred)
    return float(np.mean(np.abs(t.astype(float) - p.astype(float))))


def rmse(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Root mean squared error."""
    t, p = _pair(y_true, y_pred)
    return float(np.sqrt(np.mean((t.astype(float) - p.astype(float)) ** 2)))


def r2_score(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Coefficient of determination (1 - SS_res/SS_tot)."""
    t, p = _pair(y_true, y_pred)
    t = t.astype(float)
    p = p.astype(float)
    ss_tot = float(np.sum((t - t.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if np.allclose(t, p) else 0.0
    return 1.0 - float(np.sum((t - p) ** 2)) / ss_tot


def within_order_of_magnitude(
    y_true: Sequence[float], y_pred: Sequence[float]
) -> float:
    """Fraction of predictions within 1 order of magnitude of the truth.

    The paper argues sub-order-of-magnitude precision is what single
    metrics cannot deliver; this is the corresponding success criterion
    for count predictions.
    """
    t, p = _pair(y_true, y_pred)
    t = np.maximum(t.astype(float), 0.5)
    p = np.maximum(p.astype(float), 0.5)
    return float(np.mean(np.abs(np.log10(t) - np.log10(p)) <= 1.0))
