"""Linear regression: OLS and ridge (closed form via normal equations)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml.base import Regressor, check_xy


class LinearRegressor(Regressor):
    """Ordinary least squares with optional L2 (ridge) regularisation.

    Solves ``(X'X + l2*I) w = X'y`` with an intercept column; the pseudo-
    inverse path handles rank-deficient design matrices when ``l2 = 0``.
    """

    def __init__(self, l2: float = 0.0):
        if l2 < 0:
            raise ValueError("l2 must be >= 0")
        self.l2 = l2
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearRegressor":
        y = np.asarray(y, dtype=float)
        x = check_xy(x, y)
        n, d = x.shape
        design = np.column_stack([np.ones(n), x])
        if self.l2 > 0:
            penalty = self.l2 * np.eye(d + 1)
            penalty[0, 0] = 0.0  # never regularise the intercept
            coeffs = np.linalg.solve(
                design.T @ design + penalty, design.T @ y
            )
        else:
            coeffs, *_ = np.linalg.lstsq(design, y, rcond=None)
        self.intercept_ = float(coeffs[0])
        self.coef_ = coeffs[1:]
        self.fitted_ = True
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = check_xy(x)
        return x @ self.coef_ + self.intercept_

    def weights(self, feature_names) -> List[tuple]:
        """(feature, weight) pairs sorted by |weight|."""
        self._require_fitted()
        if len(feature_names) != len(self.coef_):
            raise ValueError("feature_names length mismatch")
        pairs = list(zip(feature_names, self.coef_.tolist()))
        pairs.sort(key=lambda p: (-abs(p[1]), p[0]))
        return pairs
