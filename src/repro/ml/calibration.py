"""Probability calibration (Platt scaling) and the Brier score.

The §5.3 workflow turns predicted probabilities into developer-facing
risk bands, so the probabilities themselves need to be trustworthy —
a tree ensemble's vote shares or a boosted margin are rankings, not
calibrated probabilities. :class:`CalibratedClassifier` wraps any binary
classifier, holds out a calibration split, and fits a logistic link from
raw scores to observed outcomes.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

import numpy as np

from repro.ml.base import Classifier, check_xy, encode_labels


def brier_score(y_true: Sequence, probabilities: Sequence[float],
                positive=1) -> float:
    """Mean squared error of predicted probabilities (lower is better)."""
    y = np.asarray(y_true)
    p = np.asarray(probabilities, dtype=float)
    if y.shape[0] != p.shape[0]:
        raise ValueError("length mismatch")
    if y.shape[0] == 0:
        raise ValueError("empty inputs")
    target = (y == positive).astype(float)
    return float(np.mean((p - target) ** 2))


class CalibratedClassifier(Classifier):
    """Platt-scaled wrapper around a binary base classifier.

    The training set is split (stratified) into a fit part and a
    calibration part; a 1-D logistic regression maps the base model's
    raw positive-class score to a calibrated probability.
    """

    def __init__(
        self,
        base_factory: Callable[[], Classifier],
        calibration_fraction: float = 0.3,
        seed: int = 0,
        max_iter: int = 300,
    ):
        if not 0.05 <= calibration_fraction <= 0.5:
            raise ValueError("calibration_fraction must be in [0.05, 0.5]")
        self.base_factory = base_factory
        self.calibration_fraction = calibration_fraction
        self.seed = seed
        self.max_iter = max_iter
        self.classes_: Optional[np.ndarray] = None
        self._base: Optional[Classifier] = None
        self._a: float = 1.0
        self._b: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "CalibratedClassifier":
        y = np.asarray(y)
        x = check_xy(x, y)
        self.classes_, coded = encode_labels(y)
        if len(self.classes_) != 2:
            raise ValueError("CalibratedClassifier is binary-only")
        rng = np.random.default_rng(self.seed)
        # Stratified split: a slice of each class goes to calibration.
        calib_idx = []
        fit_idx = []
        for cls in (0, 1):
            members = np.flatnonzero(coded == cls)
            rng.shuffle(members)
            cut = max(1, int(len(members) * self.calibration_fraction))
            calib_idx.extend(members[:cut].tolist())
            fit_idx.extend(members[cut:].tolist())
        if not fit_idx:
            fit_idx = calib_idx
        self._base = self.base_factory().fit(x[fit_idx], coded[fit_idx])
        raw = self._raw_scores(x[calib_idx])
        target = coded[calib_idx].astype(float)
        self._fit_platt(raw, target)
        return self

    def _raw_scores(self, x: np.ndarray) -> np.ndarray:
        proba = self._base.predict_proba(x)
        classes = list(self._base.classes_)
        if 1 in classes:
            return proba[:, classes.index(1)]
        return np.zeros(x.shape[0])

    def _fit_platt(self, scores: np.ndarray, target: np.ndarray) -> None:
        a, b = 1.0, 0.0
        lr = 0.5
        for _ in range(self.max_iter):
            z = np.clip(a * scores + b, -30, 30)
            p = 1.0 / (1.0 + np.exp(-z))
            grad_a = float(np.mean((p - target) * scores))
            grad_b = float(np.mean(p - target))
            a -= lr * grad_a
            b -= lr * grad_b
        self._a, self._b = a, b

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = check_xy(x)
        z = np.clip(self._a * self._raw_scores(x) + self._b, -30, 30)
        p1 = 1.0 / (1.0 + np.exp(-z))
        return np.column_stack([1.0 - p1, p1])
