"""Feature selection: "filtering features that are irrelevant" (§5.2)."""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.ml.dataset import Dataset
from repro.stats.correlation import pearson


def correlation_ranking(dataset: Dataset) -> List[Tuple[str, float]]:
    """Features ranked by |Pearson correlation| with the target.

    The target is coerced to float (binary hypotheses become 0/1), so the
    score is the point-biserial correlation for classification targets.
    """
    y = np.asarray(dataset.y, dtype=float)
    ranked = [
        (name, abs(pearson(dataset.x[:, i], y)))
        for i, name in enumerate(dataset.feature_names)
    ]
    ranked.sort(key=lambda item: (-item[1], item[0]))
    return ranked


def _entropy(labels: np.ndarray) -> float:
    _, counts = np.unique(labels, return_counts=True)
    probs = counts / counts.sum()
    return float(-np.sum(probs * np.log2(probs)))


def information_gain(
    column: np.ndarray, labels: np.ndarray, n_bins: int = 5
) -> float:
    """Information gain of a (binned) numeric feature about the labels.

    The feature is discretised into equal-width bins first, as Weka's
    InfoGainAttributeEval does for numeric attributes.
    """
    column = np.asarray(column, dtype=float)
    labels = np.asarray(labels)
    lo, hi = column.min(), column.max()
    if hi == lo:
        return 0.0
    edges = np.linspace(lo, hi, n_bins + 1)[1:-1]
    binned = np.searchsorted(edges, column, side="right")
    base = _entropy(labels)
    conditional = 0.0
    for b in np.unique(binned):
        mask = binned == b
        conditional += mask.mean() * _entropy(labels[mask])
    return max(base - conditional, 0.0)


def information_gain_ranking(
    dataset: Dataset, n_bins: int = 5
) -> List[Tuple[str, float]]:
    """Features ranked by information gain about the target."""
    ranked = [
        (name, information_gain(dataset.x[:, i], dataset.y, n_bins))
        for i, name in enumerate(dataset.feature_names)
    ]
    ranked.sort(key=lambda item: (-item[1], item[0]))
    return ranked


def select_top_k(
    dataset: Dataset, k: int, method: str = "correlation"
) -> Dataset:
    """Keep the ``k`` most relevant features by the chosen ranking."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if method == "correlation":
        ranked = correlation_ranking(dataset)
    elif method == "information_gain":
        ranked = information_gain_ranking(dataset)
    else:
        raise ValueError(f"unknown method {method!r}")
    keep = [name for name, _ in ranked[:k]]
    return dataset.select_features(keep)
