"""Linear SVM (Pegasos) and the perceptron.

Weka's SMO is the remaining classic classifier family the engine lacked;
Pegasos (primal sub-gradient SGD on the hinge loss) gives the same linear
maximum-margin behaviour in a few dozen lines. Probabilities come from a
logistic squash of the margin, which is enough for ranking (AUC) and for
the pipeline's probability interface; calibrate with
:class:`~repro.ml.calibration.CalibratedClassifier` when Brier quality
matters.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.ml.base import Classifier, check_xy, encode_labels


class LinearSVM(Classifier):
    """Binary linear SVM trained with the Pegasos sub-gradient method."""

    def __init__(
        self,
        l2: float = 0.01,
        epochs: int = 30,
        seed: int = 0,
    ):
        if l2 <= 0:
            raise ValueError("l2 must be > 0")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.l2 = l2
        self.epochs = epochs
        self.seed = seed
        self.classes_: Optional[np.ndarray] = None
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearSVM":
        y = np.asarray(y)
        x = check_xy(x, y)
        self.classes_, coded = encode_labels(y)
        if len(self.classes_) != 2:
            raise ValueError("LinearSVM is binary-only")
        target = np.where(coded == 1, 1.0, -1.0)
        n, d = x.shape
        rng = np.random.default_rng(self.seed)
        w = np.zeros(d)
        b = 0.0
        t = 0
        for _ in range(self.epochs):
            for i in rng.permutation(n):
                t += 1
                eta = 1.0 / (self.l2 * t)
                margin = target[i] * (x[i] @ w + b)
                if margin < 1.0:
                    w = (1.0 - eta * self.l2) * w + eta * target[i] * x[i]
                    b += eta * target[i]
                else:
                    w = (1.0 - eta * self.l2) * w
        self.coef_ = w
        self.intercept_ = b
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Signed margins (positive = positive class)."""
        self._require_fitted()
        x = check_xy(x)
        return x @ self.coef_ + self.intercept_

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        margins = np.clip(self.decision_function(x), -30, 30)
        p1 = 1.0 / (1.0 + np.exp(-margins))
        return np.column_stack([1.0 - p1, p1])

    def weights(self, feature_names):
        """(feature, weight) pairs sorted by |weight| (§5.3 introspection)."""
        self._require_fitted()
        if len(feature_names) != len(self.coef_):
            raise ValueError("feature_names length mismatch")
        pairs = list(zip(feature_names, self.coef_.tolist()))
        pairs.sort(key=lambda p: (-abs(p[1]), p[0]))
        return pairs


class Perceptron(Classifier):
    """The classic averaged perceptron (binary)."""

    def __init__(self, epochs: int = 20, seed: int = 0):
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.epochs = epochs
        self.seed = seed
        self.classes_: Optional[np.ndarray] = None
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "Perceptron":
        y = np.asarray(y)
        x = check_xy(x, y)
        self.classes_, coded = encode_labels(y)
        if len(self.classes_) != 2:
            raise ValueError("Perceptron is binary-only")
        target = np.where(coded == 1, 1.0, -1.0)
        n, d = x.shape
        rng = np.random.default_rng(self.seed)
        w = np.zeros(d)
        b = 0.0
        # Averaging accumulators (the standard trick for stability).
        w_sum = np.zeros(d)
        b_sum = 0.0
        count = 0
        for _ in range(self.epochs):
            for i in rng.permutation(n):
                if target[i] * (x[i] @ w + b) <= 0.0:
                    w = w + target[i] * x[i]
                    b += target[i]
                w_sum += w
                b_sum += b
                count += 1
        self.coef_ = w_sum / count
        self.intercept_ = b_sum / count
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = check_xy(x)
        margins = np.clip(x @ self.coef_ + self.intercept_, -30, 30)
        p1 = 1.0 / (1.0 + np.exp(-margins))
        return np.column_stack([1.0 - p1, p1])
