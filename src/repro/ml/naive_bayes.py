"""Gaussian naive Bayes classifier."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import Classifier, check_xy, encode_labels

_MIN_VAR = 1e-9


class GaussianNB(Classifier):
    """Naive Bayes with per-class Gaussian feature likelihoods.

    Variances are floored at a small epsilon (plus Weka-style relative
    smoothing) so constant features never produce singular likelihoods.
    """

    def __init__(self, var_smoothing: float = 1e-9):
        if var_smoothing < 0:
            raise ValueError("var_smoothing must be >= 0")
        self.var_smoothing = var_smoothing
        self.classes_: Optional[np.ndarray] = None
        self._prior: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._var: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianNB":
        x = check_xy(x, np.asarray(y))
        self.classes_, coded = encode_labels(np.asarray(y))
        n_classes = len(self.classes_)
        n_features = x.shape[1]
        self._prior = np.bincount(coded, minlength=n_classes) / len(coded)
        self._mean = np.zeros((n_classes, n_features))
        self._var = np.zeros((n_classes, n_features))
        global_var = x.var(axis=0).max() if x.shape[0] > 1 else 1.0
        epsilon = self.var_smoothing * max(global_var, 1.0) + _MIN_VAR
        for c in range(n_classes):
            rows = x[coded == c]
            self._mean[c] = rows.mean(axis=0)
            self._var[c] = rows.var(axis=0) + epsilon
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = check_xy(x)
        log_proba = np.log(self._prior)[None, :] + np.zeros(
            (x.shape[0], len(self.classes_))
        )
        for c in range(len(self.classes_)):
            diff = x - self._mean[c]
            log_like = -0.5 * (
                np.log(2.0 * np.pi * self._var[c]) + diff**2 / self._var[c]
            )
            log_proba[:, c] += log_like.sum(axis=1)
        # Normalise in log space for numeric stability.
        log_proba -= log_proba.max(axis=1, keepdims=True)
        proba = np.exp(log_proba)
        return proba / proba.sum(axis=1, keepdims=True)
