"""Random forests: bagged CART trees with feature subsampling."""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.ml.base import Classifier, Regressor, check_xy, encode_labels
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


class RandomForestClassifier(Classifier):
    """Bootstrap-aggregated decision trees (sqrt-feature subsampling)."""

    def __init__(
        self,
        n_trees: int = 25,
        max_depth: int = 8,
        min_leaf: int = 2,
        seed: int = 0,
    ):
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.seed = seed
        self.classes_: Optional[np.ndarray] = None
        self._trees: List[DecisionTreeClassifier] = []
        self.feature_importances_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        y = np.asarray(y)
        x = check_xy(x, y)
        self.classes_, coded = encode_labels(y)
        rng = np.random.default_rng(self.seed)
        n, d = x.shape
        max_features = max(1, int(math.sqrt(d)))
        self._trees = []
        importances = np.zeros(d)
        for t in range(self.n_trees):
            idx = rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_leaf=self.min_leaf,
                max_features=max_features,
                seed=self.seed + 7919 * t,
            )
            # Train on the label codes so every tree shares class order.
            tree.fit(x[idx], coded[idx])
            self._trees.append(tree)
            if tree.feature_importances_ is not None:
                importances += tree.feature_importances_
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = check_xy(x)
        n_classes = len(self.classes_)
        acc = np.zeros((x.shape[0], n_classes))
        for tree in self._trees:
            proba = tree.predict_proba(x)
            # A bootstrap sample can miss classes; align by code value.
            for j, cls in enumerate(tree.classes_):
                acc[:, int(cls)] += proba[:, j]
        return acc / len(self._trees)


class RandomForestRegressor(Regressor):
    """Bootstrap-aggregated regression trees."""

    def __init__(
        self,
        n_trees: int = 25,
        max_depth: int = 8,
        min_leaf: int = 2,
        seed: int = 0,
    ):
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.seed = seed
        self._trees: List[DecisionTreeRegressor] = []
        self.feature_importances_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        y = np.asarray(y, dtype=float)
        x = check_xy(x, y)
        rng = np.random.default_rng(self.seed)
        n, d = x.shape
        max_features = max(1, d // 3)
        self._trees = []
        importances = np.zeros(d)
        for t in range(self.n_trees):
            idx = rng.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_leaf=self.min_leaf,
                max_features=max_features,
                seed=self.seed + 104729 * t,
            )
            tree.fit(x[idx], y[idx])
            self._trees.append(tree)
            if tree.feature_importances_ is not None:
                importances += tree.feature_importances_
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances
        self.fitted_ = True
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = check_xy(x)
        acc = np.zeros(x.shape[0])
        for tree in self._trees:
            acc += tree.predict(x)
        return acc / len(self._trees)
