"""Trivial baseline learners (Weka's ZeroR and OneR).

ZeroR predicts the majority class and anchors every benchmark: a model is
only informative if it beats ZeroR. OneR picks the single best
discretised feature — effectively the "one metric" approach the paper
argues against, making it the perfect single-metric baseline in the
ablation experiments.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import Classifier, check_xy, encode_labels


class ZeroR(Classifier):
    """Majority-class predictor."""

    def __init__(self) -> None:
        self.classes_: Optional[np.ndarray] = None
        self._proba: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "ZeroR":
        check_xy(x, np.asarray(y))
        self.classes_, coded = encode_labels(np.asarray(y))
        counts = np.bincount(coded, minlength=len(self.classes_))
        self._proba = counts / counts.sum()
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = check_xy(x)
        return np.tile(self._proba, (x.shape[0], 1))


class OneR(Classifier):
    """Single-feature rule learner.

    Discretises each feature into ``n_bins`` equal-width bins, assigns each
    bin its training-majority class, and keeps the feature with the lowest
    training error.
    """

    def __init__(self, n_bins: int = 5):
        if n_bins < 2:
            raise ValueError("n_bins must be >= 2")
        self.n_bins = n_bins
        self.classes_: Optional[np.ndarray] = None
        self.feature_: int = -1
        self._edges: Optional[np.ndarray] = None
        self._bin_class: Optional[np.ndarray] = None
        self._fallback: int = 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "OneR":
        x = check_xy(x, np.asarray(y))
        self.classes_, coded = encode_labels(np.asarray(y))
        n_classes = len(self.classes_)
        majority = int(np.argmax(np.bincount(coded, minlength=n_classes)))
        self._fallback = majority

        best_err = None
        for col in range(x.shape[1]):
            lo, hi = x[:, col].min(), x[:, col].max()
            if hi == lo:
                continue
            edges = np.linspace(lo, hi, self.n_bins + 1)[1:-1]
            binned = np.searchsorted(edges, x[:, col], side="right")
            bin_class = np.full(self.n_bins, majority, dtype=int)
            errors = 0
            for b in range(self.n_bins):
                mask = binned == b
                if not mask.any():
                    continue
                counts = np.bincount(coded[mask], minlength=n_classes)
                bin_class[b] = int(np.argmax(counts))
                errors += int(mask.sum() - counts.max())
            if best_err is None or errors < best_err:
                best_err = errors
                self.feature_ = col
                self._edges = edges
                self._bin_class = bin_class
        if self.feature_ < 0:
            # All features constant: behave like ZeroR.
            self._edges = np.array([])
            self._bin_class = np.array([majority])
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = check_xy(x)
        n_classes = len(self.classes_)
        proba = np.zeros((x.shape[0], n_classes))
        if self.feature_ < 0:
            proba[:, self._fallback] = 1.0
            return proba
        binned = np.searchsorted(self._edges, x[:, self.feature_], side="right")
        binned = np.clip(binned, 0, len(self._bin_class) - 1)
        for i, b in enumerate(binned):
            proba[i, self._bin_class[b]] = 1.0
        return proba
