"""Cross-validation — "with cross validation within the ground truth" (§1).

Stratified k-fold for classification hypotheses (fold class ratios track
the full set) and plain k-fold for regression targets. ``cross_validate``
re-fits a fresh estimator per fold via a factory, applies an optional
transform fit on the training fold only, and aggregates the metric suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.ml.base import Classifier, Regressor
from repro.ml.dataset import Dataset
from repro.ml.metrics import (
    accuracy,
    mae,
    precision_recall_f1,
    r2_score,
    rmse,
    roc_auc,
    within_order_of_magnitude,
)
from repro.ml.preprocess import Transform


class CrossValError(ValueError):
    """Raised for invalid fold configuration."""


def kfold_indices(
    n: int, k: int, seed: int = 0
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """(train, test) index pairs for shuffled k-fold splitting."""
    if k < 2:
        raise CrossValError("k must be >= 2")
    if n < k:
        raise CrossValError(f"cannot split {n} rows into {k} folds")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    folds = np.array_split(order, k)
    out = []
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        out.append((train, test))
    return out


def stratified_kfold_indices(
    labels: Sequence, k: int, seed: int = 0
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Stratified (train, test) pairs: per-class round-robin assignment."""
    if k < 2:
        raise CrossValError("k must be >= 2")
    labels = np.asarray(labels)
    n = len(labels)
    if n < k:
        raise CrossValError(f"cannot split {n} rows into {k} folds")
    rng = np.random.default_rng(seed)
    fold_of = np.zeros(n, dtype=int)
    for cls in np.unique(labels):
        members = np.flatnonzero(labels == cls)
        rng.shuffle(members)
        for pos, idx in enumerate(members):
            fold_of[idx] = pos % k
    out = []
    for i in range(k):
        test = np.flatnonzero(fold_of == i)
        train = np.flatnonzero(fold_of != i)
        if len(test) == 0 or len(train) == 0:
            raise CrossValError("empty fold; reduce k")
        out.append((train, test))
    return out


@dataclass(frozen=True)
class CVResult:
    """Aggregated cross-validation outcome."""

    metrics: Dict[str, float]  # mean over folds
    per_fold: Tuple[Dict[str, float], ...]

    def __getitem__(self, key: str) -> float:
        return self.metrics[key]


def _mean_metrics(folds: List[Dict[str, float]]) -> Dict[str, float]:
    keys = folds[0].keys()
    return {k: float(np.mean([f[k] for f in folds])) for k in keys}


def cross_validate_classifier(
    dataset: Dataset,
    factory: Callable[[], Classifier],
    k: int = 10,
    seed: int = 0,
    transform_factory: Optional[Callable[[], Transform]] = None,
    positive=1,
) -> CVResult:
    """Stratified k-fold CV of a classifier factory on ``dataset``.

    Reports accuracy, precision/recall/F1 and AUC for the ``positive``
    label, averaged over folds.
    """
    splits = stratified_kfold_indices(dataset.y, k, seed)
    per_fold: List[Dict[str, float]] = []
    for fold, (train_idx, test_idx) in enumerate(splits):
        with obs.span("cv.fold", fold=fold, dataset=dataset.name,
                      kind="classification") as fold_span:
            x_train, y_train = dataset.x[train_idx], dataset.y[train_idx]
            x_test, y_test = dataset.x[test_idx], dataset.y[test_idx]
            if transform_factory is not None:
                transform = transform_factory()
                x_train = transform.fit_apply(x_train)
                x_test = transform.apply(x_test)
            model = factory().fit(x_train, y_train)
            pred = model.predict(x_test)
            proba = model.predict_proba(x_test)
            classes = list(model.classes_)
            if positive in classes:
                scores = proba[:, classes.index(positive)]
            else:
                scores = np.zeros(len(y_test))
            precision, recall, f1 = precision_recall_f1(y_test, pred, positive)
            per_fold.append(
                {
                    "accuracy": accuracy(y_test, pred),
                    "precision": precision,
                    "recall": recall,
                    "f1": f1,
                    "auc": roc_auc(y_test, scores, positive),
                }
            )
        obs.observe("cv.fold_seconds", fold_span.duration)
    return CVResult(_mean_metrics(per_fold), tuple(per_fold))


def cross_validate_regressor(
    dataset: Dataset,
    factory: Callable[[], Regressor],
    k: int = 10,
    seed: int = 0,
    transform_factory: Optional[Callable[[], Transform]] = None,
) -> CVResult:
    """k-fold CV of a regressor factory on ``dataset``."""
    splits = kfold_indices(dataset.n_rows, k, seed)
    per_fold: List[Dict[str, float]] = []
    for fold, (train_idx, test_idx) in enumerate(splits):
        with obs.span("cv.fold", fold=fold, dataset=dataset.name,
                      kind="regression") as fold_span:
            x_train = dataset.x[train_idx]
            y_train = np.asarray(dataset.y[train_idx], dtype=float)
            x_test = dataset.x[test_idx]
            y_test = np.asarray(dataset.y[test_idx], dtype=float)
            if transform_factory is not None:
                transform = transform_factory()
                x_train = transform.fit_apply(x_train)
                x_test = transform.apply(x_test)
            model = factory().fit(x_train, y_train)
            pred = model.predict(x_test)
            per_fold.append(
                {
                    "mae": mae(y_test, pred),
                    "rmse": rmse(y_test, pred),
                    "r2": r2_score(y_test, pred),
                    "within_order": within_order_of_magnitude(y_test, pred),
                }
            )
        obs.observe("cv.fold_seconds", fold_span.duration)
    return CVResult(_mean_metrics(per_fold), tuple(per_fold))
