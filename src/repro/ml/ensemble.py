"""Ensemble meta-learners: AdaBoost, bagging, and voting.

Weka's meta-classifier family, which the paper's "machine learning tool
(e.g., Weka)" step would expose. Voting also mirrors Zeng's [69]
combine-several-tools approach at the model level.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.ml.base import Classifier, check_xy, encode_labels
from repro.ml.tree import DecisionTreeClassifier


class AdaBoostClassifier(Classifier):
    """SAMME AdaBoost over shallow decision trees (binary or multiclass).

    Each round fits a depth-limited tree on importance-weighted resamples
    of the data; rounds whose weighted error reaches 1 - 1/K are dropped,
    and a perfect learner short-circuits the ensemble.
    """

    def __init__(
        self,
        n_rounds: int = 30,
        max_depth: int = 2,
        seed: int = 0,
    ):
        if n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        self.n_rounds = n_rounds
        self.max_depth = max_depth
        self.seed = seed
        self.classes_: Optional[np.ndarray] = None
        self._stages: List[DecisionTreeClassifier] = []
        self._alphas: List[float] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "AdaBoostClassifier":
        y = np.asarray(y)
        x = check_xy(x, y)
        self.classes_, coded = encode_labels(y)
        n = x.shape[0]
        n_classes = len(self.classes_)
        if n_classes < 2:
            self._stages, self._alphas = [], []
            return self
        weights = np.full(n, 1.0 / n)
        rng = np.random.default_rng(self.seed)
        self._stages = []
        self._alphas = []
        for t in range(self.n_rounds):
            idx = rng.choice(n, size=n, p=weights)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth, seed=self.seed + 31 * t
            )
            tree.fit(x[idx], coded[idx])
            pred = tree.predict(x).astype(int)
            miss = pred != coded
            error = float(np.sum(weights[miss]))
            if error <= 1e-12:
                # Perfect stage: it alone decides.
                self._stages = [tree]
                self._alphas = [1.0]
                break
            if error >= 1.0 - 1.0 / n_classes:
                continue  # no better than chance under SAMME; skip round
            alpha = math.log((1.0 - error) / error) + math.log(n_classes - 1)
            self._stages.append(tree)
            self._alphas.append(alpha)
            weights = weights * np.exp(alpha * miss)
            weights /= weights.sum()
        if not self._stages:
            # Fall back to a single unweighted tree.
            tree = DecisionTreeClassifier(max_depth=self.max_depth,
                                          seed=self.seed)
            tree.fit(x, coded)
            self._stages = [tree]
            self._alphas = [1.0]
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = check_xy(x)
        n_classes = len(self.classes_)
        votes = np.zeros((x.shape[0], n_classes))
        for tree, alpha in zip(self._stages, self._alphas):
            pred = tree.predict(x).astype(int)
            for i, p in enumerate(pred):
                votes[i, p] += alpha
        total = votes.sum(axis=1, keepdims=True)
        total[total == 0.0] = 1.0
        return votes / total


class BaggingClassifier(Classifier):
    """Bootstrap aggregation over any base classifier factory."""

    def __init__(
        self,
        base_factory: Callable[[], Classifier],
        n_estimators: int = 15,
        seed: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.base_factory = base_factory
        self.n_estimators = n_estimators
        self.seed = seed
        self.classes_: Optional[np.ndarray] = None
        self._members: List[Classifier] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "BaggingClassifier":
        y = np.asarray(y)
        x = check_xy(x, y)
        self.classes_, coded = encode_labels(y)
        rng = np.random.default_rng(self.seed)
        n = x.shape[0]
        self._members = []
        for _ in range(self.n_estimators):
            idx = rng.integers(0, n, size=n)
            member = self.base_factory()
            member.fit(x[idx], coded[idx])
            self._members.append(member)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = check_xy(x)
        n_classes = len(self.classes_)
        acc = np.zeros((x.shape[0], n_classes))
        for member in self._members:
            proba = member.predict_proba(x)
            for j, cls in enumerate(member.classes_):
                acc[:, int(cls)] += proba[:, j]
        return acc / len(self._members)


class VotingClassifier(Classifier):
    """Soft-voting combination of heterogeneous classifiers."""

    def __init__(
        self,
        factories: Sequence[Callable[[], Classifier]],
        weights: Optional[Sequence[float]] = None,
    ):
        if not factories:
            raise ValueError("need at least one member factory")
        if weights is not None and len(weights) != len(factories):
            raise ValueError("weights length must match factories")
        self.factories = list(factories)
        self.weights = list(weights) if weights is not None else None
        self.classes_: Optional[np.ndarray] = None
        self._members: List[Classifier] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "VotingClassifier":
        y = np.asarray(y)
        x = check_xy(x, y)
        self.classes_, coded = encode_labels(y)
        self._members = [f().fit(x, coded) for f in self.factories]
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = check_xy(x)
        n_classes = len(self.classes_)
        weights = self.weights or [1.0] * len(self._members)
        acc = np.zeros((x.shape[0], n_classes))
        for member, weight in zip(self._members, weights):
            proba = member.predict_proba(x)
            for j, cls in enumerate(member.classes_):
                acc[:, int(cls)] += weight * proba[:, j]
        total = acc.sum(axis=1, keepdims=True)
        total[total == 0.0] = 1.0
        return acc / total
