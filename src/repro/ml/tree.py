"""CART decision trees: classifier (Gini) and regressor (variance).

Depth- and leaf-size-bounded binary trees with axis-aligned splits.
``feature_importances`` accumulates impurity decrease per feature — the
tree-family analogue of the logistic weights the paper's §5.3 surfaces to
developers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ml.base import Classifier, Regressor, check_xy, encode_labels


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: Optional[np.ndarray] = None  # class distribution / mean target

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


def _best_split_classification(x, coded, n_classes, min_leaf, rng, max_features):
    n, d = x.shape
    parent_counts = np.bincount(coded, minlength=n_classes)
    parent_impurity = _gini(parent_counts)
    best = None  # (gain, feature, threshold)
    features = np.arange(d)
    if max_features is not None and max_features < d:
        features = rng.choice(d, size=max_features, replace=False)
    for feature in features:
        order = np.argsort(x[:, feature], kind="mergesort")
        xs = x[order, feature]
        ys = coded[order]
        left_counts = np.zeros(n_classes)
        right_counts = parent_counts.astype(float).copy()
        for i in range(n - 1):
            c = ys[i]
            left_counts[c] += 1
            right_counts[c] -= 1
            if xs[i] == xs[i + 1]:
                continue
            n_left = i + 1
            n_right = n - n_left
            if n_left < min_leaf or n_right < min_leaf:
                continue
            impurity = (n_left * _gini(left_counts)
                        + n_right * _gini(right_counts)) / n
            gain = parent_impurity - impurity
            if best is None or gain > best[0]:
                best = (gain, int(feature), float((xs[i] + xs[i + 1]) / 2.0))
    return best


def _best_split_regression(x, y, min_leaf, rng, max_features):
    n, d = x.shape
    parent_var = float(np.var(y)) * n
    best = None
    features = np.arange(d)
    if max_features is not None and max_features < d:
        features = rng.choice(d, size=max_features, replace=False)
    for feature in features:
        order = np.argsort(x[:, feature], kind="mergesort")
        xs = x[order, feature]
        ys = y[order]
        # Prefix sums make each candidate split O(1).
        csum = np.cumsum(ys)
        csum2 = np.cumsum(ys * ys)
        total, total2 = csum[-1], csum2[-1]
        for i in range(n - 1):
            if xs[i] == xs[i + 1]:
                continue
            n_left = i + 1
            n_right = n - n_left
            if n_left < min_leaf or n_right < min_leaf:
                continue
            left_ss = csum2[i] - csum[i] ** 2 / n_left
            right_sum = total - csum[i]
            right_ss = (total2 - csum2[i]) - right_sum**2 / n_right
            gain = parent_var - (left_ss + right_ss)
            if best is None or gain > best[0]:
                best = (gain, int(feature), float((xs[i] + xs[i + 1]) / 2.0))
    return best


class DecisionTreeClassifier(Classifier):
    """Gini-impurity CART classifier."""

    def __init__(
        self,
        max_depth: int = 8,
        min_leaf: int = 2,
        max_features: Optional[int] = None,
        seed: int = 0,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_leaf < 1:
            raise ValueError("min_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.max_features = max_features
        self.seed = seed
        self.classes_: Optional[np.ndarray] = None
        self._root: Optional[_Node] = None
        self.feature_importances_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        x = check_xy(x, np.asarray(y))
        self.classes_, coded = encode_labels(np.asarray(y))
        self.feature_importances_ = np.zeros(x.shape[1])
        rng = np.random.default_rng(self.seed)
        self._root = self._grow(x, coded, depth=0, rng=rng)
        total = self.feature_importances_.sum()
        if total > 0:
            self.feature_importances_ /= total
        return self

    def _grow(self, x, coded, depth, rng) -> _Node:
        n_classes = len(self.classes_)
        counts = np.bincount(coded, minlength=n_classes).astype(float)
        node = _Node(value=counts / counts.sum())
        if depth >= self.max_depth or len(coded) < 2 * self.min_leaf:
            return node
        if len(np.unique(coded)) == 1:
            return node
        best = _best_split_classification(
            x, coded, n_classes, self.min_leaf, rng, self.max_features
        )
        if best is None or best[0] <= 0:
            return node
        gain, feature, threshold = best
        self.feature_importances_[feature] += gain * len(coded)
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(x[mask], coded[mask], depth + 1, rng)
        node.right = self._grow(x[~mask], coded[~mask], depth + 1, rng)
        return node

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = check_xy(x)
        out = np.zeros((x.shape[0], len(self.classes_)))
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out


class DecisionTreeRegressor(Regressor):
    """Variance-reduction CART regressor."""

    def __init__(
        self,
        max_depth: int = 8,
        min_leaf: int = 2,
        max_features: Optional[int] = None,
        seed: int = 0,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_leaf < 1:
            raise ValueError("min_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.max_features = max_features
        self.seed = seed
        self._root: Optional[_Node] = None
        self.feature_importances_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        y = np.asarray(y, dtype=float)
        x = check_xy(x, y)
        self.feature_importances_ = np.zeros(x.shape[1])
        rng = np.random.default_rng(self.seed)
        self._root = self._grow(x, y, depth=0, rng=rng)
        total = self.feature_importances_.sum()
        if total > 0:
            self.feature_importances_ /= total
        self.fitted_ = True
        return self

    def _grow(self, x, y, depth, rng) -> _Node:
        node = _Node(value=np.array([float(np.mean(y))]))
        if depth >= self.max_depth or len(y) < 2 * self.min_leaf:
            return node
        if np.allclose(y, y[0]):
            return node
        best = _best_split_regression(x, y, self.min_leaf, rng, self.max_features)
        if best is None or best[0] <= 0:
            return node
        gain, feature, threshold = best
        self.feature_importances_[feature] += gain
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(x[mask], y[mask], depth + 1, rng)
        node.right = self._grow(x[~mask], y[~mask], depth + 1, rng)
        return node

    def predict(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = check_xy(x)
        out = np.zeros(x.shape[0])
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value[0]
        return out
