"""Pluggable storage backends behind the feature cache.

:class:`~repro.engine.cache.FeatureCache` owns the *semantics* of the
cache — entry layout, validation, miss-on-corruption, hit/miss/error
counters. This module owns the *storage*: a :class:`CacheBackend` maps
a digest key to one parsed JSON entry and back, and the cache never
cares which medium sits underneath. Two backends ship:

- :class:`FilesystemBackend` — the historical sharded-directory JSON
  layout (``<root>/<key[:2]>/<key>.json``, atomic temp-file writes,
  crash-orphan sweeping). One cache per volume, zero dependencies.
- :class:`SqliteBackend` — a single SQLite database file in WAL mode,
  built for *fleet-scale sharing*: many concurrent processes (CI
  runners, serving daemons, parallel ``analyze`` runs) point at one DB
  on a shared volume and the k-th consumer finds the cache warm.
  ``PRAGMA busy_timeout`` plus a bounded retry loop absorb
  ``SQLITE_BUSY`` under write contention; readers never block writers
  (and vice versa) thanks to WAL.

Selection is URI-style through the one ``cache_dir`` string every
layer already passes around (:func:`backend_from_spec`):

- ``sqlite:PATH`` — the SQLite backend on ``PATH``;
- anything else — a filesystem cache rooted at that directory.

Byte-identity across backends is by construction: both serialise the
same entry dict with :func:`json.dumps` defaults and deserialise with
:func:`json.loads`, so key order and float bits survive identically —
a row served from SQLite is ``repr``-equal to the same row served from
a directory cache.

Failure contract (shared by all backends):

- :meth:`~CacheBackend.load` returns ``None`` for a plain miss and
  raises :class:`BackendReadError` for anything unreadable — a corrupt
  DB file, a truncated JSON entry, an I/O error. The cache translates
  that into a counted miss, never an exception.
- :meth:`~CacheBackend.store` returns ``False`` on failure (read-only
  volume, locked-out DB); caching silently degrades to recomputation.
"""

from __future__ import annotations

import glob
import json
import os
import sqlite3
import tempfile
import threading
import time
from typing import Dict, Optional, Protocol, runtime_checkable

#: Scheme prefix selecting the SQLite backend in a ``cache_dir`` spec.
SQLITE_SCHEME = "sqlite:"

#: How long one SQLite connection lets the engine wait out a writer
#: before surfacing SQLITE_BUSY (milliseconds).
SQLITE_BUSY_TIMEOUT_MS = 5_000

#: Bounded retries on top of the busy timeout; each waits a beat so a
#: herd of writers interleaves instead of failing together.
SQLITE_BUSY_RETRIES = 5
_RETRY_SLEEP_S = 0.05


class BackendReadError(Exception):
    """The backend could not produce a parseable entry for a key.

    Raised for *corruption-shaped* failures only (unreadable medium,
    undecodable payload); a plain not-found is ``load() -> None``. The
    cache counts these as ``engine.cache.read_errors`` and treats them
    as misses.
    """


@runtime_checkable
class CacheBackend(Protocol):
    """What the feature cache requires of a storage medium.

    ``kind`` is a short stable tag (``"fs"``, ``"sqlite"``) surfaced in
    ``/healthz`` and ``--profile``; ``location`` a human-readable
    description of where the data lives.
    """

    kind: str
    location: str

    def load(self, key: str) -> Optional[object]:
        """The parsed JSON entry under ``key``; None on a plain miss.

        Raises :class:`BackendReadError` when the medium or payload is
        unreadable.
        """
        ...  # pragma: no cover - protocol

    def store(self, key: str, entry: Dict[str, object]) -> bool:
        """Persist ``entry`` under ``key``; False on failure."""
        ...  # pragma: no cover - protocol


def backend_from_spec(spec: str) -> "CacheBackend":
    """Resolve a ``cache_dir`` string into a backend instance.

    ``sqlite:PATH`` selects :class:`SqliteBackend` on ``PATH``; any
    other non-empty string is a :class:`FilesystemBackend` root.
    """
    if spec.startswith(SQLITE_SCHEME):
        path = spec[len(SQLITE_SCHEME):]
        if not path:
            raise ValueError(
                "sqlite cache spec needs a database path "
                "(e.g. sqlite:/shared/repro-cache.db)")
        return SqliteBackend(path)
    if not spec:
        raise ValueError("cache spec must not be empty")
    return FilesystemBackend(spec)


#: When this process started (module import is close enough): any
#: ``*.tmp`` in a filesystem cache older than this cannot belong to a
#: live write of ours, and concurrent *other* processes replace their
#: temp files within milliseconds — so older temp files are crash
#: leftovers.
_PROCESS_START = time.time()


class FilesystemBackend:
    """Sharded per-entry JSON files under a directory (the default).

    Layout: ``<root>/<key[:2]>/<key>.json`` — entries shard by the
    first two hex characters of the digest so a corpus-scale cache
    never piles tens of thousands of files into one directory. Writes
    go through a temp file and ``os.replace`` so a crashed run can
    leave at worst a stale temp file, not a half-written entry;
    ``store`` opportunistically sweeps temp files older than the
    current process out of the shard it is writing to.
    """

    kind = "fs"

    def __init__(self, root: str):
        self.root = root
        self.location = root

    def entry_path(self, key: str) -> str:
        """Where the entry for ``key`` lives (shard dir + file)."""
        return os.path.join(self.root, key[:2], f"{key}.json")

    def load(self, key: str) -> Optional[object]:
        try:
            with open(self.entry_path(key), encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise BackendReadError(str(exc)) from exc

    def store(self, key: str, entry: Dict[str, object]) -> bool:
        path = self.entry_path(key)
        shard = os.path.dirname(path)
        try:
            os.makedirs(shard, exist_ok=True)
            self._sweep_stale_tmp(shard)
            fd, tmp = tempfile.mkstemp(dir=shard, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(entry, handle)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full cache dir degrades to no caching.
            return False
        return True

    @staticmethod
    def _sweep_stale_tmp(shard: str) -> None:
        """Unlink crash-orphaned ``*.tmp`` files in ``shard``.

        Only temp files last modified before this process started are
        touched: anything newer could be a concurrent writer's
        in-flight entry (which exists for milliseconds between
        ``mkstemp`` and ``os.replace``). Purely best-effort — a
        vanished or unremovable file is somebody else's progress, not
        an error.
        """
        for tmp in glob.glob(os.path.join(shard, "*.tmp")):
            try:
                if os.path.getmtime(tmp) < _PROCESS_START:
                    os.unlink(tmp)
            except OSError:
                pass


class SqliteBackend:
    """One SQLite database file shared by many concurrent consumers.

    WAL journaling lets readers proceed while a writer commits, so k
    parallel ``analyze`` runs against one DB on a shared volume cost
    ~1× extraction total instead of k× cold starts. Write contention
    is absorbed twice over: ``PRAGMA busy_timeout`` makes SQLite wait
    out a competing writer, and a bounded retry loop re-attempts the
    statement on a surfaced ``SQLITE_BUSY`` before giving up (a lost
    store only costs a future recompute, never correctness).

    Thread/process safety: one connection per process (reopened after
    a fork — worker processes must never share the parent's handle),
    serialised by an internal lock. Payloads are the exact
    ``json.dumps`` text the filesystem backend writes, so entries are
    byte-identical across backends.
    """

    kind = "sqlite"

    _SCHEMA = ("CREATE TABLE IF NOT EXISTS entries ("
               "key TEXT PRIMARY KEY, payload TEXT NOT NULL)")

    def __init__(self, path: str,
                 busy_timeout_ms: int = SQLITE_BUSY_TIMEOUT_MS,
                 busy_retries: int = SQLITE_BUSY_RETRIES):
        self.path = path
        self.location = f"{SQLITE_SCHEME}{path}"
        self.busy_timeout_ms = int(busy_timeout_ms)
        self.busy_retries = max(0, int(busy_retries))
        self._lock = threading.Lock()
        self._conn: Optional[sqlite3.Connection] = None
        self._pid: Optional[int] = None

    # -- connection management ----------------------------------------

    def _connection(self) -> sqlite3.Connection:
        """The process-local connection, (re)opened lazily.

        A forked child (the engine's process pool) sees a pid mismatch
        and opens its own handle instead of corrupting the parent's.
        Raises ``sqlite3.Error`` when the file is not a database — the
        caller maps that to miss/degraded-write semantics.
        """
        if self._conn is not None and self._pid == os.getpid():
            return self._conn
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        conn = sqlite3.connect(
            self.path,
            timeout=self.busy_timeout_ms / 1000.0,
            check_same_thread=False,
        )
        try:
            conn.execute(f"PRAGMA busy_timeout={self.busy_timeout_ms}")
            # WAL so concurrent readers never block the single writer;
            # NORMAL sync is durable enough for a cache (a torn last
            # commit after power loss is just a future miss).
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(self._SCHEMA)
            conn.commit()
        except BaseException:
            conn.close()
            raise
        self._conn = conn
        self._pid = os.getpid()
        return conn

    def _execute(self, statement: str, params: tuple):
        """Run one statement, retrying a bounded number of busy errors.

        ``busy_timeout`` already makes SQLite wait inside the call;
        the loop on top covers the deadlock-avoidance cases where
        SQLITE_BUSY surfaces immediately regardless of the timeout.
        """
        attempts = 0
        while True:
            try:
                return self._connection().execute(statement, params)
            except sqlite3.OperationalError as exc:
                message = str(exc).lower()
                busy = "locked" in message or "busy" in message
                if not busy or attempts >= self.busy_retries:
                    raise
                attempts += 1
                time.sleep(_RETRY_SLEEP_S * attempts)

    # -- CacheBackend protocol ----------------------------------------

    def load(self, key: str) -> Optional[object]:
        with self._lock:
            try:
                cursor = self._execute(
                    "SELECT payload FROM entries WHERE key = ?", (key,))
                row = cursor.fetchone()
            except sqlite3.Error as exc:
                # Not-a-database, locked out past retries, I/O error:
                # all corruption-shaped, all a counted miss upstream.
                raise BackendReadError(str(exc)) from exc
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except (TypeError, ValueError) as exc:
            raise BackendReadError(
                f"undecodable cache payload: {exc}") from exc

    def store(self, key: str, entry: Dict[str, object]) -> bool:
        payload = json.dumps(entry)
        with self._lock:
            try:
                self._execute(
                    "INSERT OR REPLACE INTO entries (key, payload) "
                    "VALUES (?, ?)", (key, payload))
                self._connection().commit()
            except sqlite3.Error:
                return False
        return True

    def close(self) -> None:
        """Release the process-local connection (tests, daemons)."""
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:  # pragma: no cover - best effort
                    pass
                self._conn = None
                self._pid = None
