"""Content-addressed feature cache: JSON entries keyed by task digest.

Storage is pluggable (see :mod:`repro.engine.backends`): the cache
resolves its ``cache_dir`` spec into a :class:`CacheBackend` — the
historical sharded-directory layout for a plain path, a shared SQLite
WAL database for ``sqlite:PATH`` — and every entry kind (whole rows,
per-file records, per-app manifests) goes through the same two-method
protocol. This module owns everything above the medium: entry layout,
validation, miss-on-corruption semantics, and the obs counters.

Each entry carries::

    {"cache_format": 1, "analyzer_version": "...", "app": "...",
     "row": {"size.kloc": 8.0, ...}}

``cache_format`` guards the entry layout itself; ``analyzer_version``
re-checks the analyzer set (it is already folded into the digest, so a
mismatch here means a hand-edited or collided entry — treated as a
miss). Rows are stored without key sorting so a cached row round-trips
with the exact key order ``extract_features`` produced, keeping cached
and cold results bit-identical — on every backend, since all backends
serialise the same entry dict through ``json``.

Robustness: any unreadable, truncated, corrupt, or wrong-shape entry is
a *miss* (counted separately as a read error), never an exception — the
engine recomputes and overwrites it. A failed store (read-only volume,
locked-out database) degrades to no caching.

Counters (live in the :mod:`repro.obs` registry when enabled):
``engine.cache.hits`` / ``.misses`` / ``.stores`` /
``.read_errors`` (corrupt or unreadable entries on ``get``) /
``.write_errors`` (failed stores on ``put``).

Besides whole-row entries the cache also stores *per-file analyzer
records* (``get_file``/``put_file``) — the incremental-extraction layer
keys them on ``digest(path + language + content + analyzer version)``
and merges cached records instead of re-running per-file analyzers.
File traffic is counted separately (``engine.cache.file_hits`` /
``.file_misses`` / ``.file_stores``) so the row-level counters keep
meaning "one application (re)analysed". An advisory per-app *manifest*
(``get_manifest``/``put_manifest``) maps file paths to their last-seen
digests; it only feeds the ``engine.delta.*`` classification counters
and is read/written silently — a lost manifest costs telemetry, never
correctness.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro import obs
from repro.engine.backends import (
    BackendReadError,
    CacheBackend,
    backend_from_spec,
)
from repro.engine.digest import ANALYZER_SET_VERSION

#: Bump when the entry layout (not the analyzer set) changes.
CACHE_FORMAT_VERSION = 1


class FeatureCache:
    """A content-addressed store of feature rows over a pluggable backend.

    ``cache_dir`` is the user-facing spec string: a directory path for
    the default filesystem layout, ``sqlite:PATH`` for the shared
    SQLite backend. Pass ``backend`` to supply a ready
    :class:`~repro.engine.backends.CacheBackend` directly (tests,
    embedders); the spec string then only serves as the display name.
    """

    def __init__(self, cache_dir: str,
                 analyzer_version: str = ANALYZER_SET_VERSION,
                 backend: Optional[CacheBackend] = None):
        self.cache_dir = cache_dir
        self.analyzer_version = analyzer_version
        self.backend = backend if backend is not None \
            else backend_from_spec(cache_dir)

    def entry_path(self, digest: str) -> str:
        """Where the entry for ``digest`` lives (filesystem backend only).

        Backends without per-entry files (SQLite) have no meaningful
        path; callers that need one are inspecting the on-disk layout
        and should be looking at the backend directly.
        """
        path = getattr(self.backend, "entry_path", None)
        if path is None:
            raise AttributeError(
                f"{self.backend.kind!r} cache backend has no "
                f"per-entry files")
        return path(digest)

    def get(self, digest: str) -> Optional[Dict[str, float]]:
        """The cached row for ``digest``, or None on miss/corruption."""
        try:
            entry = self.backend.load(digest)
        except BackendReadError:
            # Corrupt/truncated/foreign entry or unreadable medium:
            # recompute rather than crash.
            obs.incr("engine.cache.read_errors")
            obs.incr("engine.cache.misses")
            return None
        if entry is None:
            obs.incr("engine.cache.misses")
            return None
        try:
            row = self._validate(entry)
        except (ValueError, TypeError, KeyError):
            obs.incr("engine.cache.read_errors")
            obs.incr("engine.cache.misses")
            return None
        obs.incr("engine.cache.hits")
        return row

    def put(self, digest: str, row: Dict[str, float],
            app: str = "") -> None:
        """Store ``row`` under ``digest`` (atomic; best-effort on failure)."""
        entry = {
            "cache_format": CACHE_FORMAT_VERSION,
            "analyzer_version": self.analyzer_version,
            "app": app,
            "row": row,
        }
        if self._write_entry(digest, entry):
            obs.incr("engine.cache.stores")

    def get_file(self, digest: str) -> Optional[Dict[str, object]]:
        """The cached per-file analyzer record for ``digest``, or None.

        Same robustness contract as :meth:`get` (anything off is a miss,
        corruption additionally counts a read error), but the traffic is
        tallied under ``engine.cache.file_hits``/``file_misses`` so the
        row-level counters stay per-application.
        """
        try:
            entry = self.backend.load(digest)
        except BackendReadError:
            obs.incr("engine.cache.read_errors")
            obs.incr("engine.cache.file_misses")
            return None
        if entry is None:
            obs.incr("engine.cache.file_misses")
            return None
        try:
            record = self._validate_file(entry)
        except (ValueError, TypeError, KeyError):
            obs.incr("engine.cache.read_errors")
            obs.incr("engine.cache.file_misses")
            return None
        obs.incr("engine.cache.file_hits")
        return record

    def put_file(self, digest: str, path: str,
                 record: Dict[str, object]) -> None:
        """Store one file's analyzer record (atomic, best-effort)."""
        entry = {
            "cache_format": CACHE_FORMAT_VERSION,
            "analyzer_version": self.analyzer_version,
            "path": path,
            "record": record,
        }
        if self._write_entry(digest, entry):
            obs.incr("engine.cache.file_stores")

    def get_manifest(self, key: str) -> Optional[Dict[str, str]]:
        """The app's advisory ``{path: file digest}`` manifest, or None.

        Entirely silent: the manifest only classifies files for the
        ``engine.delta.*`` counters, so a missing or corrupt manifest is
        not worth a counter of its own.
        """
        try:
            entry = self.backend.load(key)
        except BackendReadError:
            return None
        if not isinstance(entry, dict) or \
                entry.get("cache_format") != CACHE_FORMAT_VERSION or \
                entry.get("analyzer_version") != self.analyzer_version:
            return None
        files = entry.get("files")
        if not isinstance(files, dict) or not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in files.items()
        ):
            return None
        return files

    def put_manifest(self, key: str, files: Dict[str, str]) -> None:
        """Store an app's file-digest manifest (atomic, silent)."""
        entry = {
            "cache_format": CACHE_FORMAT_VERSION,
            "analyzer_version": self.analyzer_version,
            "files": files,
        }
        self._write_entry(key, entry)

    def _write_entry(self, digest: str, entry: Dict[str, object]) -> bool:
        """Store ``entry`` via the backend; False (+ counter) on failure."""
        if self.backend.store(digest, entry):
            return True
        # A read-only or contended medium degrades to no caching.
        obs.incr("engine.cache.write_errors")
        return False

    def _validate(self, entry: object) -> Dict[str, float]:
        """Check an entry's shape; raise ValueError on anything off."""
        if not isinstance(entry, dict):
            raise ValueError("entry is not an object")
        if entry.get("cache_format") != CACHE_FORMAT_VERSION:
            raise ValueError("wrong cache format version")
        if entry.get("analyzer_version") != self.analyzer_version:
            raise ValueError("wrong analyzer version")
        row = entry.get("row")
        if not isinstance(row, dict):
            raise ValueError("row is not an object")
        out: Dict[str, float] = {}
        for key, value in row.items():
            if not isinstance(key, str) or isinstance(value, bool) or \
                    not isinstance(value, (int, float)):
                raise ValueError("row is not a {str: number} mapping")
            out[key] = float(value)
        return out

    def _validate_file(self, entry: object) -> Dict[str, object]:
        """Check a per-file entry's shape; ValueError on anything off.

        Record validation is deliberately loose (a JSON object keyed by
        analyzer name): the merge phase owns the per-analyzer layout and
        the analyzer version already pins it, so the cache only rejects
        entries that cannot possibly be records.
        """
        if not isinstance(entry, dict):
            raise ValueError("entry is not an object")
        if entry.get("cache_format") != CACHE_FORMAT_VERSION:
            raise ValueError("wrong cache format version")
        if entry.get("analyzer_version") != self.analyzer_version:
            raise ValueError("wrong analyzer version")
        record = entry.get("record")
        if not isinstance(record, dict) or not all(
            isinstance(key, str) for key in record
        ):
            raise ValueError("record is not a {str: ...} mapping")
        return record
