"""Content-addressed feature cache: JSON rows keyed by task digest.

Layout (under ``cache_dir``)::

    <cache_dir>/<d[:2]>/<digest>.json

Entries are sharded by the first two hex characters of the digest so a
corpus-scale cache never piles tens of thousands of files into one
directory. Each entry carries::

    {"cache_format": 1, "analyzer_version": "...", "app": "...",
     "row": {"size.kloc": 8.0, ...}}

``cache_format`` guards the entry layout itself; ``analyzer_version``
re-checks the analyzer set (it is already folded into the digest, so a
mismatch here means a hand-edited or collided entry — treated as a
miss). Rows are stored without key sorting so a cached row round-trips
with the exact key order ``extract_features`` produced, keeping cached
and cold results bit-identical.

Robustness: any unreadable, truncated, corrupt, or wrong-shape entry is
a *miss* (counted separately as a read error), never an exception — the
engine recomputes and overwrites it. Writes go through a temp file and
``os.replace`` so a crashed run can leave at worst a stale temp file,
not a half-written entry; ``put`` opportunistically sweeps temp files
older than the current process out of the shard it is writing to, so
crash leftovers do not accumulate forever.

Counters (live in the :mod:`repro.obs` registry when enabled):
``engine.cache.hits`` / ``.misses`` / ``.stores`` /
``.read_errors`` (corrupt or unreadable entries on ``get``) /
``.write_errors`` (failed stores on ``put``).
"""

from __future__ import annotations

import glob
import json
import os
import tempfile
import time
from typing import Dict, Optional

from repro import obs
from repro.engine.digest import ANALYZER_SET_VERSION

#: Bump when the entry layout (not the analyzer set) changes.
CACHE_FORMAT_VERSION = 1

#: When this process started (module import is close enough): any
#: ``*.tmp`` in the cache older than this cannot belong to a live write
#: of ours, and concurrent *other* processes replace their temp files
#: within milliseconds — so older temp files are crash leftovers.
_PROCESS_START = time.time()


class FeatureCache:
    """A directory of content-addressed feature rows."""

    def __init__(self, cache_dir: str,
                 analyzer_version: str = ANALYZER_SET_VERSION):
        self.cache_dir = cache_dir
        self.analyzer_version = analyzer_version

    def entry_path(self, digest: str) -> str:
        """Where the entry for ``digest`` lives (shard dir + file)."""
        return os.path.join(self.cache_dir, digest[:2], f"{digest}.json")

    def get(self, digest: str) -> Optional[Dict[str, float]]:
        """The cached row for ``digest``, or None on miss/corruption."""
        try:
            with open(self.entry_path(digest), encoding="utf-8") as handle:
                entry = json.load(handle)
            row = self._validate(entry)
        except FileNotFoundError:
            obs.incr("engine.cache.misses")
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError,
                ValueError, TypeError, KeyError):
            # Corrupt/truncated/foreign file: recompute rather than crash.
            obs.incr("engine.cache.read_errors")
            obs.incr("engine.cache.misses")
            return None
        obs.incr("engine.cache.hits")
        return row

    def put(self, digest: str, row: Dict[str, float],
            app: str = "") -> None:
        """Store ``row`` under ``digest`` (atomic; best-effort on OSError)."""
        entry = {
            "cache_format": CACHE_FORMAT_VERSION,
            "analyzer_version": self.analyzer_version,
            "app": app,
            "row": row,
        }
        path = self.entry_path(digest)
        shard = os.path.dirname(path)
        try:
            os.makedirs(shard, exist_ok=True)
            self._sweep_stale_tmp(shard)
            fd, tmp = tempfile.mkstemp(dir=shard, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(entry, handle)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full cache dir degrades to no caching.
            obs.incr("engine.cache.write_errors")
            return
        obs.incr("engine.cache.stores")

    @staticmethod
    def _sweep_stale_tmp(shard: str) -> None:
        """Unlink crash-orphaned ``*.tmp`` files in ``shard``.

        Only temp files last modified before this process started are
        touched: anything newer could be a concurrent writer's in-flight
        entry (which exists for milliseconds between ``mkstemp`` and
        ``os.replace``). Purely best-effort — a vanished or unremovable
        file is somebody else's progress, not an error.
        """
        for tmp in glob.glob(os.path.join(shard, "*.tmp")):
            try:
                if os.path.getmtime(tmp) < _PROCESS_START:
                    os.unlink(tmp)
            except OSError:
                pass

    def _validate(self, entry: object) -> Dict[str, float]:
        """Check an entry's shape; raise ValueError on anything off."""
        if not isinstance(entry, dict):
            raise ValueError("entry is not an object")
        if entry.get("cache_format") != CACHE_FORMAT_VERSION:
            raise ValueError("wrong cache format version")
        if entry.get("analyzer_version") != self.analyzer_version:
            raise ValueError("wrong analyzer version")
        row = entry.get("row")
        if not isinstance(row, dict):
            raise ValueError("row is not an object")
        out: Dict[str, float] = {}
        for key, value in row.items():
            if not isinstance(key, str) or isinstance(value, bool) or \
                    not isinstance(value, (int, float)):
                raise ValueError("row is not a {str: number} mapping")
            out[key] = float(value)
        return out
