"""Content-addressed feature cache: JSON rows keyed by task digest.

Layout (under ``cache_dir``)::

    <cache_dir>/<d[:2]>/<digest>.json

Entries are sharded by the first two hex characters of the digest so a
corpus-scale cache never piles tens of thousands of files into one
directory. Each entry carries::

    {"cache_format": 1, "analyzer_version": "...", "app": "...",
     "row": {"size.kloc": 8.0, ...}}

``cache_format`` guards the entry layout itself; ``analyzer_version``
re-checks the analyzer set (it is already folded into the digest, so a
mismatch here means a hand-edited or collided entry — treated as a
miss). Rows are stored without key sorting so a cached row round-trips
with the exact key order ``extract_features`` produced, keeping cached
and cold results bit-identical.

Robustness: any unreadable, truncated, corrupt, or wrong-shape entry is
a *miss* (counted separately as a read error), never an exception — the
engine recomputes and overwrites it. Writes go through a temp file and
``os.replace`` so a crashed run can leave at worst a stale temp file,
not a half-written entry; ``put`` opportunistically sweeps temp files
older than the current process out of the shard it is writing to, so
crash leftovers do not accumulate forever.

Counters (live in the :mod:`repro.obs` registry when enabled):
``engine.cache.hits`` / ``.misses`` / ``.stores`` /
``.read_errors`` (corrupt or unreadable entries on ``get``) /
``.write_errors`` (failed stores on ``put``).

Besides whole-row entries the cache also stores *per-file analyzer
records* (``get_file``/``put_file``) — the incremental-extraction layer
keys them on ``digest(path + language + content + analyzer version)``
and merges cached records instead of re-running per-file analyzers.
File traffic is counted separately (``engine.cache.file_hits`` /
``.file_misses`` / ``.file_stores``) so the row-level counters keep
meaning "one application (re)analysed". An advisory per-app *manifest*
(``get_manifest``/``put_manifest``) maps file paths to their last-seen
digests; it only feeds the ``engine.delta.*`` classification counters
and is read/written silently — a lost manifest costs telemetry, never
correctness.
"""

from __future__ import annotations

import glob
import json
import os
import tempfile
import time
from typing import Dict, Optional

from repro import obs
from repro.engine.digest import ANALYZER_SET_VERSION

#: Bump when the entry layout (not the analyzer set) changes.
CACHE_FORMAT_VERSION = 1

#: When this process started (module import is close enough): any
#: ``*.tmp`` in the cache older than this cannot belong to a live write
#: of ours, and concurrent *other* processes replace their temp files
#: within milliseconds — so older temp files are crash leftovers.
_PROCESS_START = time.time()


class FeatureCache:
    """A directory of content-addressed feature rows."""

    def __init__(self, cache_dir: str,
                 analyzer_version: str = ANALYZER_SET_VERSION):
        self.cache_dir = cache_dir
        self.analyzer_version = analyzer_version

    def entry_path(self, digest: str) -> str:
        """Where the entry for ``digest`` lives (shard dir + file)."""
        return os.path.join(self.cache_dir, digest[:2], f"{digest}.json")

    def get(self, digest: str) -> Optional[Dict[str, float]]:
        """The cached row for ``digest``, or None on miss/corruption."""
        try:
            with open(self.entry_path(digest), encoding="utf-8") as handle:
                entry = json.load(handle)
            row = self._validate(entry)
        except FileNotFoundError:
            obs.incr("engine.cache.misses")
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError,
                ValueError, TypeError, KeyError):
            # Corrupt/truncated/foreign file: recompute rather than crash.
            obs.incr("engine.cache.read_errors")
            obs.incr("engine.cache.misses")
            return None
        obs.incr("engine.cache.hits")
        return row

    def put(self, digest: str, row: Dict[str, float],
            app: str = "") -> None:
        """Store ``row`` under ``digest`` (atomic; best-effort on OSError)."""
        entry = {
            "cache_format": CACHE_FORMAT_VERSION,
            "analyzer_version": self.analyzer_version,
            "app": app,
            "row": row,
        }
        if self._write_entry(digest, entry):
            obs.incr("engine.cache.stores")

    def get_file(self, digest: str) -> Optional[Dict[str, object]]:
        """The cached per-file analyzer record for ``digest``, or None.

        Same robustness contract as :meth:`get` (anything off is a miss,
        corruption additionally counts a read error), but the traffic is
        tallied under ``engine.cache.file_hits``/``file_misses`` so the
        row-level counters stay per-application.
        """
        try:
            with open(self.entry_path(digest), encoding="utf-8") as handle:
                entry = json.load(handle)
            record = self._validate_file(entry)
        except FileNotFoundError:
            obs.incr("engine.cache.file_misses")
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError,
                ValueError, TypeError, KeyError):
            obs.incr("engine.cache.read_errors")
            obs.incr("engine.cache.file_misses")
            return None
        obs.incr("engine.cache.file_hits")
        return record

    def put_file(self, digest: str, path: str,
                 record: Dict[str, object]) -> None:
        """Store one file's analyzer record (atomic, best-effort)."""
        entry = {
            "cache_format": CACHE_FORMAT_VERSION,
            "analyzer_version": self.analyzer_version,
            "path": path,
            "record": record,
        }
        if self._write_entry(digest, entry):
            obs.incr("engine.cache.file_stores")

    def get_manifest(self, key: str) -> Optional[Dict[str, str]]:
        """The app's advisory ``{path: file digest}`` manifest, or None.

        Entirely silent: the manifest only classifies files for the
        ``engine.delta.*`` counters, so a missing or corrupt manifest is
        not worth a counter of its own.
        """
        try:
            with open(self.entry_path(key), encoding="utf-8") as handle:
                entry = json.load(handle)
            if not isinstance(entry, dict) or \
                    entry.get("cache_format") != CACHE_FORMAT_VERSION or \
                    entry.get("analyzer_version") != self.analyzer_version:
                return None
            files = entry.get("files")
            if not isinstance(files, dict) or not all(
                isinstance(k, str) and isinstance(v, str)
                for k, v in files.items()
            ):
                return None
            return files
        except (OSError, json.JSONDecodeError, UnicodeDecodeError,
                ValueError, TypeError, KeyError):
            return None

    def put_manifest(self, key: str, files: Dict[str, str]) -> None:
        """Store an app's file-digest manifest (atomic, silent)."""
        entry = {
            "cache_format": CACHE_FORMAT_VERSION,
            "analyzer_version": self.analyzer_version,
            "files": files,
        }
        self._write_entry(key, entry)

    def _write_entry(self, digest: str, entry: Dict[str, object]) -> bool:
        """Atomically write ``entry``; False (+ counter) on OSError."""
        path = self.entry_path(digest)
        shard = os.path.dirname(path)
        try:
            os.makedirs(shard, exist_ok=True)
            self._sweep_stale_tmp(shard)
            fd, tmp = tempfile.mkstemp(dir=shard, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(entry, handle)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only or full cache dir degrades to no caching.
            obs.incr("engine.cache.write_errors")
            return False
        return True

    @staticmethod
    def _sweep_stale_tmp(shard: str) -> None:
        """Unlink crash-orphaned ``*.tmp`` files in ``shard``.

        Only temp files last modified before this process started are
        touched: anything newer could be a concurrent writer's in-flight
        entry (which exists for milliseconds between ``mkstemp`` and
        ``os.replace``). Purely best-effort — a vanished or unremovable
        file is somebody else's progress, not an error.
        """
        for tmp in glob.glob(os.path.join(shard, "*.tmp")):
            try:
                if os.path.getmtime(tmp) < _PROCESS_START:
                    os.unlink(tmp)
            except OSError:
                pass

    def _validate(self, entry: object) -> Dict[str, float]:
        """Check an entry's shape; raise ValueError on anything off."""
        if not isinstance(entry, dict):
            raise ValueError("entry is not an object")
        if entry.get("cache_format") != CACHE_FORMAT_VERSION:
            raise ValueError("wrong cache format version")
        if entry.get("analyzer_version") != self.analyzer_version:
            raise ValueError("wrong analyzer version")
        row = entry.get("row")
        if not isinstance(row, dict):
            raise ValueError("row is not an object")
        out: Dict[str, float] = {}
        for key, value in row.items():
            if not isinstance(key, str) or isinstance(value, bool) or \
                    not isinstance(value, (int, float)):
                raise ValueError("row is not a {str: number} mapping")
            out[key] = float(value)
        return out

    def _validate_file(self, entry: object) -> Dict[str, object]:
        """Check a per-file entry's shape; ValueError on anything off.

        Record validation is deliberately loose (a JSON object keyed by
        analyzer name): the merge phase owns the per-analyzer layout and
        the analyzer version already pins it, so the cache only rejects
        entries that cannot possibly be records.
        """
        if not isinstance(entry, dict):
            raise ValueError("entry is not an object")
        if entry.get("cache_format") != CACHE_FORMAT_VERSION:
            raise ValueError("wrong cache format version")
        if entry.get("analyzer_version") != self.analyzer_version:
            raise ValueError("wrong analyzer version")
        record = entry.get("record")
        if not isinstance(record, dict) or not all(
            isinstance(key, str) for key in record
        ):
            raise ValueError("record is not a {str: ...} mapping")
        return record
