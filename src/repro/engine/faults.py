"""Fault injection for the extraction engine (a test seam).

The fault-tolerance guarantees in :mod:`repro.engine.scheduler` —
failure policies, per-task timeouts, worker-crash recovery — are only
trustworthy if the failure paths are actually exercised. Real analyzer
failures are hard to stage on demand, so the engine carries this tiny
failpoint layer instead: when the ``REPRO_FAULTS`` environment variable
is set, :func:`_execute_task` consults it by *application name* before
(and after) extracting, and misbehaves on cue. The variable travels
into worker processes with the rest of the environment, so faults fire
identically under the serial and process-pool paths.

Spec grammar (``;``-separated, one clause per app)::

    REPRO_FAULTS="appA=crash;appB=hang:30;appC=kill_once:/tmp/s"

Kinds:

- ``crash`` — raise :class:`InjectedFault` on every attempt.
- ``crash_once:<sentinel>`` — raise on the first attempt only; the
  sentinel file (created atomically) marks the fault as spent, so
  retries and re-runs in other processes see a healthy task.
- ``crash_in_worker:<pid>`` — raise unless running in process ``pid``
  (pass the scheduler's pid to prove the serial last-attempt ladder).
- ``hang:<seconds>`` — sleep, simulating a wedged analyzer.
- ``kill`` — SIGKILL the current process (a worker crash the parent
  sees as ``BrokenProcessPool``).
- ``kill_once:<sentinel>`` — SIGKILL on the first attempt only.
- ``poison`` — complete normally but attach an unpicklable object to
  the result, so shipping it out of a worker fails.

When ``REPRO_FAULTS`` is unset (every production run) the lookup is a
single environment read returning None.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Dict, Optional

#: Environment variable holding the fault spec; unset means no faults.
FAULTS_ENV = "REPRO_FAULTS"


class InjectedFault(RuntimeError):
    """The exception every ``crash*`` fault kind raises."""


class Unpicklable:
    """A value that defeats pickling — the ``poison`` fault's cargo."""

    def __reduce__(self):
        raise TypeError("injected unpicklable result")


def _claim_sentinel(path: str) -> bool:
    """Atomically create ``path``; True if this call created it."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


@dataclass(frozen=True)
class Fault:
    """One injected misbehaviour bound to an application name."""

    app: str
    kind: str
    payload: str = ""

    def fire(self) -> None:
        """Misbehave per ``kind``; called at the top of task execution."""
        if self.kind == "crash":
            raise InjectedFault(f"injected crash in {self.app}")
        if self.kind == "crash_once":
            if _claim_sentinel(self.payload):
                raise InjectedFault(
                    f"injected one-shot crash in {self.app}")
            return
        if self.kind == "crash_in_worker":
            if os.getpid() != int(self.payload):
                raise InjectedFault(
                    f"injected worker-only crash in {self.app} "
                    f"(pid {os.getpid()})")
            return
        if self.kind == "hang":
            time.sleep(float(self.payload or "3600"))
            return
        if self.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
            return  # pragma: no cover - unreachable
        if self.kind == "kill_once":
            if _claim_sentinel(self.payload):
                os.kill(os.getpid(), signal.SIGKILL)
            return
        if self.kind == "poison":
            return  # applied to the result after extraction
        raise ValueError(f"unknown injected fault kind {self.kind!r}")


def parse_faults(spec: str) -> Dict[str, Fault]:
    """Parse a ``REPRO_FAULTS`` spec into {app name: fault}."""
    faults: Dict[str, Fault] = {}
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        name, _, directive = clause.partition("=")
        kind, _, payload = directive.partition(":")
        faults[name] = Fault(app=name, kind=kind, payload=payload)
    return faults


def active_fault(app: str) -> Optional[Fault]:
    """The fault configured for ``app``, or None (the common case)."""
    spec = os.environ.get(FAULTS_ENV)
    if not spec:
        return None
    return parse_faults(spec).get(app)
