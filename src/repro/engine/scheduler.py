"""Parallel, cache-aware execution layer for feature extraction.

Two layers live here:

- :func:`parallel_map` — a generic ordered fan-out primitive. With
  ``workers > 1`` it runs the function across a
  :class:`~concurrent.futures.ProcessPoolExecutor`; with ``workers <= 1``
  a lazy in-process pool stands in, so the serial fallback exercises the
  *same* submit/collect code path (results are always merged in input
  order, never completion order — determinism does not depend on the
  scheduler's timing).
- :class:`ExtractionEngine` — the feature-extraction scheduler the
  pipeline and CLI use. Per task it consults the content-addressed
  :class:`~repro.engine.cache.FeatureCache` (when configured), fans
  misses out across workers, grafts the workers' tracing spans and
  counters back into the parent :mod:`repro.obs` session, and stores
  fresh rows back to the cache.

Worker processes re-import this module, so the task payload must stay
picklable: :class:`~repro.lang.sourcefile.SourceFile` serialises as
(path, text, language) and re-lexes lazily on the far side.

Results are bit-identical to the serial uncached path by construction:
the same ``extract_features`` runs either way, rows are merged by task
index, and cached rows round-trip through JSON with exact float and
key-order fidelity.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import (
    Any, Callable, Dict, Iterable, List, Optional, Sequence, TypeVar,
)

from repro import obs
from repro.analysis.churn import CommitHistory
from repro.engine.cache import FeatureCache
from repro.engine.digest import task_digest
from repro.lang.sourcefile import Codebase

T = TypeVar("T")
R = TypeVar("R")

#: Environment knobs the default engine honours (what the CI matrix leg
#: sets to run the whole suite through the parallel/cached path).
WORKERS_ENV = "REPRO_WORKERS"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


class _LazyFuture:
    """A future that computes on ``result()`` — the serial pool's unit.

    Laziness matters: it keeps execution inside the caller's collect
    loop (and therefore inside the caller's per-task tracing span),
    exactly where a process-pool future's wait happens.
    """

    __slots__ = ("_fn", "_args")

    def __init__(self, fn: Callable[..., R], args: tuple):
        self._fn = fn
        self._args = args

    def result(self) -> R:
        return self._fn(*self._args)


class _SerialPool:
    """Drop-in for ProcessPoolExecutor that runs in-process."""

    def __enter__(self) -> "_SerialPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def submit(self, fn: Callable[..., R], *args: Any) -> _LazyFuture:
        return _LazyFuture(fn, args)


def make_pool(workers: int, n_tasks: int):
    """The right executor for ``workers`` parallel slots over ``n_tasks``."""
    if workers <= 1 or n_tasks <= 1:
        return _SerialPool()
    return ProcessPoolExecutor(max_workers=min(workers, n_tasks))


def parallel_map(
    fn: Callable[[T], R], items: Iterable[T], workers: int = 1
) -> List[R]:
    """Map ``fn`` over ``items``, fanning out across processes.

    Results come back in input order regardless of completion order.
    ``fn`` and each item must be picklable when ``workers > 1``.
    """
    items = list(items)
    with make_pool(workers, len(items)) as pool:
        futures = [pool.submit(fn, item) for item in items]
        return [future.result() for future in futures]


@dataclass(frozen=True)
class ExtractionTask:
    """One unit of testbed work: an app's codebase plus extraction args."""

    name: str
    codebase: Codebase
    nominal_kloc: Optional[float] = None
    history: Optional[CommitHistory] = None
    include_dynamic: bool = False


@dataclass
class _WorkerResult:
    """A row plus the worker's telemetry shipment (None when serial)."""

    row: Dict[str, float]
    span_records: Optional[List[Dict[str, Any]]] = None
    counters: Optional[Dict[str, float]] = None


def _execute_task(task: ExtractionTask, capture_obs: bool) -> _WorkerResult:
    """Run one extraction; in capture mode, also ship telemetry home.

    Module-level so it pickles into worker processes. ``capture_obs``
    is set only for true multi-process runs with an active parent
    session: the worker then records into its own private session and
    returns the finished spans/counters for grafting. Serial runs leave
    it False so spans land directly (and nest naturally) in the
    caller's session.
    """
    from repro.core.features import extract_features

    session = obs.configure() if capture_obs else None
    try:
        with obs.span("engine.worker", pid=os.getpid(), app=task.name):
            row = extract_features(
                task.codebase,
                nominal_kloc=task.nominal_kloc,
                history=task.history,
                include_dynamic=task.include_dynamic,
            )
    finally:
        if session is not None:
            obs.disable()
    # Normalise to builtin floats: numpy scalars compare equal but repr
    # (and pickle) differently from the floats a JSON cache round-trip
    # yields, which would make warm rows distinguishable from cold ones.
    row = {key: float(value) for key, value in row.items()}
    if session is None:
        return _WorkerResult(row=row)
    return _WorkerResult(
        row=row,
        span_records=session.tracer.records(),
        counters=session.metrics.snapshot()["counters"],
    )


class ExtractionEngine:
    """Schedules feature extraction across workers and the cache.

    Args:
        workers: parallel worker processes; 1 (the default) runs
            everything in-process through the same scheduling code.
        cache: optional :class:`FeatureCache`; misses are computed and
            stored back, hits skip extraction entirely.
    """

    def __init__(self, workers: int = 1,
                 cache: Optional[FeatureCache] = None):
        self.workers = max(1, int(workers))
        self.cache = cache

    @classmethod
    def from_env(cls) -> "ExtractionEngine":
        """Engine configured from ``REPRO_WORKERS``/``REPRO_CACHE_DIR``.

        This is the default engine the pipeline builds when none is
        passed explicitly, which lets CI (or a user shell) route every
        extraction in the process through the parallel/cached path
        without touching call sites. Unset variables mean serial and
        uncached — the seed behaviour.
        """
        try:
            workers = int(os.environ.get(WORKERS_ENV, "1"))
        except ValueError:
            workers = 1
        cache_dir = os.environ.get(CACHE_DIR_ENV)
        cache = FeatureCache(cache_dir) if cache_dir else None
        return cls(workers=workers, cache=cache)

    def extract_rows(
        self, tasks: Sequence[ExtractionTask]
    ) -> List[Dict[str, float]]:
        """Feature rows for ``tasks``, in task order.

        Rows are merged strictly by task index; neither worker
        completion order nor the hit/miss split can reorder them.
        """
        tasks = list(tasks)
        results: List[Optional[Dict[str, float]]] = [None] * len(tasks)
        digests: List[Optional[str]] = [None] * len(tasks)
        pending: List[int] = []
        with obs.span("engine.extract", apps=len(tasks),
                      workers=self.workers,
                      cache=self.cache is not None):
            for index, task in enumerate(tasks):
                if self.cache is not None:
                    with obs.span("engine.cache.lookup", app=task.name):
                        digests[index] = task_digest(
                            task.codebase,
                            nominal_kloc=task.nominal_kloc,
                            history=task.history,
                            include_dynamic=task.include_dynamic,
                            analyzer_version=self.cache.analyzer_version,
                        )
                        row = self.cache.get(digests[index])
                    if row is not None:
                        with obs.span("testbed.app", app=task.name,
                                      cached=True):
                            results[index] = row
                        continue
                pending.append(index)
            # Capture only when tasks truly leave the process: make_pool
            # stays serial for a single task even with workers > 1, and
            # an in-process obs.configure() would clobber the caller's
            # session.
            in_processes = self.workers > 1 and len(pending) > 1
            capture = in_processes and obs.is_enabled()
            with make_pool(self.workers, len(pending)) as pool:
                futures = [
                    (index, pool.submit(_execute_task, tasks[index], capture))
                    for index in pending
                ]
                for index, future in futures:
                    task = tasks[index]
                    with obs.span("testbed.app", app=task.name,
                                  cached=False):
                        outcome = future.result()
                        if outcome.span_records:
                            obs.graft_spans(outcome.span_records)
                        if outcome.counters:
                            obs.merge_counters(outcome.counters)
                    results[index] = outcome.row
                    obs.incr("engine.extracted")
                    if self.cache is not None and digests[index] is not None:
                        self.cache.put(digests[index], outcome.row,
                                       app=task.name)
        return results  # type: ignore[return-value]

    def extract_one(
        self,
        codebase: Codebase,
        nominal_kloc: Optional[float] = None,
        history: Optional[CommitHistory] = None,
        include_dynamic: bool = False,
    ) -> Dict[str, float]:
        """Cache-aware extraction for a single codebase."""
        task = ExtractionTask(
            name=codebase.name,
            codebase=codebase,
            nominal_kloc=nominal_kloc,
            history=history,
            include_dynamic=include_dynamic,
        )
        return self.extract_rows([task])[0]
