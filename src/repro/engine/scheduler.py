"""Parallel, cache-aware, fault-tolerant execution layer for extraction.

Two layers live here:

- :func:`parallel_map` — a generic ordered fan-out primitive. With
  ``workers > 1`` it runs the function across a
  :class:`~concurrent.futures.ProcessPoolExecutor`; with ``workers <= 1``
  a lazy in-process pool stands in, so the serial fallback exercises the
  *same* submit/collect code path (results are always merged in input
  order, never completion order — determinism does not depend on the
  scheduler's timing).
- :class:`ExtractionEngine` — the feature-extraction scheduler the
  pipeline and CLI use. Per task it consults the content-addressed
  :class:`~repro.engine.cache.FeatureCache` (when configured), fans
  misses out across workers, grafts the workers' tracing spans and
  counters back into the parent :mod:`repro.obs` session, and stores
  fresh rows back to the cache.

Incremental extraction
----------------------

With a cache configured the engine works at *file* granularity. A
whole-row hit (same tree, same args) still short-circuits everything.
On a row miss the engine probes the cache for each file's analyzer
record (keyed on content + path + analyzer version); when at least one
file hits, only the missing files are scheduled — as per-file units
through the same pool/failure machinery as whole apps, with per-file
:class:`TaskFailure` blame — and the cheap merge phase folds cached and
fresh records into the row. The merge is the same
:func:`~repro.core.features.merge_records` a cold extraction runs, so a
warm row is byte-identical to a cold one by construction. Cold cached
extractions return their per-file records from the worker and seed the
file cache (plus an advisory per-app manifest used to classify a later
run's files as changed/added/removed for the ``engine.delta.*``
counters).

Worker processes re-import this module, so the task payload must stay
picklable: :class:`~repro.lang.sourcefile.SourceFile` serialises as
(path, text, language) and re-lexes lazily on the far side.

Results are bit-identical to the serial uncached path by construction:
the same ``extract_features`` runs either way, rows are merged by task
index, and cached rows round-trip through JSON with exact float and
key-order fidelity.

Failure semantics
-----------------

At corpus scale individual analyses *will* fail, and one bad
application must not abort a whole run. The engine therefore takes an
explicit ``on_error`` policy:

- ``"raise"`` (default) — fail fast, exactly like a bare
  ``future.result()``, except in-flight work is cancelled and worker
  processes are killed instead of being waited for.
- ``"skip"`` — a failed task becomes a structured :class:`TaskFailure`
  (app name, attempt count, exception, traceback text); its row is
  ``None`` and the run keeps going.
- ``"retry"`` — like ``"skip"``, but a crashed task is re-attempted up
  to ``max_retries`` extra times, the *last* attempt running serially
  in the scheduler's own process (process-pool flakiness — a poisoned
  worker, an unpicklable payload — cannot touch an in-process run).
  Timeouts are never retried: a task that hung once is assumed to hang
  again.

``task_timeout`` bounds the wall-clock wait for each task's result
(enforceable only when the task runs in a worker process; a serial
in-process task cannot be preempted). A timed-out worker is killed,
never joined. A worker death (``BrokenProcessPool``) aborts the run
under ``"raise"``; under ``"skip"``/``"retry"`` it triggers one pool
rebuild per run — the pool is recreated and every unfinished task
re-submitted, each alone in its own pool so a repeat offender cannot
take innocent batch-mates down with it; a suspect that breaks its pool
again is failed as ``worker-lost``.

Failure observability: ``engine.task_failures`` / ``engine.task_retries``
/ ``engine.pool_rebuilds`` counters, and an ``error=`` attribute on the
failing task's ``testbed.app`` span.
"""

from __future__ import annotations

import os
import traceback as traceback_module
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from typing import (
    Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar,
)

from repro import obs
from repro.analysis.churn import CommitHistory
from repro.engine import faults
from repro.engine.cache import FeatureCache
from repro.engine.digest import file_digest, manifest_key, task_digest
from repro.lang.sourcefile import Codebase, SourceFile

T = TypeVar("T")
R = TypeVar("R")

#: Environment knobs the default engine honours (what the CI matrix leg
#: sets to run the whole suite through the parallel/cached path).
WORKERS_ENV = "REPRO_WORKERS"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Valid ``on_error`` policies, in documentation order.
ON_ERROR_POLICIES = ("raise", "skip", "retry")

#: After a pool break every settled future resolves immediately; this
#: grace period only guards against the tiny window in which the
#: executor is still flagging pending futures as broken.
_POST_BREAK_GRACE = 5.0


class ExtractionError(RuntimeError):
    """A task failed and the failure policy did not absorb it."""


class TaskTimeout(ExtractionError):
    """A task exceeded the engine's per-task wall-clock timeout."""


class _LazyFuture:
    """A future that computes on ``result()`` — the serial pool's unit.

    Laziness matters: it keeps execution inside the caller's collect
    loop (and therefore inside the caller's per-task tracing span),
    exactly where a process-pool future's wait happens.
    """

    __slots__ = ("_fn", "_args")

    def __init__(self, fn: Callable[..., R], args: tuple):
        self._fn = fn
        self._args = args

    def result(self, timeout: Optional[float] = None) -> R:
        return self._fn(*self._args)

    def done(self) -> bool:
        return True


class _SerialPool:
    """Drop-in for ProcessPoolExecutor that runs in-process."""

    def __enter__(self) -> "_SerialPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def submit(self, fn: Callable[..., R], *args: Any) -> _LazyFuture:
        return _LazyFuture(fn, args)

    def shutdown(self, wait: bool = True,
                 cancel_futures: bool = False) -> None:
        pass


def make_pool(workers: int, n_tasks: int):
    """The right executor for ``workers`` parallel slots over ``n_tasks``."""
    if workers <= 1 or n_tasks <= 1:
        return _SerialPool()
    return ProcessPoolExecutor(max_workers=min(workers, n_tasks))


def _terminate_pool(pool) -> None:
    """Hard-stop a pool: kill workers, drop queued futures, never wait.

    Used on fatal abort, timeout, and pool breakage — the cases where
    ``shutdown(wait=True)`` could block forever on a wedged or dead
    worker. ``_processes`` is executor-private, but killing the workers
    is the only way to guarantee a hung task cannot stall interpreter
    exit (the executor's atexit hook joins its workers).
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except (OSError, AttributeError):  # pragma: no cover - racy exit
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - executor already torn down
        pass


def parallel_map(
    fn: Callable[[T], R], items: Iterable[T], workers: int = 1
) -> List[R]:
    """Map ``fn`` over ``items``, fanning out across processes.

    Results come back in input order regardless of completion order.
    ``fn`` and each item must be picklable when ``workers > 1``.
    """
    items = list(items)
    with make_pool(workers, len(items)) as pool:
        futures = [pool.submit(fn, item) for item in items]
        return [future.result() for future in futures]


@dataclass(frozen=True)
class ExtractionTask:
    """One unit of testbed work: an app's codebase plus extraction args."""

    name: str
    codebase: Codebase
    nominal_kloc: Optional[float] = None
    history: Optional[CommitHistory] = None
    include_dynamic: bool = False


@dataclass(frozen=True)
class TaskFailure:
    """Structured record of one task the engine could not complete.

    ``kind`` is ``"crash"`` (the task raised), ``"timeout"`` (no result
    within ``task_timeout``), or ``"worker-lost"`` (the worker process
    died and recovery was exhausted). ``traceback`` is the formatted
    exception text (empty for timeouts and lost workers, where there is
    no Python frame to show). ``file`` names the source file whose
    per-file unit failed when the task ran through the incremental
    path; empty for whole-app failures.
    """

    app: str
    kind: str
    attempts: int
    error_type: str
    message: str
    traceback: str = ""
    file: str = ""

    def describe(self) -> str:
        """One human-readable summary line."""
        where = f"{self.app}[{self.file}]" if self.file else self.app
        return (f"{where}: {self.kind} after {self.attempts} "
                f"attempt(s) — {self.error_type}: {self.message}")


def format_failures(failures: Sequence[TaskFailure]) -> str:
    """Multi-line report of skipped tasks (what the CLI prints)."""
    lines = [f"extraction skipped {len(failures)} application(s):"]
    for failure in failures:
        lines.append(f"  {failure.describe()}")
    return "\n".join(lines)


@dataclass
class ExtractionReport:
    """Everything one :meth:`ExtractionEngine.run` call produced.

    ``rows`` aligns with the task list; a failed task's slot is None
    and its :class:`TaskFailure` appears in ``failures`` (task order).
    """

    rows: List[Optional[Dict[str, float]]]
    failures: List[TaskFailure]


@dataclass
class _WorkerResult:
    """A unit's output plus the worker's telemetry shipment.

    Whole-app units fill ``row`` (and ``records`` when the parent wants
    to seed the file cache); per-file units fill ``record`` instead.
    ``span_records``/``counters`` are None for in-process execution.
    """

    row: Optional[Dict[str, float]] = None
    records: Optional[List[Dict[str, Any]]] = None
    record: Optional[Dict[str, Any]] = None
    span_records: Optional[List[Dict[str, Any]]] = None
    counters: Optional[Dict[str, float]] = None
    poison: Any = None  # fault-injection cargo; never set in real runs


@dataclass(frozen=True)
class _Unit:
    """One schedulable piece of work: a whole app or a single file."""

    task_index: int
    source: Optional[SourceFile] = None  # None => whole-app unit
    file_pos: int = -1  # position in codebase.files for file units


@dataclass
class _DeltaPlan:
    """Per-task file-cache probe result (cache configured, row missed).

    ``records`` aligns with ``codebase.files``; cached hits are
    prefilled, misses are None until their file unit completes.
    ``recompute`` fixes the missed positions at probe time (the ones
    whose fresh records must be stored back after the merge).
    """

    file_digests: List[str]
    records: List[Optional[Dict[str, Any]]]
    hits: int
    recompute: List[int]


@dataclass
class _RoundOutcome:
    """What one pool round produced besides successful rows."""

    errors: Dict[int, Tuple[str, BaseException, str]] = field(
        default_factory=dict)
    lost: List[int] = field(default_factory=list)
    unfinished: List[int] = field(default_factory=list)
    broken: bool = False
    broken_exc: Optional[BaseException] = None


def _execute_task(task: ExtractionTask, capture_obs: bool,
                  want_records: bool = False,
                  trace_id: Optional[str] = None) -> _WorkerResult:
    """Run one extraction; in capture mode, also ship telemetry home.

    Module-level so it pickles into worker processes. ``capture_obs``
    is set only for true multi-process runs with an active parent
    session: the worker then records into its own private session and
    returns the finished spans/counters for grafting. Serial runs leave
    it False so spans land directly (and nest naturally) in the
    caller's session. ``want_records`` additionally ships the per-file
    analyzer records so the parent can seed the file-granular cache.
    ``trace_id`` is the scheduling request's trace ID: the worker's
    session adopts it so the shipped spans stitch into the same trace
    as the parent's request tree after the graft.
    """
    from repro.core.features import extract_features_with_records

    fault = faults.active_fault(task.name)
    if fault is not None:
        fault.fire()
    session = obs.configure(trace_id=trace_id) if capture_obs else None
    try:
        with obs.span("engine.worker", pid=os.getpid(), app=task.name):
            row, records = extract_features_with_records(
                task.codebase,
                nominal_kloc=task.nominal_kloc,
                history=task.history,
                include_dynamic=task.include_dynamic,
            )
    finally:
        if session is not None:
            obs.disable()
    # Normalise to builtin floats: numpy scalars compare equal but repr
    # (and pickle) differently from the floats a JSON cache round-trip
    # yields, which would make warm rows distinguishable from cold ones.
    row = {key: float(value) for key, value in row.items()}
    result = _WorkerResult(
        row=row,
        records=records if want_records else None,
    )
    if session is not None:
        result.span_records = session.tracer.records()
        result.counters = session.metrics.snapshot()["counters"]
    if fault is not None and fault.kind == "poison":
        result.poison = faults.Unpicklable()
    return result


def _execute_file(app: str, source: SourceFile,
                  capture_obs: bool,
                  trace_id: Optional[str] = None) -> _WorkerResult:
    """Run the per-file analyzers over one file (a delta-path unit).

    Same contract as :func:`_execute_task` — module-level, picklable,
    fault seam, optional telemetry capture, request ``trace_id``
    adoption — scoped to a single source file. The ``engine.worker``
    span carries a ``file`` attribute so traces distinguish file units
    from whole-app ones.
    """
    from repro.core.features import file_record

    fault = faults.active_fault(app)
    if fault is not None:
        fault.fire()
    session = obs.configure(trace_id=trace_id) if capture_obs else None
    try:
        with obs.span("engine.worker", pid=os.getpid(), app=app,
                      file=source.path):
            record = file_record(source)
    finally:
        if session is not None:
            obs.disable()
    result = _WorkerResult(record=record)
    if session is not None:
        result.span_records = session.tracer.records()
        result.counters = session.metrics.snapshot()["counters"]
    if fault is not None and fault.kind == "poison":
        result.poison = faults.Unpicklable()
    return result


def _format_tb(exc: BaseException) -> str:
    """Full traceback text, remote-cause chain included."""
    return "".join(traceback_module.format_exception(
        type(exc), exc, exc.__traceback__))


class ExtractionEngine:
    """Schedules feature extraction across workers, the cache, and faults.

    Args:
        workers: parallel worker processes; 1 (the default) runs
            everything in-process through the same scheduling code.
        cache: optional :class:`FeatureCache`; misses are computed and
            stored back, hits skip extraction entirely.
        on_error: ``"raise"`` (fail fast, cancel in-flight work),
            ``"skip"`` (failed apps become :class:`TaskFailure` records)
            or ``"retry"`` (bounded re-attempts, serial last attempt).
        task_timeout: per-task wall-clock budget in seconds; enforced
            only for tasks running in worker processes.
        max_retries: extra attempts per crashed task under ``"retry"``.

    The engine is a reusable handle: configuration is immutable after
    construction and each :meth:`run` builds its own pool, so one
    engine can serve many sequential runs (the serving layer shares a
    single handle across all ``/analyze`` requests, behind a lock only
    because the obs tracer is single-threaded — the engine itself keeps
    no per-run state).
    """

    def __init__(self, workers: int = 1,
                 cache: Optional[FeatureCache] = None,
                 on_error: str = "raise",
                 task_timeout: Optional[float] = None,
                 max_retries: int = 2):
        if on_error not in ON_ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_POLICIES}, "
                f"got {on_error!r}")
        if task_timeout is not None and not task_timeout > 0:
            raise ValueError("task_timeout must be positive")
        self.workers = max(1, int(workers))
        self.cache = cache
        self.on_error = on_error
        self.task_timeout = task_timeout
        self.max_retries = max(0, int(max_retries))
        if task_timeout is not None and self.workers <= 1:
            warnings.warn(
                "task_timeout is only enforced with workers > 1; a "
                "serial in-process task cannot be preempted",
                RuntimeWarning, stacklevel=2)

    @classmethod
    def from_env(cls) -> "ExtractionEngine":
        """Engine configured from ``REPRO_WORKERS``/``REPRO_CACHE_DIR``.

        This is the default engine the pipeline builds when none is
        passed explicitly, which lets CI (or a user shell) route every
        extraction in the process through the parallel/cached path
        without touching call sites. Unset variables mean serial and
        uncached — the seed behaviour. An unparsable or non-positive
        ``REPRO_WORKERS`` falls back to 1 worker with a warning naming
        the bad value, so a CI misconfiguration is visible instead of
        silently serialising the run. ``REPRO_CACHE_DIR`` takes the
        same URI-style spec as ``--cache-dir``: a directory path for
        the filesystem backend, ``sqlite:PATH`` for the shared SQLite
        backend.
        """
        raw = os.environ.get(WORKERS_ENV)
        workers = 1
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                warnings.warn(
                    f"invalid {WORKERS_ENV}={raw!r} (not an integer); "
                    f"falling back to 1 worker",
                    RuntimeWarning, stacklevel=2)
                workers = 1
            if workers < 1:
                warnings.warn(
                    f"invalid {WORKERS_ENV}={raw!r} (must be >= 1); "
                    f"falling back to 1 worker",
                    RuntimeWarning, stacklevel=2)
                workers = 1
        cache_dir = os.environ.get(CACHE_DIR_ENV)
        cache = FeatureCache(cache_dir) if cache_dir else None
        return cls(workers=workers, cache=cache)

    def describe(self) -> Dict[str, Any]:
        """The engine's configuration as a JSON-ready dict.

        What ``/healthz`` reports so operators can see which engine
        shape (workers, cache, failure policy) is behind served
        traffic.
        """
        return {
            "workers": self.workers,
            "cache_dir": self.cache.cache_dir if self.cache else None,
            "cache_backend": self.cache.backend.kind if self.cache
            else None,
            "on_error": self.on_error,
            "task_timeout": self.task_timeout,
            "max_retries": self.max_retries,
        }

    def run(self, tasks: Sequence[ExtractionTask]) -> ExtractionReport:
        """Extract every task, honouring the failure policy.

        Rows are merged strictly by task index; neither worker
        completion order nor the hit/miss split nor retries can reorder
        them. Under ``on_error="raise"`` the first failure propagates
        (after cancelling in-flight work); otherwise failed tasks leave
        a None row and a :class:`TaskFailure` record.
        """
        tasks = list(tasks)
        rows: List[Optional[Dict[str, float]]] = [None] * len(tasks)
        digests: List[Optional[str]] = [None] * len(tasks)
        units: List[_Unit] = []
        plans: Dict[int, _DeltaPlan] = {}
        delta_indices: List[int] = []
        with obs.span("engine.extract", apps=len(tasks),
                      workers=self.workers,
                      cache=self.cache is not None,
                      on_error=self.on_error) as extract_span:
            for index, task in enumerate(tasks):
                if self.cache is not None:
                    with obs.span("engine.cache.lookup", app=task.name):
                        digests[index] = task_digest(
                            task.codebase,
                            nominal_kloc=task.nominal_kloc,
                            history=task.history,
                            include_dynamic=task.include_dynamic,
                            analyzer_version=self.cache.analyzer_version,
                        )
                        row = self.cache.get(digests[index])
                    if row is not None:
                        with obs.span("testbed.app", app=task.name,
                                      cached=True):
                            rows[index] = row
                        continue
                    if len(task.codebase) > 0:
                        with obs.span("engine.cache.probe", app=task.name,
                                      files=len(task.codebase)):
                            plan = self._probe_files(task)
                        plans[index] = plan
                        if plan.hits > 0:
                            # Incremental path: only the missed files
                            # run; the merge below folds them into the
                            # cached records.
                            self._classify_delta(task, plan)
                            delta_indices.append(index)
                            sources = task.codebase.files
                            units.extend(
                                _Unit(task_index=index,
                                      source=sources[pos], file_pos=pos)
                                for pos in plan.recompute)
                            continue
                units.append(_Unit(task_index=index))
            failures = self._run_pending(tasks, units, rows, digests,
                                         plans)
            self._merge_deltas(tasks, delta_indices, plans, rows,
                               digests, failures)
            if failures:
                extract_span.set_attr("failures", len(failures))
        failure_list = [failures[index] for index in sorted(failures)]
        return ExtractionReport(rows=rows, failures=failure_list)

    def extract_rows(
        self, tasks: Sequence[ExtractionTask]
    ) -> List[Optional[Dict[str, float]]]:
        """Feature rows for ``tasks``, in task order.

        Thin wrapper over :meth:`run`; under ``on_error="skip"`` or
        ``"retry"`` a failed task's slot is None.
        """
        return self.run(tasks).rows

    def extract_one(
        self,
        codebase: Codebase,
        nominal_kloc: Optional[float] = None,
        history: Optional[CommitHistory] = None,
        include_dynamic: bool = False,
    ) -> Dict[str, float]:
        """Cache-aware extraction for a single codebase.

        There is no row to skip to, so a failure raises
        :class:`ExtractionError` whatever the policy.
        """
        task = ExtractionTask(
            name=codebase.name,
            codebase=codebase,
            nominal_kloc=nominal_kloc,
            history=history,
            include_dynamic=include_dynamic,
        )
        report = self.run([task])
        if report.failures:
            raise ExtractionError(report.failures[0].describe())
        return report.rows[0]

    def extract_with_records(
        self,
        codebase: Codebase,
        include_dynamic: bool = False,
    ) -> Tuple[Dict[str, float], List[Dict[str, Any]]]:
        """Feature row *and* per-file analyzer records for one codebase.

        The gate surfaces (``repro gate``/``repro watch``/``POST
        /gate``) run on this: the records are what per-file delta
        attribution diffs, and with a cache configured the method works
        at file granularity — every file whose record is already cached
        (from a prior gate run, an ``/analyze`` request, *or the other
        side of the same gate*, since file keys ignore the app name) is
        reused, only changed files are recomputed (fanned out across
        ``workers``), and fresh records seed the cache for the next
        run. The merged row is byte-identical to a cold extraction's by
        the same :func:`~repro.core.features.merge_records` argument.

        Failures always raise :class:`ExtractionError` — there is no
        row to skip to, as with :meth:`extract_one`.
        """
        from repro.core.features import (
            extract_features_with_records, file_record, merge_records,
        )

        sources = codebase.files
        with obs.span("engine.extract_records", app=codebase.name,
                      files=len(sources),
                      cache=self.cache is not None) as span:
            if self.cache is None:
                try:
                    row, records = extract_features_with_records(
                        codebase, include_dynamic=include_dynamic)
                except Exception as exc:
                    raise ExtractionError(
                        f"{codebase.name}: {type(exc).__name__}: {exc}"
                    ) from exc
                obs.incr("engine.extracted")
                row = {key: float(value) for key, value in row.items()}
                return row, records
            file_digests = [
                file_digest(source,
                            analyzer_version=self.cache.analyzer_version)
                for source in sources
            ]
            records = [self.cache.get_file(digest)
                       for digest in file_digests]
            recompute = [pos for pos, record in enumerate(records)
                         if record is None]
            span.set_attr("files_reused", len(sources) - len(recompute))
            span.set_attr("files_recomputed", len(recompute))
            if recompute:
                try:
                    fresh = parallel_map(
                        file_record,
                        [sources[pos] for pos in recompute],
                        workers=self.workers)
                except Exception as exc:
                    raise ExtractionError(
                        f"{codebase.name}: {type(exc).__name__}: {exc}"
                    ) from exc
                for pos, record in zip(recompute, fresh):
                    records[pos] = record
            try:
                row = merge_records(codebase, records,
                                    include_dynamic=include_dynamic)
            except Exception as exc:
                raise ExtractionError(
                    f"{codebase.name}: merge failed — "
                    f"{type(exc).__name__}: {exc}") from exc
            row = {key: float(value) for key, value in row.items()}
            obs.incr("engine.extracted")
            digest = task_digest(
                codebase, include_dynamic=include_dynamic,
                analyzer_version=self.cache.analyzer_version)
            self.cache.put(digest, row, app=codebase.name)
            for pos in recompute:
                self.cache.put_file(file_digests[pos],
                                    sources[pos].path, records[pos])
            self.cache.put_manifest(
                manifest_key(codebase.name,
                             analyzer_version=self.cache.analyzer_version),
                {source.path: file_digests[pos]
                 for pos, source in enumerate(sources)})
            return row, records

    # -- incremental (file-granular) path -----------------------------

    def _probe_files(self, task: ExtractionTask) -> _DeltaPlan:
        """Ask the file cache for each file's analyzer record.

        Runs only after the whole-row lookup missed (a full-row hit
        must not touch the ``engine.cache.file_*`` counters). The
        returned plan prefils cached records and pins the positions
        that need recomputation.
        """
        sources = task.codebase.files
        file_digests = [
            file_digest(source,
                        analyzer_version=self.cache.analyzer_version)
            for source in sources
        ]
        records: List[Optional[Dict[str, Any]]] = [
            self.cache.get_file(digest) for digest in file_digests
        ]
        recompute = [pos for pos, record in enumerate(records)
                     if record is None]
        return _DeltaPlan(
            file_digests=file_digests,
            records=records,
            hits=len(records) - len(recompute),
            recompute=recompute,
        )

    def _classify_delta(self, task: ExtractionTask,
                        plan: _DeltaPlan) -> None:
        """Compare against the app's manifest for the delta counters.

        The manifest (last run's path → file-digest map) is purely
        advisory: it exists so ``engine.delta.files_changed`` /
        ``files_added`` / ``files_removed`` / ``files_unchanged`` can
        name *why* files are being recomputed. Correctness never
        depends on it — a missing or stale manifest just means no
        delta counters.
        """
        manifest = self.cache.get_manifest(
            manifest_key(task.name,
                         analyzer_version=self.cache.analyzer_version))
        if manifest is None:
            return
        current = {
            source.path: digest
            for source, digest in zip(task.codebase.files,
                                      plan.file_digests)
        }
        changed = sum(1 for path, digest in current.items()
                      if path in manifest and manifest[path] != digest)
        added = sum(1 for path in current if path not in manifest)
        removed = sum(1 for path in manifest if path not in current)
        unchanged = len(current) - changed - added
        for name, value in (
            ("engine.delta.files_changed", changed),
            ("engine.delta.files_added", added),
            ("engine.delta.files_removed", removed),
            ("engine.delta.files_unchanged", unchanged),
        ):
            if value:
                obs.incr(name, value)

    def _merge_deltas(
        self,
        tasks: Sequence[ExtractionTask],
        delta_indices: List[int],
        plans: Dict[int, _DeltaPlan],
        rows: List[Optional[Dict[str, float]]],
        digests: List[Optional[str]],
        failures: Dict[int, TaskFailure],
    ) -> None:
        """Fold cached + fresh file records into rows for delta tasks.

        Runs the same :func:`~repro.core.features.merge_records` a cold
        extraction runs, so the merged row is byte-identical to one
        computed from scratch. A task that already failed (one of its
        file units exhausted the policy) is skipped; a merge crash is
        subject to the same ``on_error`` policy as extraction itself.
        """
        if not delta_indices:
            return
        from repro.core.features import merge_records

        for index in delta_indices:
            if index in failures:
                continue
            task = tasks[index]
            plan = plans[index]
            error: Optional[BaseException] = None
            with obs.span("testbed.app", app=task.name, cached=False,
                          delta=True, files_reused=plan.hits,
                          files_recomputed=len(plan.recompute),
                          ) as app_span:
                try:
                    row = merge_records(
                        task.codebase, plan.records,
                        nominal_kloc=task.nominal_kloc,
                        history=task.history,
                        include_dynamic=task.include_dynamic,
                    )
                except Exception as exc:
                    app_span.set_attr("error", type(exc).__name__)
                    if self.on_error == "raise":
                        raise
                    error = exc
            if error is not None:
                self._record_failure(failures, task, index, "crash",
                                     error, _format_tb(error), 1)
                continue
            rows[index] = {key: float(value)
                           for key, value in row.items()}
            obs.incr("engine.extracted")
            self.cache.put(digests[index], rows[index], app=task.name)
            for pos in plan.recompute:
                self.cache.put_file(plan.file_digests[pos],
                                    task.codebase.files[pos].path,
                                    plan.records[pos])
            self.cache.put_manifest(
                manifest_key(
                    task.name,
                    analyzer_version=self.cache.analyzer_version),
                {source.path: plan.file_digests[pos]
                 for pos, source in enumerate(task.codebase.files)})

    # -- failure-policy machinery -------------------------------------

    def _run_pending(
        self,
        tasks: Sequence[ExtractionTask],
        units: List[_Unit],
        rows: List[Optional[Dict[str, float]]],
        digests: List[Optional[str]],
        plans: Dict[int, _DeltaPlan],
    ) -> Dict[int, TaskFailure]:
        """Drive cache misses to completion or recorded failure.

        ``units`` mixes whole-app and per-file work; positions into it
        are the scheduling currency (attempts, retries, batches), while
        failures are keyed by *task* index — the first failing unit of
        a task claims the blame and the task's remaining units are
        dropped from the queue.
        """
        failures: Dict[int, TaskFailure] = {}
        attempts: Dict[int, int] = {pos: 0 for pos in range(len(units))}
        last_kind: Dict[int, str] = {}
        queue: List[int] = list(range(len(units)))
        rebuilds_left = 1
        while queue:
            queue = [pos for pos in queue
                     if units[pos].task_index not in failures]
            serial_batch = [
                pos for pos in queue
                if self.on_error == "retry"
                and last_kind.get(pos) == "crash"
                and 0 < attempts[pos] == self.max_retries
            ]
            pool_positions = [p for p in queue
                              if p not in set(serial_batch)]
            # A worker-lost suspect re-runs *alone* in its own pool: if
            # it kills its worker again, the blame cannot spill onto
            # innocent batch-mates that merely shared the broken pool.
            grouped = [p for p in pool_positions
                       if last_kind.get(p) != "worker-lost"]
            batches: List[List[int]] = [grouped] if grouped else []
            batches.extend(
                [p] for p in pool_positions
                if last_kind.get(p) == "worker-lost")
            queue = []
            for batch in batches:
                outcome = self._pool_round(
                    tasks, units, batch, rows, digests, plans, attempts,
                    force_processes=batch is not grouped,
                )
                for pos, (kind, exc, tb) in outcome.errors.items():
                    attempts[pos] += 1
                    last_kind[pos] = kind
                    unit = units[pos]
                    if (kind == "crash" and self.on_error == "retry"
                            and attempts[pos] <= self.max_retries):
                        obs.incr("engine.task_retries")
                        obs.event(
                            "engine.task_retry",
                            app=tasks[unit.task_index].name,
                            file=unit.source.path if unit.source else "",
                            attempt=attempts[pos],
                            error_type=type(exc).__name__)
                        queue.append(pos)
                        continue
                    self._record_failure(
                        failures, tasks[unit.task_index],
                        unit.task_index, kind, exc, tb, attempts[pos],
                        file=unit.source.path if unit.source else "")
                if outcome.broken:
                    if self.on_error == "raise":
                        # Fail-fast: a dead worker aborts the run (pool
                        # rebuilding is a skip/retry amenity).
                        raise outcome.broken_exc
                    suspects = outcome.lost + outcome.unfinished
                    for pos in suspects:
                        attempts[pos] += 1
                        last_kind[pos] = "worker-lost"
                    if rebuilds_left > 0 and suspects:
                        rebuilds_left -= 1
                        obs.incr("engine.pool_rebuilds")
                        obs.event(
                            "engine.pool_rebuild",
                            suspects=[tasks[units[p].task_index].name
                                      for p in suspects])
                        queue.extend(suspects)
                    else:
                        for pos in suspects:
                            unit = units[pos]
                            self._record_failure(
                                failures, tasks[unit.task_index],
                                unit.task_index, "worker-lost",
                                outcome.broken_exc, "", attempts[pos],
                                file=(unit.source.path
                                      if unit.source else ""))
            for pos in serial_batch:
                if units[pos].task_index in failures:
                    continue
                attempts[pos] += 1
                self._serial_attempt(units[pos], pos, tasks, rows,
                                     digests, plans, attempts, failures)
        return failures

    def _submit(self, pool: Any, unit: _Unit,
                tasks: Sequence[ExtractionTask],
                plans: Dict[int, _DeltaPlan], capture: bool,
                trace_id: Optional[str] = None) -> Any:
        """Submit one unit to ``pool`` with the right entry point."""
        task = tasks[unit.task_index]
        if unit.source is not None:
            return pool.submit(_execute_file, task.name, unit.source,
                               capture, trace_id)
        # A plan exists exactly when the cache is configured and the
        # codebase is non-empty — the cases where the per-file records
        # are worth shipping back to seed the file cache.
        want_records = unit.task_index in plans
        return pool.submit(_execute_task, task, capture, want_records,
                           trace_id)

    def _store_success(
        self,
        task: ExtractionTask,
        index: int,
        result: _WorkerResult,
        rows: List[Optional[Dict[str, float]]],
        digests: List[Optional[str]],
        plans: Dict[int, _DeltaPlan],
    ) -> None:
        """Store a completed whole-app unit: row, caches, manifest."""
        rows[index] = result.row
        obs.incr("engine.extracted")
        if self.cache is None or digests[index] is None:
            return
        self.cache.put(digests[index], result.row, app=task.name)
        plan = plans.get(index)
        if plan is None or result.records is None:
            return
        sources = task.codebase.files
        for pos, source in enumerate(sources):
            self.cache.put_file(plan.file_digests[pos], source.path,
                                result.records[pos])
        self.cache.put_manifest(
            manifest_key(task.name,
                         analyzer_version=self.cache.analyzer_version),
            {source.path: plan.file_digests[pos]
             for pos, source in enumerate(sources)})

    def _pool_round(
        self,
        tasks: Sequence[ExtractionTask],
        units: List[_Unit],
        positions: List[int],
        rows: List[Optional[Dict[str, float]]],
        digests: List[Optional[str]],
        plans: Dict[int, _DeltaPlan],
        attempts: Dict[int, int],
        force_processes: bool = False,
    ) -> _RoundOutcome:
        """Submit unit ``positions`` to one pool, collect in unit order.

        Successes are stored (row/record, cache, telemetry graft) here;
        every kind of failure is classified into the returned outcome
        for the policy loop to act on. ``force_processes`` keeps a
        suspected worker-killer out of the scheduler's own process even
        when the batch is a single unit; a configured timeout forces
        processes too, because a serial unit cannot be preempted.
        """
        use_processes = self.workers > 1 and (
            len(positions) > 1 or force_processes
            or self.task_timeout is not None)
        if use_processes:
            pool: Any = ProcessPoolExecutor(
                max_workers=min(self.workers, len(positions)))
        else:
            pool = _SerialPool()
        capture = use_processes and obs.is_enabled()
        # The trace identity workers inherit, resolved once per round:
        # the daemon's per-request scope or the CLI's per-invocation
        # default, whichever governs this call.
        trace_id = obs.current_trace_id() if capture else None
        outcome = _RoundOutcome()
        timed_out = False
        completed_normally = False
        try:
            futures: List[Tuple[int, Any]] = []
            try:
                for pos in positions:
                    futures.append(
                        (pos, self._submit(pool, units[pos], tasks,
                                           plans, capture, trace_id)))
            except BrokenExecutor as exc:
                outcome.broken = True
                outcome.broken_exc = exc
                submitted = {pos for pos, _ in futures}
                outcome.unfinished.extend(
                    pos for pos in positions if pos not in submitted)
            for pos, future in futures:
                unit = units[pos]
                task = tasks[unit.task_index]
                span_attrs: Dict[str, Any] = dict(
                    app=task.name, cached=False,
                    attempt=attempts[pos] + 1)
                if unit.source is not None:
                    span_attrs["file"] = unit.source.path
                with obs.span("testbed.app", **span_attrs) as app_span:
                    try:
                        if outcome.broken:
                            result = future.result(
                                timeout=_POST_BREAK_GRACE)
                        elif (use_processes
                                and self.task_timeout is not None):
                            result = future.result(
                                timeout=self.task_timeout)
                        else:
                            result = future.result()
                    except Exception as exc:
                        if isinstance(exc, BrokenExecutor):
                            app_span.set_attr("error", type(exc).__name__)
                            if outcome.broken:
                                outcome.unfinished.append(pos)
                            else:
                                outcome.broken = True
                                outcome.broken_exc = exc
                                outcome.lost.append(pos)
                            continue
                        if (isinstance(exc, FutureTimeout)
                                and not future.done()):
                            if outcome.broken:
                                # post-break grace expired: lost work
                                app_span.set_attr(
                                    "error", "BrokenProcessPool")
                                outcome.unfinished.append(pos)
                                continue
                            timed_out = True
                            app_span.set_attr("error", "TaskTimeout")
                            timeout_exc = TaskTimeout(
                                f"{task.name}: no result within "
                                f"{self.task_timeout:g}s")
                            if self.on_error == "raise":
                                raise timeout_exc from exc
                            outcome.errors[pos] = (
                                "timeout", timeout_exc, "")
                            continue
                        app_span.set_attr("error", type(exc).__name__)
                        if self.on_error == "raise":
                            raise
                        outcome.errors[pos] = (
                            "crash", exc, _format_tb(exc))
                        continue
                    if result.span_records:
                        obs.graft_spans(result.span_records)
                    if result.counters:
                        obs.merge_counters(result.counters)
                if unit.source is not None:
                    plans[unit.task_index].records[unit.file_pos] = (
                        result.record)
                else:
                    self._store_success(task, unit.task_index, result,
                                        rows, digests, plans)
            completed_normally = True
        finally:
            if not completed_normally or timed_out or outcome.broken:
                # Fatal abort, hung worker, or dead worker: never wait.
                _terminate_pool(pool)
            else:
                pool.shutdown(wait=True)
        return outcome

    def _serial_attempt(
        self,
        unit: _Unit,
        pos: int,
        tasks: Sequence[ExtractionTask],
        rows: List[Optional[Dict[str, float]]],
        digests: List[Optional[str]],
        plans: Dict[int, _DeltaPlan],
        attempts: Dict[int, int],
        failures: Dict[int, TaskFailure],
    ) -> None:
        """The retry ladder's last rung: re-run in this very process."""
        task = tasks[unit.task_index]
        span_attrs: Dict[str, Any] = dict(
            app=task.name, cached=False, attempt=attempts[pos],
            serial_retry=True)
        if unit.source is not None:
            span_attrs["file"] = unit.source.path
        with obs.span("testbed.app", **span_attrs) as app_span:
            try:
                if unit.source is not None:
                    result = _execute_file(task.name, unit.source,
                                           capture_obs=False)
                else:
                    result = _execute_task(
                        task, capture_obs=False,
                        want_records=unit.task_index in plans)
            except Exception as exc:
                app_span.set_attr("error", type(exc).__name__)
                self._record_failure(
                    failures, task, unit.task_index, "crash", exc,
                    _format_tb(exc), attempts[pos],
                    file=unit.source.path if unit.source else "")
                return
        if unit.source is not None:
            plans[unit.task_index].records[unit.file_pos] = result.record
        else:
            self._store_success(task, unit.task_index, result, rows,
                                digests, plans)

    @staticmethod
    def _record_failure(
        failures: Dict[int, TaskFailure],
        task: ExtractionTask,
        index: int,
        kind: str,
        exc: BaseException,
        tb: str,
        attempts: int,
        file: str = "",
    ) -> None:
        if index in failures:
            # First failing unit claims the task; later units of the
            # same task (still in flight when it failed) are dropped.
            return
        failures[index] = TaskFailure(
            app=task.name,
            kind=kind,
            attempts=attempts,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback=tb,
            file=file,
        )
        obs.incr("engine.task_failures")
        obs.event("engine.task_failure", app=task.name, kind=kind,
                  attempts=attempts, error_type=type(exc).__name__,
                  file=file)
