"""Engine configuration shared by the CLI and the public API.

Every command that extracts features takes the same six knobs
(``--workers``, ``--cache-dir``, ``--no-cache``, ``--on-error``,
``--task-timeout``, ``--max-retries``). This module declares them
exactly once:

- :func:`engine_options` — an argparse *parent* parser carrying the
  flags, attached to every subcommand so the surface cannot drift
  between commands.
- :class:`EngineConfig` — the frozen value object the parsed flags
  collapse into; :meth:`EngineConfig.build` resolves the precedence
  (explicit flag > ``REPRO_WORKERS``/``REPRO_CACHE_DIR`` environment >
  built-in default) into a ready :class:`ExtractionEngine`.

Library callers use :class:`EngineConfig` directly — it is part of the
public API (``repro.EngineConfig``) — so a script and a shell invocation
configure extraction through the same object.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Optional

from repro.engine.cache import FeatureCache
from repro.engine.scheduler import ExtractionEngine, ON_ERROR_POLICIES


@dataclass(frozen=True)
class EngineConfig:
    """Declarative extraction-engine configuration.

    ``None`` fields mean "defer": :meth:`build` falls back to the
    ``REPRO_WORKERS``/``REPRO_CACHE_DIR`` environment and the engine's
    built-in defaults, mirroring what the CLI does with unset flags.
    ``no_cache=True`` disables caching even when the environment (or
    ``cache_dir``) configures one.

    ``cache_dir`` is a URI-style backend spec: a plain path selects
    the sharded filesystem layout, ``sqlite:PATH`` a single SQLite
    database in WAL mode that many concurrent runs (CI runners,
    daemons) can share as one warm cache.
    """

    workers: Optional[int] = None
    cache_dir: Optional[str] = None
    no_cache: bool = False
    on_error: Optional[str] = None
    task_timeout: Optional[float] = None
    max_retries: Optional[int] = None

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "EngineConfig":
        """Collapse an argparse namespace into a config.

        Tolerant of namespaces missing the engine attributes (a
        subcommand that somehow lacks the shared parent just gets the
        deferred defaults).
        """
        return cls(
            workers=getattr(args, "workers", None),
            cache_dir=getattr(args, "cache_dir", None),
            no_cache=bool(getattr(args, "no_cache", False)),
            on_error=getattr(args, "on_error", None),
            task_timeout=getattr(args, "task_timeout", None),
            max_retries=getattr(args, "max_retries", None),
        )

    def build(self) -> ExtractionEngine:
        """Resolve this config into a ready :class:`ExtractionEngine`.

        Explicit fields win; unset fields fall back to the environment
        (``REPRO_WORKERS``/``REPRO_CACHE_DIR``); ``no_cache`` disables
        caching even when the environment configures a cache dir.
        """
        env_engine = ExtractionEngine.from_env()
        workers = self.workers if self.workers is not None \
            else env_engine.workers
        if self.no_cache:
            cache = None
        elif self.cache_dir:
            cache = FeatureCache(self.cache_dir)
        else:
            cache = env_engine.cache
        return ExtractionEngine(
            workers=workers,
            cache=cache,
            on_error=self.on_error or "raise",
            task_timeout=self.task_timeout,
            max_retries=self.max_retries
            if self.max_retries is not None else 2,
        )


def engine_options() -> argparse.ArgumentParser:
    """The shared argparse parent declaring the engine flags once.

    Attach with ``add_parser(..., parents=[engine_options()])``; every
    subcommand then accepts the identical engine surface and
    :meth:`EngineConfig.from_args` reads it back uniformly.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group(
        "engine options",
        "extraction engine knobs shared by every command; defaults "
        "fall back to $REPRO_WORKERS / $REPRO_CACHE_DIR")
    group.add_argument(
        "--workers", type=int, metavar="N", default=None,
        help="parallel extraction worker processes (default: "
             "$REPRO_WORKERS or 1)")
    group.add_argument(
        "--cache-dir", metavar="PATH|sqlite:PATH", default=None,
        help="content-addressed feature cache: a directory for the "
             "filesystem backend, sqlite:PATH for a shared SQLite "
             "database many runs can use concurrently (default: "
             "$REPRO_CACHE_DIR or no cache)")
    group.add_argument(
        "--no-cache", action="store_true",
        help="disable the feature cache even if $REPRO_CACHE_DIR is set")
    group.add_argument(
        "--on-error", choices=list(ON_ERROR_POLICIES), default=None,
        help="failure policy for per-app extraction (default: raise)")
    group.add_argument(
        "--task-timeout", type=float, metavar="SECONDS", default=None,
        help="per-app wall-clock extraction budget (workers > 1 only)")
    group.add_argument(
        "--max-retries", type=int, metavar="N", default=None,
        help="extra attempts per crashed app with --on-error retry "
             "(default: 2)")
    return parent
