"""Content-addressed digests for the feature cache.

A cache entry is valid only while *everything* that feeds the feature
row is unchanged: the codebase's file contents (and their paths — a
rename moves findings), the commit history behind the churn features,
the extraction arguments, and the analyzer set itself. Each of those is
folded into one hex key here.

The digest deliberately ignores *how* a :class:`~repro.lang.sourcefile.
Codebase` was assembled: files are hashed in path-sorted order, so two
byte-identical codebases built in different insertion orders (or loaded
from disk vs memory) share a key, while editing, adding, deleting, or
renaming any file produces a new one.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional

from repro.analysis.churn import CommitHistory
from repro.lang.sourcefile import Codebase

#: Version of the analyzer set feeding :func:`repro.core.features
#: .extract_features`. Bump whenever any analyzer, the bug-finding
#: rules, or the feature-row schema changes in a way that alters
#: emitted values — every cached entry keyed on the old version then
#: misses cleanly instead of serving stale rows.
ANALYZER_SET_VERSION = "2026.08.06-2"


def _hasher() -> "hashlib._Hash":
    return hashlib.sha256()


def codebase_digest(codebase: Codebase) -> str:
    """Digest of a codebase's contents, invariant to assembly order.

    Hashes ``(path, language, sha256(text))`` per file, iterating in the
    codebase's canonical path-sorted order. The application *name* is
    excluded on purpose: the same tree analysed under two names yields
    the same features (only densities and counts depend on content).

    Every text field is hashed as ``\\x00``-delimited UTF-8 — a
    non-ASCII language tag (or path) must never abort extraction, and
    the delimiters keep adjacent fields from aliasing each other.
    """
    h = _hasher()
    for source in codebase.files:
        h.update(source.path.encode("utf-8"))
        h.update(b"\x00")
        h.update(source.language.encode("utf-8"))
        h.update(b"\x00")
        h.update(hashlib.sha256(source.text.encode("utf-8")).digest())
        h.update(b"\x01")
    return h.hexdigest()


def history_digest(history: Optional[CommitHistory]) -> str:
    """Digest of a commit history (``no-history`` sentinel for None).

    Every field — author, day, per-delta path and line counts — is
    hashed as ``\\x00``-delimited UTF-8, with ``\\x1e`` closing each
    delta and ``\\x01`` closing each commit. Unambiguous framing
    matters: the old scheme appended ``:added:deleted`` straight onto
    the path, so a path that itself ended in ``:2:3`` could collide
    with a different (path, counts) split.
    """
    h = _hasher()
    if history is None:
        h.update(b"no-history")
        return h.hexdigest()
    for commit in history.commits:
        h.update(commit.author.encode("utf-8"))
        h.update(b"\x00")
        h.update(str(commit.day).encode("utf-8"))
        h.update(b"\x00")
        for delta in commit.deltas:
            h.update(delta.path.encode("utf-8"))
            h.update(b"\x00")
            h.update(str(delta.lines_added).encode("utf-8"))
            h.update(b"\x00")
            h.update(str(delta.lines_deleted).encode("utf-8"))
            h.update(b"\x1e")
        h.update(b"\x01")
    return h.hexdigest()


def task_digest(
    codebase: Codebase,
    nominal_kloc: Optional[float] = None,
    history: Optional[CommitHistory] = None,
    include_dynamic: bool = False,
    analyzer_version: str = ANALYZER_SET_VERSION,
) -> str:
    """The cache key for one feature-extraction task.

    Combines the codebase and history digests with the extraction
    arguments and the analyzer-set version. ``nominal_kloc`` enters via
    ``repr`` so the float round-trips exactly.
    """
    payload = json.dumps(
        {
            "analyzer_version": analyzer_version,
            "codebase": codebase_digest(codebase),
            "history": history_digest(history),
            "include_dynamic": include_dynamic,
            "nominal_kloc": repr(nominal_kloc),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
