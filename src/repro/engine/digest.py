"""Content-addressed digests for the feature cache.

A cache entry is valid only while *everything* that feeds the feature
row is unchanged: the codebase's file contents (and their paths — a
rename moves findings), the commit history behind the churn features,
the extraction arguments, and the analyzer set itself. Each of those is
folded into one hex key here.

The digest deliberately ignores *how* a :class:`~repro.lang.sourcefile.
Codebase` was assembled: files are hashed in path-sorted order, so two
byte-identical codebases built in different insertion orders (or loaded
from disk vs memory) share a key, while editing, adding, deleting, or
renaming any file produces a new one.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional

from repro.analysis.churn import CommitHistory
from repro.lang.sourcefile import Codebase, SourceFile

#: Version of the analyzer set feeding :func:`repro.core.features
#: .extract_features`. Bump whenever any analyzer, the bug-finding
#: rules, or the feature-row schema changes in a way that alters
#: emitted values — every cached entry keyed on the old version then
#: misses cleanly instead of serving stale rows. Per-file records share
#: this version: their partial layout is part of the analyzer set.
ANALYZER_SET_VERSION = "2026.08.06-3"


def _hasher() -> "hashlib._Hash":
    return hashlib.sha256()


def codebase_digest(codebase: Codebase) -> str:
    """Digest of a codebase's contents, invariant to assembly order.

    Hashes ``(path, language, sha256(text))`` per file, iterating in the
    codebase's canonical path-sorted order. The application *name* is
    excluded on purpose: the same tree analysed under two names yields
    the same features (only densities and counts depend on content).

    Every text field is hashed as ``\\x00``-delimited UTF-8 — a
    non-ASCII language tag (or path) must never abort extraction, and
    the delimiters keep adjacent fields from aliasing each other.
    """
    h = _hasher()
    for source in codebase.files:
        h.update(source.path.encode("utf-8"))
        h.update(b"\x00")
        h.update(source.language.encode("utf-8"))
        h.update(b"\x00")
        h.update(hashlib.sha256(source.text.encode("utf-8")).digest())
        h.update(b"\x01")
    return h.hexdigest()


def file_digest(source: SourceFile,
                analyzer_version: str = ANALYZER_SET_VERSION) -> str:
    """The cache key for one file's per-file analyzer record.

    Keyed on the file's path, language, content bytes, and the analyzer
    set version, under a ``file-record`` domain prefix so a file-record
    key can never alias a task or manifest key. The path is included on
    purpose: per-file records carry path-dependent facts (bug-finding
    dedup keys pin the path), so a renamed file must miss and recompute
    rather than resurrect another path's record.
    """
    h = _hasher()
    h.update(b"file-record\x00")
    h.update(analyzer_version.encode("utf-8"))
    h.update(b"\x00")
    h.update(source.path.encode("utf-8"))
    h.update(b"\x00")
    h.update(source.language.encode("utf-8"))
    h.update(b"\x00")
    h.update(hashlib.sha256(source.text.encode("utf-8")).digest())
    return h.hexdigest()


def manifest_key(app: str,
                 analyzer_version: str = ANALYZER_SET_VERSION) -> str:
    """The cache key of an application's file-digest manifest.

    Keyed on the application *name* (not content — the manifest exists
    precisely to survive content changes) under its own domain prefix.
    The manifest is advisory: it only classifies a warm run's files as
    changed/added/removed for the delta counters, never gates reuse.
    """
    h = _hasher()
    h.update(b"manifest\x00")
    h.update(analyzer_version.encode("utf-8"))
    h.update(b"\x00")
    h.update(app.encode("utf-8"))
    return h.hexdigest()


def history_digest(history: Optional[CommitHistory]) -> str:
    """Digest of a commit history (``no-history`` sentinel for None).

    Every field — author, day, per-delta path and line counts — is
    hashed as ``\\x00``-delimited UTF-8, with ``\\x1e`` closing each
    delta and ``\\x01`` closing each commit. Unambiguous framing
    matters: the old scheme appended ``:added:deleted`` straight onto
    the path, so a path that itself ended in ``:2:3`` could collide
    with a different (path, counts) split.
    """
    h = _hasher()
    if history is None:
        h.update(b"no-history")
        return h.hexdigest()
    for commit in history.commits:
        h.update(commit.author.encode("utf-8"))
        h.update(b"\x00")
        h.update(str(commit.day).encode("utf-8"))
        h.update(b"\x00")
        for delta in commit.deltas:
            h.update(delta.path.encode("utf-8"))
            h.update(b"\x00")
            h.update(str(delta.lines_added).encode("utf-8"))
            h.update(b"\x00")
            h.update(str(delta.lines_deleted).encode("utf-8"))
            h.update(b"\x1e")
        h.update(b"\x01")
    return h.hexdigest()


def task_digest(
    codebase: Codebase,
    nominal_kloc: Optional[float] = None,
    history: Optional[CommitHistory] = None,
    include_dynamic: bool = False,
    analyzer_version: str = ANALYZER_SET_VERSION,
) -> str:
    """The cache key for one feature-extraction task.

    Combines the codebase and history digests with the extraction
    arguments and the analyzer-set version. ``nominal_kloc`` enters via
    ``repr`` so the float round-trips exactly.
    """
    payload = json.dumps(
        {
            "analyzer_version": analyzer_version,
            "codebase": codebase_digest(codebase),
            "history": history_digest(history),
            "include_dynamic": include_dynamic,
            "nominal_kloc": repr(nominal_kloc),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
