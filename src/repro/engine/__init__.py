"""Parallel, cache-aware execution engine for the testbed.

The paper's framework must run "all the code properties" analyzers over
hundreds of applications (§5.1); this package is the layer that makes
that corpus-scale extraction fast and incremental:

- :mod:`repro.engine.digest` — content-addressed keys over codebase
  bytes, commit history, extraction args, and the analyzer-set version;
- :mod:`repro.engine.cache` — a JSON feature cache, robust to
  corruption, with hit/miss counters in :mod:`repro.obs`; caches whole
  feature rows, per-file analyzer records, and per-app manifests (the
  incremental path's three artefact kinds);
- :mod:`repro.engine.backends` — the pluggable :class:`CacheBackend`
  storage protocol under the cache: the sharded-directory layout by
  default, a shared SQLite WAL database for ``sqlite:PATH`` specs so a
  fleet of runs shares one warm cache;
- :mod:`repro.engine.config` — the :class:`EngineConfig` value object
  (and shared argparse parent) every CLI command and the public API
  configure the engine through;
- :mod:`repro.engine.scheduler` — a process-pool scheduler with a
  serial fallback sharing the same code path, failure policies
  (``on_error="raise"|"skip"|"retry"``), per-task timeouts, and
  worker-crash recovery, plus the generic
  :func:`~repro.engine.scheduler.parallel_map` primitive the corpus
  builder reuses;
- :mod:`repro.engine.faults` — the fault-injection seam the recovery
  tests drive (inert unless ``REPRO_FAULTS`` is set).

Results are deterministic: rows merge in task order and are
bit-identical to a serial uncached run; under ``on_error="skip"`` the
surviving rows stay byte-identical to a clean run over the same apps.
"""

from repro.engine.backends import (
    BackendReadError,
    CacheBackend,
    FilesystemBackend,
    SqliteBackend,
    backend_from_spec,
)
from repro.engine.cache import CACHE_FORMAT_VERSION, FeatureCache
from repro.engine.config import EngineConfig, engine_options
from repro.engine.digest import (
    ANALYZER_SET_VERSION,
    codebase_digest,
    file_digest,
    history_digest,
    manifest_key,
    task_digest,
)
from repro.engine.scheduler import (
    CACHE_DIR_ENV,
    ON_ERROR_POLICIES,
    WORKERS_ENV,
    ExtractionEngine,
    ExtractionError,
    ExtractionReport,
    ExtractionTask,
    TaskFailure,
    TaskTimeout,
    format_failures,
    parallel_map,
)

__all__ = [
    "ANALYZER_SET_VERSION",
    "BackendReadError",
    "CACHE_DIR_ENV",
    "CACHE_FORMAT_VERSION",
    "CacheBackend",
    "EngineConfig",
    "FilesystemBackend",
    "SqliteBackend",
    "ExtractionEngine",
    "ExtractionError",
    "ExtractionReport",
    "ExtractionTask",
    "FeatureCache",
    "ON_ERROR_POLICIES",
    "TaskFailure",
    "TaskTimeout",
    "WORKERS_ENV",
    "backend_from_spec",
    "codebase_digest",
    "engine_options",
    "file_digest",
    "format_failures",
    "history_digest",
    "manifest_key",
    "parallel_map",
    "task_digest",
]
