"""Parallel, cache-aware execution engine for the testbed.

The paper's framework must run "all the code properties" analyzers over
hundreds of applications (§5.1); this package is the layer that makes
that corpus-scale extraction fast and incremental:

- :mod:`repro.engine.digest` — content-addressed keys over codebase
  bytes, commit history, extraction args, and the analyzer-set version;
- :mod:`repro.engine.cache` — a JSON feature cache under a directory,
  robust to corruption, with hit/miss counters in :mod:`repro.obs`;
- :mod:`repro.engine.scheduler` — a process-pool scheduler with a
  serial fallback sharing the same code path, failure policies
  (``on_error="raise"|"skip"|"retry"``), per-task timeouts, and
  worker-crash recovery, plus the generic
  :func:`~repro.engine.scheduler.parallel_map` primitive the corpus
  builder reuses;
- :mod:`repro.engine.faults` — the fault-injection seam the recovery
  tests drive (inert unless ``REPRO_FAULTS`` is set).

Results are deterministic: rows merge in task order and are
bit-identical to a serial uncached run; under ``on_error="skip"`` the
surviving rows stay byte-identical to a clean run over the same apps.
"""

from repro.engine.cache import CACHE_FORMAT_VERSION, FeatureCache
from repro.engine.digest import (
    ANALYZER_SET_VERSION,
    codebase_digest,
    history_digest,
    task_digest,
)
from repro.engine.scheduler import (
    CACHE_DIR_ENV,
    ON_ERROR_POLICIES,
    WORKERS_ENV,
    ExtractionEngine,
    ExtractionError,
    ExtractionReport,
    ExtractionTask,
    TaskFailure,
    TaskTimeout,
    format_failures,
    parallel_map,
)

__all__ = [
    "ANALYZER_SET_VERSION",
    "CACHE_DIR_ENV",
    "CACHE_FORMAT_VERSION",
    "ExtractionEngine",
    "ExtractionError",
    "ExtractionReport",
    "ExtractionTask",
    "FeatureCache",
    "ON_ERROR_POLICIES",
    "TaskFailure",
    "TaskTimeout",
    "WORKERS_ENV",
    "codebase_digest",
    "format_failures",
    "history_digest",
    "parallel_map",
    "task_digest",
]
