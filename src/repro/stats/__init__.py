"""Statistics substrate: regression, correlation, order-of-magnitude buckets."""

from repro.stats import bucketing, correlation, inference, regression
from repro.stats.bucketing import (
    BucketingError,
    bucket_by_magnitude,
    bucketed_means,
    magnitude_histogram,
    meaningful_loc_comparison,
    order_of_magnitude,
    orders_apart,
    same_order,
)
from repro.stats.correlation import CorrelationError, pearson, spearman
from repro.stats.inference import (
    BootstrapResult,
    InferenceError,
    PermutationResult,
    bootstrap_ci,
    paired_difference_test,
    permutation_test,
)
from repro.stats.regression import (
    LinearFit,
    RegressionError,
    fit_linear,
    fit_loglog,
    r_squared,
)

__all__ = [
    "BootstrapResult",
    "BucketingError",
    "CorrelationError",
    "InferenceError",
    "LinearFit",
    "PermutationResult",
    "RegressionError",
    "bucket_by_magnitude",
    "bucketed_means",
    "bootstrap_ci",
    "bucketing",
    "correlation",
    "fit_linear",
    "inference",
    "fit_loglog",
    "magnitude_histogram",
    "meaningful_loc_comparison",
    "order_of_magnitude",
    "orders_apart",
    "paired_difference_test",
    "pearson",
    "permutation_test",
    "r_squared",
    "regression",
    "same_order",
    "spearman",
]
