"""Resampling-based statistical inference.

§3.1's lesson is phrased in significance language ("not statistically
significant if the difference is within one or two orders of magnitude").
These utilities quantify that kind of claim without distributional
assumptions: bootstrap confidence intervals for any sample statistic
(e.g. the R² of the Figure-2 fit) and permutation tests for association
(is the LoC↔vulnerability correlation distinguishable from chance?).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np


class InferenceError(ValueError):
    """Raised for degenerate inference inputs."""


@dataclass(frozen=True)
class BootstrapResult:
    """A bootstrap estimate with its percentile confidence interval."""

    estimate: float  # statistic on the original sample
    low: float
    high: float
    confidence: float
    n_resamples: int

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_ci(
    xs: Sequence[float],
    ys: Sequence[float],
    statistic: Callable[[Sequence[float], Sequence[float]], float],
    confidence: float = 0.95,
    n_resamples: int = 1000,
    seed: int = 0,
) -> BootstrapResult:
    """Percentile bootstrap CI for a paired-sample statistic.

    Resamples (x, y) pairs with replacement; degenerate resamples (where
    the statistic raises) are skipped, which handles statistics like R²
    that need x-variance.
    """
    if len(xs) != len(ys):
        raise InferenceError("x and y lengths differ")
    if len(xs) < 3:
        raise InferenceError("need at least 3 pairs")
    if not 0.5 < confidence < 1.0:
        raise InferenceError("confidence must be in (0.5, 1)")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    rng = np.random.default_rng(seed)
    estimate = float(statistic(x, y))
    values = []
    attempts = 0
    while len(values) < n_resamples and attempts < n_resamples * 3:
        attempts += 1
        idx = rng.integers(0, len(x), size=len(x))
        try:
            values.append(float(statistic(x[idx], y[idx])))
        except Exception:
            continue
    if len(values) < n_resamples // 2:
        raise InferenceError("too many degenerate bootstrap resamples")
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(values, [alpha, 1.0 - alpha])
    return BootstrapResult(
        estimate=estimate,
        low=float(low),
        high=float(high),
        confidence=confidence,
        n_resamples=len(values),
    )


@dataclass(frozen=True)
class PermutationResult:
    """A permutation test outcome."""

    statistic: float  # observed value
    p_value: float  # two-sided
    n_permutations: int

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def permutation_test(
    xs: Sequence[float],
    ys: Sequence[float],
    statistic: Callable[[Sequence[float], Sequence[float]], float],
    n_permutations: int = 1000,
    seed: int = 0,
) -> PermutationResult:
    """Two-sided permutation test of association between x and y.

    The null distribution comes from shuffling y against x; the p-value
    is the share of permuted |statistic| values at least as extreme as
    the observed one (with the +1 smoothing that keeps p > 0).
    """
    if len(xs) != len(ys):
        raise InferenceError("x and y lengths differ")
    if len(xs) < 3:
        raise InferenceError("need at least 3 pairs")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    rng = np.random.default_rng(seed)
    observed = float(statistic(x, y))
    extreme = 0
    for _ in range(n_permutations):
        permuted = rng.permutation(y)
        value = float(statistic(x, permuted))
        if abs(value) >= abs(observed) - 1e-15:
            extreme += 1
    p_value = (extreme + 1) / (n_permutations + 1)
    return PermutationResult(
        statistic=observed, p_value=p_value, n_permutations=n_permutations
    )


def paired_difference_test(
    a: Sequence[float],
    b: Sequence[float],
    n_permutations: int = 1000,
    seed: int = 0,
) -> PermutationResult:
    """Sign-flip permutation test for a paired difference in means.

    Use case: per-fold metric comparisons between two learners ("is the
    full feature vector really better than LoC-only?").
    """
    if len(a) != len(b):
        raise InferenceError("paired samples must have equal length")
    if len(a) < 3:
        raise InferenceError("need at least 3 pairs")
    diff = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
    rng = np.random.default_rng(seed)
    observed = float(diff.mean())
    extreme = 0
    for _ in range(n_permutations):
        signs = rng.choice([-1.0, 1.0], size=len(diff))
        if abs(float((diff * signs).mean())) >= abs(observed) - 1e-15:
            extreme += 1
    p_value = (extreme + 1) / (n_permutations + 1)
    return PermutationResult(
        statistic=observed, p_value=p_value, n_permutations=n_permutations
    )
