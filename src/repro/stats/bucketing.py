"""Order-of-magnitude bucketing (§3.1).

The paper's key statistical lesson: "Only when one buckets application
sizes and vulnerability counts by orders of magnitude is there a weak
correlation", and comparisons *within* one or two orders of magnitude are
not statistically meaningful. This module provides the bucketing transform
and the within-order comparison test used by the figures and by the
developer-facing evaluator.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple


class BucketingError(ValueError):
    """Raised for non-positive inputs to log-scale bucketing."""


def order_of_magnitude(value: float) -> int:
    """floor(log10(value)) — the value's order of magnitude.

    Raises:
        BucketingError: for non-positive values (no log-scale bucket).
    """
    if value <= 0:
        raise BucketingError(f"cannot bucket non-positive value {value}")
    return math.floor(math.log10(value))


def bucket_by_magnitude(values: Sequence[float]) -> List[int]:
    """Order-of-magnitude bucket of each value."""
    return [order_of_magnitude(v) for v in values]


def magnitude_histogram(values: Sequence[float]) -> Dict[int, int]:
    """Count of values per order-of-magnitude bucket."""
    hist: Dict[int, int] = {}
    for v in values:
        bucket = order_of_magnitude(v)
        hist[bucket] = hist.get(bucket, 0) + 1
    return hist


def same_order(a: float, b: float) -> bool:
    """Whether two values fall in the same order of magnitude."""
    return order_of_magnitude(a) == order_of_magnitude(b)


def orders_apart(a: float, b: float) -> int:
    """Absolute order-of-magnitude gap between two values."""
    return abs(order_of_magnitude(a) - order_of_magnitude(b))


def meaningful_loc_comparison(loc_a: float, loc_b: float,
                              min_orders: int = 1) -> bool:
    """The paper's rule of thumb for LoC-based security claims.

    "Using LoC for security evaluation is not statistically significant if
    the difference is within one or two orders of magnitude." A comparison
    is *meaningful* only when the gap exceeds ``min_orders`` orders.
    """
    return orders_apart(loc_a, loc_b) > min_orders


def bucketed_means(
    xs: Sequence[float], ys: Sequence[float]
) -> List[Tuple[int, float]]:
    """Mean of ``ys`` per order-of-magnitude bucket of ``xs``.

    This is the "bucketed by order of magnitude" view under which Figure 2
    shows its weak trend; returned as (bucket, mean-y) sorted by bucket.
    """
    if len(xs) != len(ys):
        raise BucketingError("x and y lengths differ")
    sums: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for x, y in zip(xs, ys):
        bucket = order_of_magnitude(x)
        sums[bucket] = sums.get(bucket, 0.0) + y
        counts[bucket] = counts.get(bucket, 0) + 1
    return [(b, sums[b] / counts[b]) for b in sorted(sums)]
