"""Correlation coefficients used throughout the measurement study."""

from __future__ import annotations

from typing import Sequence

import numpy as np


class CorrelationError(ValueError):
    """Raised for degenerate correlation inputs."""


def _validate(xs: Sequence[float], ys: Sequence[float]) -> None:
    if len(xs) != len(ys):
        raise CorrelationError("x and y lengths differ")
    if len(xs) < 2:
        raise CorrelationError("need at least 2 points")


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson product-moment correlation in [-1, 1].

    Returns 0.0 when either variable is constant (no linear association
    is measurable), rather than propagating a NaN into the feature code.
    """
    _validate(xs, ys)
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    sx = float(np.std(x))
    sy = float(np.std(y))
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(np.mean((x - x.mean()) * (y - y.mean())) / (sx * sy))


def _ranks(values: Sequence[float]) -> np.ndarray:
    """Fractional (mid) ranks, handling ties."""
    arr = np.asarray(values, dtype=float)
    order = np.argsort(arr, kind="mergesort")
    ranks = np.empty(len(arr), dtype=float)
    i = 0
    while i < len(arr):
        j = i
        while j + 1 < len(arr) and arr[order[j + 1]] == arr[order[i]]:
            j += 1
        mid = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = mid
        i = j + 1
    return ranks


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation (Pearson over mid-ranks)."""
    _validate(xs, ys)
    return pearson(_ranks(xs), _ranks(ys))
