"""Ordinary least squares and the paper's log-log trend fit.

Figure 2's trend line is an OLS fit in log10-log10 space:
``log10(#vuln) = 0.17 + 0.39 * log10(kLoC)`` with R² = 24.66%. This module
provides plain OLS, the log-log convenience wrapper, and the coefficient
of determination the paper quotes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


class RegressionError(ValueError):
    """Raised for degenerate regression inputs."""


@dataclass(frozen=True)
class LinearFit:
    """Result of a simple linear regression y = intercept + slope * x."""

    slope: float
    intercept: float
    r_squared: float
    n: int

    def predict(self, x: float) -> float:
        """Fitted value at ``x``."""
        return self.intercept + self.slope * x


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """OLS fit of ``ys`` on ``xs``.

    Raises:
        RegressionError: fewer than 2 points or zero x-variance.
    """
    if len(xs) != len(ys):
        raise RegressionError("x and y lengths differ")
    if len(xs) < 2:
        raise RegressionError("need at least 2 points")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    x_var = float(np.var(x))
    if x_var == 0.0:
        raise RegressionError("x has zero variance")
    y_mean = np.mean(y)
    slope = float(np.cov(x, y, bias=True)[0, 1] / x_var)
    intercept = float(y_mean - slope * np.mean(x))
    predicted = intercept + slope * x
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y_mean) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LinearFit(slope=slope, intercept=intercept, r_squared=r2, n=len(xs))


def fit_loglog(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """OLS fit in log10-log10 space (Figure 2's trend line).

    Points with a non-positive coordinate are dropped, since the paper's
    axes are log scaled and such points cannot appear on them.
    """
    pairs = [(x, y) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(pairs) < 2:
        raise RegressionError("need at least 2 strictly positive points")
    log_x = [math.log10(x) for x, _ in pairs]
    log_y = [math.log10(y) for _, y in pairs]
    return fit_linear(log_x, log_y)


def r_squared(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Coefficient of determination of the OLS fit of ys on xs."""
    return fit_linear(xs, ys).r_squared
