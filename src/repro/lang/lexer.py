"""A generic, specification-driven lexer.

One lexer covers C, C++, Java, and Python by being parameterised over a
:class:`~repro.lang.languages.LanguageSpec`. It is deliberately tolerant:
unterminated strings and comments lex to the end of file rather than raising,
because the analyzers must degrade gracefully on malformed real-world code
(the paper's testbed runs unattended over hundreds of applications).

Every token records its character offset (``text == source[offset:offset +
len(text)]``), and short token texts — identifiers, keywords, numbers,
operators, punctuation — are interned so that the many set/dict membership
tests downstream (Halstead vocabularies, decision-token counts, call-site
scans) hit pointer-equality fast paths and repeated lexemes share storage.
"""

from __future__ import annotations

import re
import sys
from typing import List

from repro.lang.languages import LanguageSpec
from repro.lang.tokens import Token, TokenKind

# Multi-character operators, longest first so maximal munch works.
_MULTI_OPS = (
    "<<=", ">>=", "...", "->*", "**=", "//=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "::", "**", "//",
    ":=",
)

# First-character dispatch for the multi-op scan: instead of trying all
# 29 operators against every operator character, only the (few, still
# longest-first) candidates sharing its first character are probed.
_MULTI_OPS_BY_CHAR: dict = {}
for _op in _MULTI_OPS:
    _MULTI_OPS_BY_CHAR.setdefault(_op[0], []).append(_op)
_MULTI_OPS_BY_CHAR = {k: tuple(v) for k, v in _MULTI_OPS_BY_CHAR.items()}

_SINGLE_OPS = set("+-*/%<>=!&|^~?.@")
_PUNCT = set("()[]{},;:")

# Compiled scanners for the per-branch inner loops. Each pattern matches
# exactly the character run the equivalent hand-rolled loop consumed, so
# the dispatch below keeps its shape while the scanning happens in C.
#
# ``\w`` is documented to match precisely ``str.isalnum()`` plus ``_``,
# i.e. the identifier-continuation predicate.
_WORD_RUN = re.compile(r"\w*")
_TO_EOL = re.compile(r"[^\n]*")
# Preprocessor lines: a newline continues the directive only when the
# preceding character is a backslash.
_PREPROC_RUN = re.compile(r"(?:[^\n]|(?<=\\)\n)*")
_WS_RUN = re.compile(r"[ \t\f\v]*")

# Numeric literals, mirroring ``_scan_number``: underscores anywhere in a
# digit run, C++14 apostrophes only between two digits (the lookbehind /
# following-digit pair), one optional dot, one optional exponent that must
# be followed by a digit or sign, then integer/float suffix letters.
_DEC_SEG = r"[0-9_]*(?:(?<=[0-9])'[0-9][0-9_]*)*"
_DEC_NUM = re.compile(
    _DEC_SEG
    + r"(?:\." + _DEC_SEG + r")?"
    + r"(?:[eE](?:[+-]|(?=[0-9]))" + _DEC_SEG + r")?"
    + r"[uUlLfF]*"
)
_HEX_NUM = re.compile(
    r"0[xX][0-9a-fA-F_]*(?:(?<=[0-9a-fA-F])'[0-9a-fA-F][0-9a-fA-F_]*)*"
    r"[uUlLfF]*"
)
_BIN_NUM = re.compile(r"0[bB][01_]*(?:(?<=[01])'[01][01_]*)*[uUlLfF]*")

# Single-line string/char literals: an escape consumes the next character
# unless it is a newline; an unescaped newline (or end of file) ends the
# token without being consumed, a dangling backslash is kept, and the
# closing delimiter is consumed when present.
_STRING_PATS = {
    d: re.compile(d + r"(?:\\[^\n]|[^" + d + r"\n\\])*\\?" + d + "?")
    for d in ('"', "'")
}

# Triple-quoted strings: escape pairs (including escaped newlines and
# escaped quotes) are opaque, the first unescaped closing quote ends the
# literal. The alternation is first-character disjoint, so the lazy scan
# is linear.
_TRIPLE_PATS = {
    q: re.compile(re.escape(q) + r"(?:\\.|[^\\])*?" + re.escape(q), re.S)
    for q in ('"""', "'''")
}
# Sequential escape-pair/newline walk, for counting the unescaped
# newlines of a triple-quoted string body exactly like the old
# character loop did (an escaped newline does not advance the line).
_ESC_OR_NL = re.compile(r"\\.|\n", re.S)

#: Kinds whose texts are interned: short, heavily repeated lexemes.
_INTERN_KINDS = frozenset({
    TokenKind.KEYWORD, TokenKind.IDENT, TokenKind.NUMBER,
    TokenKind.OPERATOR, TokenKind.PUNCT,
})

_intern = sys.intern

# First-character classes for the main dispatch. The tokenizer's branch
# chain tested up to ten predicates (several of them method calls) per
# token; classifying the first character through one dict lookup replaces
# the chain while each handler keeps the original branch ORDER for the
# characters it can receive, so the token stream is unchanged.
_C_OTHER = 0   # unmapped (non-ASCII): number/ident/unknown tail
_C_ID = 1      # ASCII letter or underscore
_C_PUNCT = 2   # punctuation that cannot start a multi-char operator
_C_OP = 3      # operator chars (multi-char scan, then single/punct)
_C_WS = 4      # horizontal whitespace run
_C_NL = 5      # \n
_C_NUM = 6     # ASCII digit
_C_QUOTE = 7   # triple-string / string / char-literal openers
_C_CMT = 8     # line- or block-comment head (falls through to operators)
_C_DOT = 9     # '.': number when a digit follows, else operator
_C_HASH = 10   # '#' on preprocessor languages (falls through like CMT)
_C_CR = 11     # \r

_DISPATCH_CACHE: dict = {}


def _dispatch_for(spec: LanguageSpec) -> dict:
    """Per-spec first-character class table (cached by spec name).

    Built in reverse branch priority so that for a character claimed by
    several branches the assignment of the *earliest* original branch
    survives (e.g. ``/`` is a comment head before it is an operator).
    """
    table = _DISPATCH_CACHE.get(spec.name)
    if table is not None:
        return table
    table = {}
    for c in _SINGLE_OPS | set(_MULTI_OPS_BY_CHAR):
        table[c] = _C_OP
    for c in _PUNCT:
        # ':' also starts '::' / ':=' — it needs the multi-op scan.
        table[c] = _C_OP if c in _MULTI_OPS_BY_CHAR else _C_PUNCT
    table["."] = _C_DOT
    for c in "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_":
        table[c] = _C_ID
    for c in "0123456789":
        table[c] = _C_NUM
    for d in spec.string_delims:
        table[d] = _C_QUOTE
    if spec.char_delim is not None:
        table[spec.char_delim] = _C_QUOTE
    if spec.triple_strings:
        table['"'] = _C_QUOTE
        table["'"] = _C_QUOTE
    if spec.block_comment:
        table[spec.block_comment[0][0]] = _C_CMT
    for marker in spec.line_comment:
        table[marker[0]] = _C_CMT
    if spec.has_preprocessor:
        table["#"] = _C_HASH
    for c in " \t\f\v":
        table[c] = _C_WS
    table["\n"] = _C_NL
    table["\r"] = _C_CR
    _DISPATCH_CACHE[spec.name] = table
    return table


class Lexer:
    """Tokenises source text according to a :class:`LanguageSpec`."""

    def __init__(self, spec: LanguageSpec):
        self.spec = spec

    def tokenize(self, text: str) -> List[Token]:
        """Tokenise ``text`` into a list of :class:`Token`.

        Newlines are emitted as NEWLINE tokens so line-oriented analyses
        (LoC counting, smell detection) can recover physical structure.
        A lone ``\\r`` (legacy Mac line ending) terminates a line exactly
        like ``str.splitlines`` says it does, so token line numbers always
        agree with the physical line table; ``\\r\\n`` counts once.
        """
        spec = self.spec
        tokens: List[Token] = []
        append = tokens.append
        i = 0
        line = 1
        col = 1
        n = len(text)
        cls_of = _dispatch_for(spec).get
        line_comments = spec.line_comment
        block_comment = spec.block_comment
        string_delims = spec.string_delims
        char_delim = spec.char_delim
        triple = spec.triple_strings
        keywords = spec.keywords
        has_preprocessor = spec.has_preprocessor
        NEWLINE = TokenKind.NEWLINE
        NUMBER = TokenKind.NUMBER
        KEYWORD = TokenKind.KEYWORD
        IDENT = TokenKind.IDENT
        OPERATOR = TokenKind.OPERATOR
        PUNCT = TokenKind.PUNCT
        UNKNOWN = TokenKind.UNKNOWN

        def emit(kind: TokenKind, start: int, end: int, tline: int, tcol: int) -> None:
            word = text[start:end]
            if kind in _INTERN_KINDS:
                word = _intern(word)
            append(Token(kind, word, tline, tcol, start))

        def col_after(start: int, end: int, tcol: int) -> int:
            """Column following a token spanning [start, end)."""
            nl = text.rfind("\n", start, end)
            if nl == -1:
                nl = text.rfind("\r", start, end)
            if nl == -1:
                return tcol + (end - start)
            return end - nl

        # Handlers appear in rough frequency order. The ident, number and
        # single-char branches build their Token inline instead of going
        # through ``emit`` (which would re-slice the text and re-test the
        # kind). One-char strings are cached by CPython, so a bare ``ch``
        # is already the shared object interning would return.
        while i < n:
            ch = text[i]
            cls = cls_of(ch, _C_OTHER)

            if cls == _C_ID:
                start, tline, tcol = i, line, col
                i = _WORD_RUN.match(text, i).end()
                word = _intern(text[start:i])
                kind = KEYWORD if word in keywords else IDENT
                append(Token(kind, word, tline, tcol, start))
                col += i - start
                continue

            if cls == _C_PUNCT:
                append(Token(PUNCT, ch, line, col, i))
                i += 1
                col += 1
                continue

            if cls == _C_WS:
                start = i
                i = _WS_RUN.match(text, i).end()
                col += i - start
                continue

            if cls == _C_NL:
                append(Token(NEWLINE, "\n", line, col, i))
                i += 1
                line += 1
                col = 1
                continue

            if cls == _C_OP:
                # Multi-character operators (maximal munch, first-char
                # bucket). The matched slice of ``text`` equals ``op``
                # itself, a module literal that is already interned.
                matched = False
                for op in _MULTI_OPS_BY_CHAR.get(ch, ()):
                    if text.startswith(op, i):
                        append(Token(OPERATOR, op, line, col, i))
                        i += len(op)
                        col += len(op)
                        matched = True
                        break
                if matched:
                    continue
                if ch in _PUNCT:
                    append(Token(PUNCT, ch, line, col, i))
                else:
                    append(Token(OPERATOR, ch, line, col, i))
                i += 1
                col += 1
                continue

            if cls == _C_NUM or cls == _C_DOT:
                if cls == _C_NUM or (i + 1 < n and text[i + 1].isdigit()):
                    start, tline, tcol = i, line, col
                    if text.startswith(("0x", "0X"), i):
                        i = _HEX_NUM.match(text, i).end()
                    elif text.startswith(("0b", "0B"), i):
                        i = _BIN_NUM.match(text, i).end()
                    else:
                        i = _DEC_NUM.match(text, i).end()
                    if i == start:
                        # A non-ASCII digit opened the literal (the
                        # patterns scan ASCII digit runs): fall back to
                        # the character scanner so the position advances.
                        i = _scan_number(text, start)
                    append(Token(NUMBER, _intern(text[start:i]), tline,
                                 tcol, start))
                    col += i - start
                    continue
                # A bare '.': maximal munch for '...' and then a plain
                # operator, exactly like the _C_OP tail.
                if text.startswith("...", i):
                    append(Token(OPERATOR, "...", line, col, i))
                    i += 3
                    col += 3
                    continue
                append(Token(OPERATOR, ".", line, col, i))
                i += 1
                col += 1
                continue

            if cls == _C_QUOTE:
                # Triple-quoted strings (Python).
                if triple and (
                    text.startswith('"""', i) or text.startswith("'''", i)
                ):
                    quote = text[i : i + 3]
                    start, tline, tcol = i, line, col
                    m = _TRIPLE_PATS[quote].match(text, i)
                    i = m.end() if m is not None else n
                    body_end = i - 3 if m is not None else n
                    for esc in _ESC_OR_NL.finditer(text, start + 3, body_end):
                        if esc.group() == "\n":
                            line += 1
                    emit(TokenKind.STRING, start, i, tline, tcol)
                    col = col_after(start, i, tcol)
                    continue
                # Ordinary strings (unterminated at end-of-line tolerated).
                if ch in string_delims:
                    start, tline, tcol = i, line, col
                    i = _STRING_PATS[ch].match(text, i).end()
                    emit(TokenKind.STRING, start, i, tline, tcol)
                    col += i - start
                    continue
                # Character literals (C/C++/Java).
                if char_delim is not None and ch == char_delim:
                    start, tline, tcol = i, line, col
                    i = _STRING_PATS[char_delim].match(text, i).end()
                    emit(TokenKind.CHAR, start, i, tline, tcol)
                    col += i - start
                    continue
                append(Token(UNKNOWN, ch, line, col, i))
                i += 1
                col += 1
                continue

            if cls == _C_CMT or cls == _C_HASH:
                # Preprocessor directive: consume the (possibly
                # continued) line.
                if cls == _C_HASH and has_preprocessor \
                        and _at_line_start(tokens):
                    start, tline, tcol = i, line, col
                    i = _PREPROC_RUN.match(text, i).end()
                    line += text.count("\n", start, i)
                    emit(TokenKind.PREPROC, start, i, tline, tcol)
                    col = col_after(start, i, tcol)
                    continue
                # Line comments.
                matched = False
                for marker in line_comments:
                    if text.startswith(marker, i):
                        start, tline, tcol = i, line, col
                        i = _TO_EOL.match(text, i).end()
                        emit(TokenKind.COMMENT, start, i, tline, tcol)
                        col = tcol + (i - start)
                        matched = True
                        break
                if matched:
                    continue
                # Block comments. An unterminated comment lexes to end of
                # file as one COMMENT token (tolerance for malformed
                # input); inner newlines advance the line counter.
                if block_comment is not None \
                        and text.startswith(block_comment[0], i):
                    open_m, close_m = block_comment
                    start, tline, tcol = i, line, col
                    found = text.find(close_m, i + len(open_m))
                    if found < 0:
                        line += text.count("\n", start + len(open_m))
                        i = n
                    else:
                        line += text.count("\n", start + len(open_m), found)
                        i = found + len(close_m)
                    emit(TokenKind.COMMENT, start, i, tline, tcol)
                    col = col_after(start, i, tcol)
                    continue
                # Not a comment after all ('/' divides, '#' is stray):
                # fall through to the operator tail.
                matched = False
                for op in _MULTI_OPS_BY_CHAR.get(ch, ()):
                    if text.startswith(op, i):
                        append(Token(OPERATOR, op, line, col, i))
                        i += len(op)
                        col += len(op)
                        matched = True
                        break
                if matched:
                    continue
                if ch in _PUNCT:
                    append(Token(PUNCT, ch, line, col, i))
                elif ch in _SINGLE_OPS:
                    append(Token(OPERATOR, ch, line, col, i))
                else:
                    append(Token(UNKNOWN, ch, line, col, i))
                i += 1
                col += 1
                continue

            if cls == _C_CR:
                if i + 1 < n and text[i + 1] == "\n":
                    # \r\n: the \n branch counts the line.
                    i += 1
                    col += 1
                    continue
                # Lone \r is a line terminator (classic Mac); splitlines()
                # breaks here, so the lexer must too or every following
                # token carries a stale line number.
                append(Token(NEWLINE, "\r", line, col, i))
                i += 1
                line += 1
                col = 1
                continue

            # Unmapped characters: non-ASCII digits and letters still
            # form numbers and identifiers; anything else is UNKNOWN.
            if ch.isdigit():
                start, tline, tcol = i, line, col
                i = _scan_number(text, i)
                append(Token(NUMBER, _intern(text[start:i]), tline, tcol,
                             start))
                col += i - start
                continue
            if ch.isalpha():
                start, tline, tcol = i, line, col
                i = _WORD_RUN.match(text, i).end()
                word = _intern(text[start:i])
                kind = KEYWORD if word in keywords else IDENT
                append(Token(kind, word, tline, tcol, start))
                col += i - start
                continue
            append(Token(UNKNOWN, ch, line, col, i))
            i += 1
            col += 1

        return tokens


def _at_line_start(tokens: List[Token]) -> bool:
    """True if the next token would be the first non-whitespace on its line."""
    return not tokens or tokens[-1].kind == TokenKind.NEWLINE


def _scan_number(text: str, i: int) -> int:
    """Scan a numeric literal starting at ``i``; return the end offset.

    Digit-separator underscores (Python/Java) and C++14 apostrophes are
    consumed when they sit between digits, so ``1'000'000`` is one NUMBER
    rather than a number followed by a bogus character literal.
    """
    n = len(text)
    start = i

    if text.startswith(("0x", "0X"), i):
        hex_digits = "0123456789abcdefABCDEF"
        i += 2
        while i < n and (
            text[i] in hex_digits
            or text[i] == "_"
            or (text[i] == "'" and _sep_between(text, i, n, hex_digits))
        ):
            i += 1
    elif text.startswith(("0b", "0B"), i):
        i += 2
        while i < n and (
            text[i] in "01_" or (text[i] == "'" and _sep_between(text, i, n, "01"))
        ):
            i += 1
    else:
        seen_dot = False
        seen_exp = False
        while i < n:
            c = text[i]
            if c.isdigit() or c == "_":
                i += 1
            elif c == "'" and _sep_between(text, i, n, "0123456789"):
                i += 1
            elif c == "." and not seen_dot and not seen_exp:
                seen_dot = True
                i += 1
            elif c in "eE" and not seen_exp and i > start:
                # Exponent must be followed by digits or a sign.
                if i + 1 < n and (text[i + 1].isdigit() or text[i + 1] in "+-"):
                    seen_exp = True
                    i += 2 if text[i + 1] in "+-" else 1
                else:
                    break
            else:
                break
    # Integer/float suffixes (C/Java): 10UL, 1.5f, 100L
    while i < n and text[i] in "uUlLfF":
        i += 1
    return i


def _sep_between(text: str, i: int, n: int, digits: str) -> bool:
    """True when the apostrophe at ``i`` sits between two digits (C++14)."""
    return i > 0 and i + 1 < n and text[i - 1] in digits and text[i + 1] in digits


def tokenize(text: str, spec: LanguageSpec) -> List[Token]:
    """Convenience wrapper: tokenise ``text`` with language ``spec``."""
    return Lexer(spec).tokenize(text)
