"""A generic, specification-driven lexer.

One lexer covers C, C++, Java, and Python by being parameterised over a
:class:`~repro.lang.languages.LanguageSpec`. It is deliberately tolerant:
unterminated strings and comments lex to the end of file rather than raising,
because the analyzers must degrade gracefully on malformed real-world code
(the paper's testbed runs unattended over hundreds of applications).
"""

from __future__ import annotations

from typing import List

from repro.lang.languages import LanguageSpec
from repro.lang.tokens import Token, TokenKind

# Multi-character operators, longest first so maximal munch works.
_MULTI_OPS = (
    "<<=", ">>=", "...", "->*", "**=", "//=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "::", "**", "//",
    ":=",
)

_SINGLE_OPS = set("+-*/%<>=!&|^~?.@")
_PUNCT = set("()[]{},;:")


class Lexer:
    """Tokenises source text according to a :class:`LanguageSpec`."""

    def __init__(self, spec: LanguageSpec):
        self.spec = spec

    def tokenize(self, text: str) -> List[Token]:
        """Tokenise ``text`` into a list of :class:`Token`.

        Newlines are emitted as NEWLINE tokens so line-oriented analyses
        (LoC counting, smell detection) can recover physical structure.
        """
        spec = self.spec
        tokens: List[Token] = []
        i = 0
        line = 1
        col = 1
        n = len(text)

        def emit(kind: TokenKind, start: int, end: int, tline: int, tcol: int) -> None:
            tokens.append(Token(kind, text[start:end], tline, tcol))

        while i < n:
            ch = text[i]

            if ch == "\n":
                tokens.append(Token(TokenKind.NEWLINE, "\n", line, col))
                i += 1
                line += 1
                col = 1
                continue

            if ch in " \t\r\f\v":
                i += 1
                col += 1
                continue

            # Preprocessor directive: consume the (possibly continued) line.
            if spec.has_preprocessor and ch == "#" and _at_line_start(tokens):
                start, tline, tcol = i, line, col
                while i < n:
                    if text[i] == "\n":
                        if i > start and text[i - 1] == "\\":
                            line += 1
                            i += 1
                            continue
                        break
                    i += 1
                emit(TokenKind.PREPROC, start, i, tline, tcol)
                col = 1
                continue

            # Line comments.
            matched = False
            for marker in spec.line_comment:
                if text.startswith(marker, i):
                    start, tline, tcol = i, line, col
                    while i < n and text[i] != "\n":
                        i += 1
                    emit(TokenKind.COMMENT, start, i, tline, tcol)
                    matched = True
                    break
            if matched:
                continue

            # Block comments.
            if spec.block_comment is not None:
                open_m, close_m = spec.block_comment
                if text.startswith(open_m, i):
                    start, tline, tcol = i, line, col
                    i += len(open_m)
                    while i < n and not text.startswith(close_m, i):
                        if text[i] == "\n":
                            line += 1
                        i += 1
                    if i < n:
                        i += len(close_m)
                    emit(TokenKind.COMMENT, start, i, tline, tcol)
                    col = 1
                    continue

            # Triple-quoted strings (Python).
            if spec.triple_strings and (
                text.startswith('"""', i) or text.startswith("'''", i)
            ):
                quote = text[i : i + 3]
                start, tline, tcol = i, line, col
                i += 3
                while i < n and not text.startswith(quote, i):
                    if text[i] == "\n":
                        line += 1
                    elif text[i] == "\\" and i + 1 < n:
                        i += 1
                    i += 1
                if i < n:
                    i += 3
                emit(TokenKind.STRING, start, i, tline, tcol)
                col = 1
                continue

            # Ordinary strings.
            if ch in spec.string_delims:
                start, tline, tcol = i, line, col
                i += 1
                while i < n and text[i] != ch:
                    if text[i] == "\\" and i + 1 < n:
                        i += 1
                    if text[i] == "\n":
                        break  # tolerate unterminated string at EOL
                    i += 1
                if i < n and text[i] == ch:
                    i += 1
                emit(TokenKind.STRING, start, i, tline, tcol)
                col += i - start
                continue

            # Character literals (C/C++/Java).
            if spec.char_delim is not None and ch == spec.char_delim:
                start, tline, tcol = i, line, col
                i += 1
                while i < n and text[i] != spec.char_delim:
                    if text[i] == "\\" and i + 1 < n:
                        i += 1
                    if text[i] == "\n":
                        break
                    i += 1
                if i < n and text[i] == spec.char_delim:
                    i += 1
                emit(TokenKind.CHAR, start, i, tline, tcol)
                col += i - start
                continue

            # Numbers.
            if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
                start, tline, tcol = i, line, col
                i = _scan_number(text, i)
                emit(TokenKind.NUMBER, start, i, tline, tcol)
                col += i - start
                continue

            # Identifiers and keywords.
            if ch.isalpha() or ch == "_":
                start, tline, tcol = i, line, col
                while i < n and (text[i].isalnum() or text[i] == "_"):
                    i += 1
                word = text[start:i]
                kind = (
                    TokenKind.KEYWORD if word in spec.keywords else TokenKind.IDENT
                )
                emit(kind, start, i, tline, tcol)
                col += i - start
                continue

            # Multi-character operators (maximal munch).
            for op in _MULTI_OPS:
                if text.startswith(op, i):
                    emit(TokenKind.OPERATOR, i, i + len(op), line, col)
                    i += len(op)
                    col += len(op)
                    matched = True
                    break
            if matched:
                continue

            if ch in _PUNCT:
                emit(TokenKind.PUNCT, i, i + 1, line, col)
            elif ch in _SINGLE_OPS:
                emit(TokenKind.OPERATOR, i, i + 1, line, col)
            else:
                emit(TokenKind.UNKNOWN, i, i + 1, line, col)
            i += 1
            col += 1

        return tokens


def _at_line_start(tokens: List[Token]) -> bool:
    """True if the next token would be the first non-whitespace on its line."""
    return not tokens or tokens[-1].kind == TokenKind.NEWLINE


def _scan_number(text: str, i: int) -> int:
    """Scan a numeric literal starting at ``i``; return the end offset."""
    n = len(text)
    start = i
    if text.startswith(("0x", "0X"), i):
        i += 2
        while i < n and (text[i] in "0123456789abcdefABCDEF_"):
            i += 1
    elif text.startswith(("0b", "0B"), i):
        i += 2
        while i < n and text[i] in "01_":
            i += 1
    else:
        seen_dot = False
        seen_exp = False
        while i < n:
            c = text[i]
            if c.isdigit() or c == "_":
                i += 1
            elif c == "." and not seen_dot and not seen_exp:
                seen_dot = True
                i += 1
            elif c in "eE" and not seen_exp and i > start:
                # Exponent must be followed by digits or a sign.
                if i + 1 < n and (text[i + 1].isdigit() or text[i + 1] in "+-"):
                    seen_exp = True
                    i += 2 if text[i + 1] in "+-" else 1
                else:
                    break
            else:
                break
    # Integer/float suffixes (C/Java): 10UL, 1.5f, 100L
    while i < n and text[i] in "uUlLfF":
        i += 1
    return i


def tokenize(text: str, spec: LanguageSpec) -> List[Token]:
    """Convenience wrapper: tokenise ``text`` with language ``spec``."""
    return Lexer(spec).tokenize(text)
