"""Lightweight structural recovery: functions and classes from token streams.

This is not a full parser. The paper's testbed needs, per file, the set of
function definitions with their parameter counts, extents, and nesting —
enough for the Shin-et-al. feature set (#functions, #input arguments,
function length) and for per-function cyclomatic complexity. Brace-matching
plus a few syntactic patterns recovers this reliably for C/C++/Java; Python
uses indentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.lang.sourcefile import SourceFile
from repro.lang.tokens import Token, TokenKind

# C-like identifiers that look like calls-with-body but are not functions.
_NOT_FUNCTIONS = frozenset({"sizeof", "defined"})


@dataclass
class FunctionInfo:
    """A recovered function/method definition."""

    name: str
    start_line: int
    end_line: int
    param_count: int
    param_names: List[str] = field(default_factory=list)
    body_tokens: List[Token] = field(default_factory=list)
    max_nesting: int = 0
    owner: Optional[str] = None  # enclosing class, if any
    is_public: bool = True

    @property
    def length(self) -> int:
        """Physical length of the function in lines."""
        return self.end_line - self.start_line + 1


@dataclass
class ClassInfo:
    """A recovered class definition (Java/C++/Python)."""

    name: str
    start_line: int
    end_line: int
    methods: List[FunctionInfo] = field(default_factory=list)


def extract_functions(
    source: SourceFile, code_tokens: Optional[List[Token]] = None
) -> List[FunctionInfo]:
    """Extract function definitions from ``source``.

    Dispatches on the language's ``function_style``: brace matching for
    C/C++/Java, indentation tracking for Python. ``code_tokens`` lets a
    caller that already filtered the token stream (the analysis artifact)
    skip the refilter; it must equal ``[t for t in source.tokens if
    t.is_code()]``.
    """
    if source.spec.function_style == "indent":
        return _extract_python_functions(source, code_tokens)
    return _extract_brace_functions(source, code_tokens)


def extract_classes(
    source: SourceFile,
    code_tokens: Optional[List[Token]] = None,
    functions: Optional[List[FunctionInfo]] = None,
) -> List[ClassInfo]:
    """Extract class definitions (with their methods) from ``source``.

    ``functions`` lets a caller reuse an already-extracted function list;
    methods are matched to classes by line extent, and matched functions
    get their ``owner`` field filled in.
    """
    if source.spec.function_style == "indent":
        return _extract_python_classes(source, code_tokens, functions)
    return _extract_brace_classes(source, code_tokens, functions)


# ---------------------------------------------------------------------------
# Brace languages (C, C++, Java)
# ---------------------------------------------------------------------------


def _code_tokens(source: SourceFile) -> List[Token]:
    return [t for t in source.tokens if t.is_code()]


def _match_paren(tokens: List[Token], open_idx: int) -> int:
    """Index of the ')' matching tokens[open_idx] == '(' or -1."""
    depth = 0
    for j in range(open_idx, len(tokens)):
        text = tokens[j].text
        if text == "(":
            depth += 1
        elif text == ")":
            depth -= 1
            if depth == 0:
                return j
    return -1


def _match_brace(tokens: List[Token], open_idx: int) -> int:
    """Index of the '}' matching tokens[open_idx] == '{' or last index."""
    depth = 0
    for j in range(open_idx, len(tokens)):
        text = tokens[j].text
        if text == "{":
            depth += 1
        elif text == "}":
            depth -= 1
            if depth == 0:
                return j
    return len(tokens) - 1


def _parse_params(tokens: List[Token]) -> List[str]:
    """Parameter names from the token slice between '(' and ')'.

    Each comma-separated group at paren depth 1 contributes one parameter;
    its name is the last identifier in the group (C declarator style).
    A bare ``void`` or an empty list yields no parameters.
    """
    groups: List[List[Token]] = [[]]
    depth = 0
    for tok in tokens:
        if tok.text in "([":
            depth += 1
        elif tok.text in ")]":
            depth -= 1
        if tok.text == "," and depth == 0:
            groups.append([])
        else:
            groups[-1].append(tok)
    names: List[str] = []
    for group in groups:
        idents = [t.text for t in group if t.kind == TokenKind.IDENT]
        keywords = [t.text for t in group if t.kind == TokenKind.KEYWORD]
        if not idents and keywords == ["void"]:
            continue
        if not idents and not keywords:
            continue
        names.append(idents[-1] if idents else keywords[-1])
    return names


def _body_nesting(tokens: List[Token]) -> int:
    """Maximum brace depth inside a body token slice (body braces excluded)."""
    depth = 0
    deepest = 0
    for tok in tokens:
        if tok.text == "{":
            depth += 1
            deepest = max(deepest, depth)
        elif tok.text == "}":
            depth -= 1
    return max(deepest - 1, 0)


def _extract_brace_functions(
    source: SourceFile, code_tokens: Optional[List[Token]] = None
) -> List[FunctionInfo]:
    tokens = _code_tokens(source) if code_tokens is None else code_tokens
    functions: List[FunctionInfo] = []
    i = 0
    n = len(tokens)
    while i < n:
        tok = tokens[i]
        if tok.kind != TokenKind.IDENT or tok.text in _NOT_FUNCTIONS:
            i += 1
            continue
        if i + 1 >= n or tokens[i + 1].text != "(":
            i += 1
            continue
        close = _match_paren(tokens, i + 1)
        if close < 0:
            i += 1
            continue
        # Allow trailing qualifiers between ')' and '{': const, noexcept,
        # throws A, B — identifiers/keywords/commas only.
        j = close + 1
        while j < n and (
            tokens[j].kind in (TokenKind.IDENT, TokenKind.KEYWORD)
            or tokens[j].text == ","
        ):
            j += 1
        if j >= n or tokens[j].text != "{":
            i += 1
            continue
        # Reject control-flow-shaped constructs: `name (...)` preceded by
        # `.`/`->` is a method call; preceded by `=` it's an initialiser.
        if i > 0 and tokens[i - 1].text in (".", "->", "=", "return", "new"):
            i = close + 1
            continue
        end = _match_brace(tokens, j)
        body = tokens[j : end + 1]
        params = _parse_params(tokens[i + 2 : close])
        functions.append(
            FunctionInfo(
                name=tok.text,
                start_line=tok.line,
                end_line=tokens[end].line,
                param_count=len(params),
                param_names=params,
                body_tokens=body,
                max_nesting=_body_nesting(body),
                is_public=_brace_is_public(tokens, i),
            )
        )
        i = end + 1
    return functions


def _brace_is_public(tokens: List[Token], name_idx: int) -> bool:
    """Heuristic visibility: static (C) / private-protected (Java) are not.

    Only the current declaration's own modifiers count, so the scan stops
    at the previous statement/block boundary.
    """
    modifiers = set()
    for j in range(name_idx - 1, max(-1, name_idx - 8), -1):
        text = tokens[j].text
        if text in (";", "{", "}"):
            break
        modifiers.add(text)
    return not modifiers & {"static", "private", "protected"}


def _extract_brace_classes(
    source: SourceFile,
    code_tokens: Optional[List[Token]] = None,
    functions: Optional[List[FunctionInfo]] = None,
) -> List[ClassInfo]:
    tokens = _code_tokens(source) if code_tokens is None else code_tokens
    classes: List[ClassInfo] = []
    if functions is None:
        functions = _extract_brace_functions(source, tokens)
    i = 0
    n = len(tokens)
    while i < n:
        tok = tokens[i]
        if tok.kind == TokenKind.KEYWORD and tok.text in ("class", "struct", "interface"):
            if i + 1 < n and tokens[i + 1].kind == TokenKind.IDENT:
                name = tokens[i + 1].text
                j = i + 2
                while j < n and tokens[j].text not in ("{", ";"):
                    j += 1
                if j < n and tokens[j].text == "{":
                    end = _match_brace(tokens, j)
                    start_line, end_line = tok.line, tokens[end].line
                    methods = [
                        f for f in functions
                        if start_line <= f.start_line and f.end_line <= end_line
                    ]
                    for m in methods:
                        m.owner = name
                    classes.append(ClassInfo(name, start_line, end_line, methods))
                    i = j + 1
                    continue
        i += 1
    return classes


# ---------------------------------------------------------------------------
# Python (indentation)
# ---------------------------------------------------------------------------


def _line_indent(line: str) -> int:
    """Indentation width of a line, tabs counted as 8 columns."""
    width = 0
    for ch in line:
        if ch == " ":
            width += 1
        elif ch == "\t":
            width += 8 - width % 8
        else:
            break
    return width


def _python_block_end(lines: List[str], header_line: int) -> int:
    """Last line (1-based) of the suite introduced at ``header_line``."""
    indent = _line_indent(lines[header_line - 1])
    end = header_line
    for idx in range(header_line + 1, len(lines) + 1):
        stripped = lines[idx - 1].strip()
        if not stripped or stripped.startswith("#"):
            continue
        if _line_indent(lines[idx - 1]) <= indent:
            break
        end = idx
    return end


def _extract_python_functions(
    source: SourceFile, code_tokens: Optional[List[Token]] = None
) -> List[FunctionInfo]:
    tokens = _code_tokens(source) if code_tokens is None else code_tokens
    lines = source.lines
    functions: List[FunctionInfo] = []
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != TokenKind.KEYWORD or tok.text != "def":
            continue
        if i + 2 >= n or tokens[i + 1].kind != TokenKind.IDENT:
            continue
        if tokens[i + 2].text != "(":
            continue
        close = _match_paren(tokens, i + 2)
        if close < 0:
            continue
        name_tok = tokens[i + 1]
        end_line = _python_block_end(lines, tok.line)
        params = [
            t.text
            for t in tokens[i + 3 : close]
            if t.kind == TokenKind.IDENT and _is_python_param(tokens, i + 3, close, t)
        ]
        body = [t for t in tokens[close + 1 :] if tok.line <= t.line <= end_line]
        base_indent = _line_indent(lines[tok.line - 1])
        deepest = 0
        for ln in range(tok.line + 1, end_line + 1):
            if lines[ln - 1].strip():
                deepest = max(deepest, _line_indent(lines[ln - 1]) - base_indent)
        functions.append(
            FunctionInfo(
                name=name_tok.text,
                start_line=tok.line,
                end_line=end_line,
                param_count=len(params),
                param_names=params,
                body_tokens=body,
                max_nesting=max(deepest // 4 - 1, 0),
                is_public=not name_tok.text.startswith("_"),
            )
        )
    return functions


def _is_python_param(
    tokens: List[Token], start: int, close: int, candidate: Token
) -> bool:
    """True if ``candidate`` is a parameter name, not a default/annotation.

    A parameter name is an identifier at paren depth 0 (relative to the
    def's parens) that begins its comma-separated group.
    """
    depth = 0
    group_start = True
    for idx in range(start, close):
        tok = tokens[idx]
        if tok.text in "([{":
            depth += 1
        elif tok.text in ")]}":
            depth -= 1
        elif tok.text == "," and depth == 0:
            group_start = True
            continue
        if tok is candidate:
            return depth == 0 and group_start
        if tok.kind != TokenKind.OPERATOR or tok.text not in ("*", "**"):
            group_start = False
    return False


def _extract_python_classes(
    source: SourceFile,
    code_tokens: Optional[List[Token]] = None,
    functions: Optional[List[FunctionInfo]] = None,
) -> List[ClassInfo]:
    tokens = _code_tokens(source) if code_tokens is None else code_tokens
    lines = source.lines
    if functions is None:
        functions = _extract_python_functions(source, tokens)
    classes: List[ClassInfo] = []
    for i, tok in enumerate(tokens):
        if tok.kind != TokenKind.KEYWORD or tok.text != "class":
            continue
        if i + 1 >= len(tokens) or tokens[i + 1].kind != TokenKind.IDENT:
            continue
        name = tokens[i + 1].text
        end_line = _python_block_end(lines, tok.line)
        methods = [
            f for f in functions
            if tok.line < f.start_line and f.end_line <= end_line
        ]
        for m in methods:
            m.owner = name
        classes.append(ClassInfo(name, tok.line, end_line, methods))
    return classes
