"""Language specifications.

A :class:`LanguageSpec` bundles everything the generic lexer and the metric
analyzers need to know about a language: comment syntax, string delimiters,
keyword sets, decision keywords (for McCabe), and file extensions.

The four languages here are the four the paper's measurement study
categorises applications by (Figure 2): C, C++, Java, and Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

_C_KEYWORDS = frozenset(
    """auto break case char const continue default do double else enum extern
    float for goto if inline int long register restrict return short signed
    sizeof static struct switch typedef union unsigned void volatile while
    _Bool _Complex _Imaginary""".split()
)

_CPP_KEYWORDS = _C_KEYWORDS | frozenset(
    """alignas alignof and and_eq asm bitand bitor bool catch class compl
    constexpr const_cast decltype delete dynamic_cast explicit export false
    friend mutable namespace new noexcept not not_eq nullptr operator or
    or_eq private protected public reinterpret_cast static_assert static_cast
    template this thread_local throw true try typeid typename using virtual
    wchar_t xor xor_eq""".split()
)

_JAVA_KEYWORDS = frozenset(
    """abstract assert boolean break byte case catch char class const continue
    default do double else enum extends final finally float for goto if
    implements import instanceof int interface long native new package private
    protected public return short static strictfp super switch synchronized
    this throw throws transient try void volatile while var record sealed
    permits true false null""".split()
)

_PYTHON_KEYWORDS = frozenset(
    """False None True and as assert async await break class continue def del
    elif else except finally for from global if import in is lambda nonlocal
    not or pass raise return try while with yield match case""".split()
)

#: Decision points counted by McCabe cyclomatic complexity, per language.
_C_DECISIONS = frozenset({"if", "for", "while", "case", "&&", "||", "?"})
_CPP_DECISIONS = _C_DECISIONS | frozenset({"catch", "and", "or"})
_JAVA_DECISIONS = frozenset({"if", "for", "while", "case", "catch", "&&", "||", "?"})
_PYTHON_DECISIONS = frozenset(
    {"if", "elif", "for", "while", "except", "and", "or", "assert", "case"}
)


@dataclass(frozen=True)
class LanguageSpec:
    """Static description of a programming language for lexing and metrics."""

    name: str
    extensions: Tuple[str, ...]
    keywords: frozenset
    decision_tokens: frozenset
    line_comment: Tuple[str, ...] = ("//",)
    block_comment: Optional[Tuple[str, str]] = ("/*", "*/")
    string_delims: Tuple[str, ...] = ('"',)
    char_delim: Optional[str] = "'"
    triple_strings: bool = False
    has_preprocessor: bool = False
    case_sensitive: bool = True
    function_style: str = "braces"  # "braces" or "indent"


C = LanguageSpec(
    name="c",
    extensions=(".c", ".h"),
    keywords=_C_KEYWORDS,
    decision_tokens=_C_DECISIONS,
    has_preprocessor=True,
)

CPP = LanguageSpec(
    name="cpp",
    extensions=(".cc", ".cpp", ".cxx", ".hpp", ".hh", ".hxx"),
    keywords=_CPP_KEYWORDS,
    decision_tokens=_CPP_DECISIONS,
    has_preprocessor=True,
)

JAVA = LanguageSpec(
    name="java",
    extensions=(".java",),
    keywords=_JAVA_KEYWORDS,
    decision_tokens=_JAVA_DECISIONS,
)

PYTHON = LanguageSpec(
    name="python",
    extensions=(".py",),
    keywords=_PYTHON_KEYWORDS,
    decision_tokens=_PYTHON_DECISIONS,
    line_comment=("#",),
    block_comment=None,
    string_delims=('"', "'"),
    char_delim=None,
    triple_strings=True,
    function_style="indent",
)

ALL_LANGUAGES: Tuple[LanguageSpec, ...] = (C, CPP, JAVA, PYTHON)

_BY_NAME = {spec.name: spec for spec in ALL_LANGUAGES}
_BY_EXTENSION = {ext: spec for spec in ALL_LANGUAGES for ext in spec.extensions}


class UnknownLanguageError(ValueError):
    """Raised when a language name or file extension is not recognised."""


def language_by_name(name: str) -> LanguageSpec:
    """Look up a :class:`LanguageSpec` by its canonical name.

    Raises:
        UnknownLanguageError: if ``name`` is not one of c/cpp/java/python.
    """
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise UnknownLanguageError(f"unknown language: {name!r}") from None


def detect_language(path: str) -> Optional[LanguageSpec]:
    """Detect the language of ``path`` from its extension, or None."""
    dot = path.rfind(".")
    if dot < 0:
        return None
    return _BY_EXTENSION.get(path[dot:].lower())
