"""Language substrate: lexing and structural recovery for C/C++/Java/Python.

Public API::

    from repro.lang import (
        Codebase, SourceFile, Token, TokenKind, tokenize,
        detect_language, language_by_name,
        extract_functions, extract_classes, FunctionInfo, ClassInfo,
    )
"""

from repro.lang.languages import (
    ALL_LANGUAGES,
    C,
    CPP,
    JAVA,
    PYTHON,
    LanguageSpec,
    UnknownLanguageError,
    detect_language,
    language_by_name,
)
from repro.lang.lexer import Lexer, tokenize
from repro.lang.parser import (
    ClassInfo,
    FunctionInfo,
    extract_classes,
    extract_functions,
)
from repro.lang.sourcefile import Codebase, SourceFile
from repro.lang.tokens import OPERAND_KINDS, OPERATOR_KINDS, Token, TokenKind

__all__ = [
    "ALL_LANGUAGES",
    "C",
    "CPP",
    "JAVA",
    "PYTHON",
    "ClassInfo",
    "Codebase",
    "FunctionInfo",
    "LanguageSpec",
    "Lexer",
    "OPERAND_KINDS",
    "OPERATOR_KINDS",
    "SourceFile",
    "Token",
    "TokenKind",
    "UnknownLanguageError",
    "detect_language",
    "extract_classes",
    "extract_functions",
    "language_by_name",
    "tokenize",
]
