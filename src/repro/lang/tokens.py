"""Token model shared by all lexers.

The analysis substrate operates on flat token streams rather than full
abstract syntax trees: every metric the paper draws on (LoC, McCabe,
Halstead, declaration counts, smells, bug patterns) is computable from
tokens plus light structural recovery, which keeps the lexers small enough
to be correct for four languages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Classification of a lexical token."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    CHAR = "char"
    OPERATOR = "operator"
    PUNCT = "punct"
    COMMENT = "comment"
    PREPROC = "preproc"
    NEWLINE = "newline"
    UNKNOWN = "unknown"


#: Kinds that contribute to Halstead operator/operand classification.
OPERATOR_KINDS = frozenset({TokenKind.KEYWORD, TokenKind.OPERATOR, TokenKind.PUNCT})
OPERAND_KINDS = frozenset(
    {TokenKind.IDENT, TokenKind.NUMBER, TokenKind.STRING, TokenKind.CHAR}
)


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: the :class:`TokenKind` classification.
        text: the exact source text of the token.
        line: 1-based line number where the token starts.
        col: 1-based column number where the token starts.
    """

    kind: TokenKind
    text: str
    line: int
    col: int = 1

    def is_code(self) -> bool:
        """True for tokens that are part of executable/declarative code."""
        return self.kind not in (TokenKind.COMMENT, TokenKind.NEWLINE)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, L{self.line})"
