"""Token model shared by all lexers.

The analysis substrate operates on flat token streams rather than full
abstract syntax trees: every metric the paper draws on (LoC, McCabe,
Halstead, declaration counts, smells, bug patterns) is computable from
tokens plus light structural recovery, which keeps the lexers small enough
to be correct for four languages.
"""

from __future__ import annotations

import enum


class TokenKind(enum.Enum):
    """Classification of a lexical token."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    CHAR = "char"
    OPERATOR = "operator"
    PUNCT = "punct"
    COMMENT = "comment"
    PREPROC = "preproc"
    NEWLINE = "newline"
    UNKNOWN = "unknown"

    # Members are singletons, so identity hashing is sound — and the
    # C-level object hash roughly halves the cost of the `kind in
    # OPERATOR_KINDS`-style membership tests the analyzers do millions
    # of times per tree (enum's own __hash__ is a Python-level call).
    __hash__ = object.__hash__


#: Kinds that contribute to Halstead operator/operand classification.
OPERATOR_KINDS = frozenset({TokenKind.KEYWORD, TokenKind.OPERATOR, TokenKind.PUNCT})
OPERAND_KINDS = frozenset(
    {TokenKind.IDENT, TokenKind.NUMBER, TokenKind.STRING, TokenKind.CHAR}
)


#: Kinds excluded from code-token streams (structure/documentation only).
NON_CODE_KINDS = frozenset({TokenKind.COMMENT, TokenKind.NEWLINE})


class Token:
    """A single lexical token.

    A plain ``__slots__`` class rather than a dataclass: the lexer
    constructs one per lexeme (hundreds of thousands per tree), and a
    direct ``__init__`` is several times faster than the frozen
    dataclass ``object.__setattr__`` path while keeping the same field
    order, defaults, equality, and repr.

    Attributes:
        kind: the :class:`TokenKind` classification.
        text: the exact source text of the token.
        line: 1-based line number where the token starts.
        col: 1-based column number where the token starts.
        offset: 0-based character offset of the token in the source text,
            or -1 for synthetic tokens. ``text == source[offset:offset +
            len(text)]`` holds for every lexer-produced token — the
            round-trip invariant the artifact property suite checks.
    """

    __slots__ = ("kind", "text", "line", "col", "offset")

    def __init__(self, kind: TokenKind, text: str, line: int,
                 col: int = 1, offset: int = -1):
        self.kind = kind
        self.text = text
        self.line = line
        self.col = col
        self.offset = offset

    def is_code(self) -> bool:
        """True for tokens that are part of executable/declarative code."""
        return self.kind not in NON_CODE_KINDS

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Token):
            return NotImplemented
        return (self.kind is other.kind and self.text == other.text
                and self.line == other.line and self.col == other.col
                and self.offset == other.offset)

    def __hash__(self) -> int:
        return hash((self.kind, self.text, self.line, self.col, self.offset))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, L{self.line})"
