"""Source-file and codebase models.

A :class:`SourceFile` pairs a path with its text and detected language and
lazily caches its token stream. A :class:`Codebase` is the unit the paper's
testbed operates on: the complete set of source files for one application,
which every analyzer in :mod:`repro.analysis` consumes.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Iterator, List, Optional

from repro.lang.languages import LanguageSpec, detect_language, language_by_name
from repro.lang.lexer import Lexer
from repro.lang.tokens import Token


class SourceFile:
    """One source file: path, text, language, and cached tokens."""

    def __init__(self, path: str, text: str, spec: Optional[LanguageSpec] = None):
        if spec is None:
            spec = detect_language(path)
        if spec is None:
            raise ValueError(f"cannot detect language for {path!r}")
        self.path = path
        self.text = text
        self.spec = spec
        self._tokens: Optional[List[Token]] = None
        self._lines: Optional[List[str]] = None
        self._artifact = None  # lazily-built repro.analysis.artifact.FileArtifact

    def __getstate__(self) -> dict:
        # Ship only path/text/language-name across process boundaries:
        # the token cache re-lexes lazily on the other side, and the spec
        # is re-resolved by name so it stays the module singleton that
        # identity checks (``f.spec is spec``) rely on.
        return {"path": self.path, "text": self.text,
                "language": self.spec.name}

    def __setstate__(self, state: dict) -> None:
        self.path = state["path"]
        self.text = state["text"]
        self.spec = language_by_name(state["language"])
        self._tokens = None
        self._lines = None
        self._artifact = None

    @property
    def tokens(self) -> List[Token]:
        """The file's token stream (lexed on first access, then cached)."""
        if self._tokens is None:
            self._tokens = Lexer(self.spec).tokenize(self.text)
        return self._tokens

    @property
    def lines(self) -> List[str]:
        """Physical lines of the file, without trailing newlines (cached)."""
        if self._lines is None:
            self._lines = self.text.splitlines()
        return self._lines

    @property
    def language(self) -> str:
        """Canonical language name (c, cpp, java, python)."""
        return self.spec.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SourceFile({self.path!r}, {self.language})"


class Codebase:
    """A named collection of source files — one application's code.

    This is the object the testbed (``repro.core.features``) analyses, and
    the object the synthetic application generator produces.
    """

    def __init__(self, name: str, files: Iterable[SourceFile] = ()):
        self.name = name
        self._files: Dict[str, SourceFile] = {}
        for f in files:
            self.add(f)

    def add(self, source: SourceFile) -> None:
        """Add (or replace) a source file by path."""
        self._files[source.path] = source

    def remove(self, path: str) -> None:
        """Remove the file at ``path``; KeyError if absent."""
        del self._files[path]

    def get(self, path: str) -> Optional[SourceFile]:
        """Return the file at ``path`` or None."""
        return self._files.get(path)

    @property
    def files(self) -> List[SourceFile]:
        """All files, in deterministic (path-sorted) order."""
        return [self._files[p] for p in sorted(self._files)]

    def __iter__(self) -> Iterator[SourceFile]:
        return iter(self.files)

    def __len__(self) -> int:
        return len(self._files)

    def by_language(self, name: str) -> List[SourceFile]:
        """All files whose language is ``name``."""
        spec = language_by_name(name)
        return [f for f in self.files if f.spec is spec]

    def languages(self) -> Dict[str, int]:
        """Map of language name -> number of files in that language."""
        counts: Dict[str, int] = {}
        for f in self.files:
            counts[f.language] = counts.get(f.language, 0) + 1
        return counts

    def primary_language(self) -> Optional[str]:
        """The language with the most non-blank source lines.

        The paper categorises each application by the language it is
        *primarily* written in (Figure 2); ties break alphabetically for
        determinism.
        """
        weights: Dict[str, int] = {}
        for f in self.files:
            loc = sum(1 for line in f.lines if line.strip())
            weights[f.language] = weights.get(f.language, 0) + loc
        if not weights:
            return None
        return min(weights, key=lambda lang: (-weights[lang], lang))

    @classmethod
    def from_directory(cls, root: str, name: Optional[str] = None) -> "Codebase":
        """Load every recognised source file under ``root``.

        Files with unrecognised extensions are skipped; undecodable files
        are read with replacement characters rather than failing the scan.
        """
        cb = cls(name or os.path.basename(os.path.abspath(root)))
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            for fname in sorted(filenames):
                full = os.path.join(dirpath, fname)
                spec = detect_language(fname)
                if spec is None:
                    continue
                with open(full, encoding="utf-8", errors="replace") as fh:
                    text = fh.read()
                rel = os.path.relpath(full, root)
                cb.add(SourceFile(rel, text, spec))
        return cb

    @classmethod
    def from_sources(cls, name: str, sources: Dict[str, str]) -> "Codebase":
        """Build a codebase from an in-memory {path: text} mapping."""
        return cls(name, (SourceFile(p, t) for p, t in sorted(sources.items())))
