"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``analyze PATH`` — run every static analyzer over a source tree and
  print the metric summary (the testbed's view of one codebase).
- ``train`` — build the calibrated corpus, train the model with CV, and
  save it (pickle) for the other commands.
- ``assess PATH`` — predict the hypotheses for a source tree (§5.3's
  developer-facing report), with a saved or freshly trained model.
- ``gate OLD NEW`` — CI gate: exit 1 if the change raised predicted risk.
- ``compare A B`` — pick the safer of two candidate codebases (§1).
- ``hotspots PATH`` — rank least-maintainable functions and findings
  (no model needed; the "focus bug-finding effort" use the paper closes
  with).
- ``survey`` — print the Figure-1 survey table.
- ``corpus --out FEED.json`` — export the calibrated CVE corpus as JSON.
"""

from __future__ import annotations

import argparse
import pickle
import sys
from typing import List, Optional

from repro.bugfind.findings import Severity
from repro.core.evaluator import ChangeEvaluator, Verdict, loc_naive_choice
from repro.core.features import extract_features
from repro.core.model import SecurityModel
from repro.core.pipeline import train as train_pipeline
from repro.core.report import format_assessment, format_delta
from repro.lang import Codebase
from repro.synth import build_corpus


def _load_codebase(path: str) -> Codebase:
    codebase = Codebase.from_directory(path)
    if len(codebase) == 0:
        raise SystemExit(f"error: no recognised source files under {path!r}")
    return codebase


def _train_model(seed: int, apps: int, folds: int, quiet: bool = False):
    if not quiet:
        print(f"training on a {apps}-app corpus (seed {seed}) ...",
              file=sys.stderr)
    corpus = build_corpus(seed=seed, limit=apps)
    return train_pipeline(corpus, k=folds, seed=seed)


def _obtain_model(args) -> SecurityModel:
    if getattr(args, "model", None):
        with open(args.model, "rb") as handle:
            model = pickle.load(handle)
        if not isinstance(model, SecurityModel):
            raise SystemExit(f"error: {args.model!r} is not a saved model")
        return model
    return _train_model(args.seed, args.apps, args.folds).model


def cmd_analyze(args) -> int:
    codebase = _load_codebase(args.path)
    row = extract_features(codebase, include_dynamic=args.dynamic)
    print(f"metrics for {codebase.name} ({len(codebase)} files, primary "
          f"language: {codebase.primary_language()})")
    for name in sorted(row):
        print(f"  {name:44s} {row[name]:12.4f}")
    return 0


def cmd_train(args) -> int:
    result = _train_model(args.seed, args.apps, args.folds)
    print("cross-validated quality:")
    for hyp_id, metric, value in result.summary_rows():
        print(f"  {hyp_id:24s} {metric} = {value:.3f}")
    with open(args.out, "wb") as handle:
        pickle.dump(result.model, handle)
    print(f"model saved to {args.out}")
    return 0


def cmd_assess(args) -> int:
    model = _obtain_model(args)
    codebase = _load_codebase(args.path)
    features = extract_features(codebase)
    assessment = model.assess(features)
    print(format_assessment(codebase.name, assessment, model, features))
    return 0


def cmd_gate(args) -> int:
    model = _obtain_model(args)
    evaluator = ChangeEvaluator(model)
    delta = evaluator.risk_delta(
        _load_codebase(args.old), _load_codebase(args.new)
    )
    print(format_delta(f"{args.old} -> {args.new}", delta))
    if delta.verdict is Verdict.REGRESSED:
        print("gate: BLOCK (risk increased)")
        return 1
    print("gate: pass")
    return 0


def cmd_compare(args) -> int:
    model = _obtain_model(args)
    evaluator = ChangeEvaluator(model)
    a = _load_codebase(args.candidate_a)
    b = _load_codebase(args.candidate_b)
    winner, assess_a, assess_b = evaluator.choose(a, b)
    print(f"{a.name}: overall risk {assess_a.overall_risk:.2f}")
    print(f"{b.name}: overall risk {assess_b.overall_risk:.2f}")
    print(f"model chooses: {winner}")
    loc_winner, meaningful = loc_naive_choice(a, b)
    qualifier = "" if meaningful else " (not statistically meaningful, §3.1)"
    print(f"LoC-naive metric would choose: {loc_winner}{qualifier}")
    return 0


def cmd_hotspots(args) -> int:
    from repro.analysis.maintainability import worst_functions
    from repro.bugfind import run_all

    codebase = _load_codebase(args.path)
    print(f"hotspots in {codebase.name} ({len(codebase)} files)")
    print("\nleast maintainable functions:")
    for report in worst_functions(codebase, k=args.top):
        print(f"  {report.mi:5.1f} [{report.band:6s}] {report.name}")
    findings = run_all(codebase)
    if findings.total:
        print(f"\nsecurity findings ({findings.total} total, "
              f"{findings.count_at_least(Severity.HIGH)} high+):")
        for finding in findings.findings[: args.top]:
            print(f"  {finding.severity.name:8s} {finding.path}:{finding.line}"
                  f"  {finding.rule}  {finding.message}")
        if findings.total > args.top:
            print(f"  ... and {findings.total - args.top} more")
    else:
        print("\nno security findings from the bundled checkers")
    return 0


def cmd_survey(args) -> int:
    from repro.synth.papersurvey import generate_corpus, survey

    result = survey(generate_corpus(seed=args.seed))
    print("papers per evaluation style (Figure 1):")
    venues = sorted(result.by_venue)
    header = f"  {'style':8s} {'total':>6s}  " + "  ".join(
        f"{v:>7s}" for v in venues
    )
    print(header)
    for style in ("loc", "cve", "formal", "other"):
        row = "  ".join(f"{result.by_venue[v][style]:7d}" for v in venues)
        print(f"  {style:8s} {result.totals[style]:6d}  {row}")
    return 0


def cmd_corpus(args) -> int:
    from repro.cve import io as cve_io
    from repro.synth.cvegen import generate_database, generate_profiles

    profiles = generate_profiles(seed=args.seed)
    database = generate_database(profiles, seed=args.seed)
    cve_io.dump(database, args.out)
    apps, vulns = database.totals()
    print(f"wrote {vulns} reports for {apps} applications to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Clairvoyant: empirical, ML-based software (in)security "
                    "metric (HotOS '17 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_model_options(p):
        p.add_argument("--model", help="path to a model saved by `train`")
        p.add_argument("--seed", type=int, default=42,
                       help="corpus seed when training on the fly")
        p.add_argument("--apps", type=int, default=40,
                       help="corpus size when training on the fly")
        p.add_argument("--folds", type=int, default=5,
                       help="cross-validation folds")

    p = sub.add_parser("analyze", help="print every metric for a source tree")
    p.add_argument("path")
    p.add_argument("--dynamic", action="store_true",
                   help="include simulated dynamic-trace features")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("train", help="train and save the security model")
    p.add_argument("--out", default="clairvoyant-model.pkl")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--apps", type=int, default=164)
    p.add_argument("--folds", type=int, default=10)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("assess", help="predict the hypotheses for a tree")
    p.add_argument("path")
    add_model_options(p)
    p.set_defaults(func=cmd_assess)

    p = sub.add_parser("gate", help="CI gate: block risk-raising changes")
    p.add_argument("old")
    p.add_argument("new")
    add_model_options(p)
    p.set_defaults(func=cmd_gate)

    p = sub.add_parser("compare", help="choose the safer of two candidates")
    p.add_argument("candidate_a")
    p.add_argument("candidate_b")
    add_model_options(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("hotspots",
                       help="rank least-maintainable functions and findings")
    p.add_argument("path")
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=cmd_hotspots)

    p = sub.add_parser("survey", help="print the Figure-1 survey table")
    p.add_argument("--seed", type=int, default=42)
    p.set_defaults(func=cmd_survey)

    p = sub.add_parser("corpus", help="export the calibrated CVE corpus")
    p.add_argument("--out", default="cve-corpus.json")
    p.add_argument("--seed", type=int, default=42)
    p.set_defaults(func=cmd_corpus)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output truncated by a closed pipe (e.g. `| head`): not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
