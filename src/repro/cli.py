"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``analyze PATH`` — run every static analyzer over a source tree and
  print the metric summary (the testbed's view of one codebase).
- ``train`` — build the calibrated corpus, train the model with CV, and
  save it (pickle) for the other commands.
- ``assess PATH`` — predict the hypotheses for a source tree (§5.3's
  developer-facing report), with a saved or freshly trained model.
- ``gate BASE HEAD`` — CI gate over the delta engine: report the risk
  delta with the top driving feature changes per file and exit
  ``EXIT_GATE_BREACH`` (3) when the delta is strictly above
  ``--threshold``. Trees are directories or ``synth:NAME@K``
  synthetic-history specs (also accepted via ``--base``/``--head``);
  ``--json`` emits the canonical payload (byte-identical to the
  daemon's ``POST /gate`` response); ``--features-only`` skips the
  model and scores with the deterministic feature risk proxy.
- ``watch PATH`` — continuous re-assessment loop: poll the tree,
  coalesce rapid edits behind a debounce window, recompute only the
  changed files, and print one ``obs.stream``-compatible JSON event
  line per re-assessment.
- ``compare A B`` — pick the safer of two candidate codebases (§1).
- ``hotspots PATH`` — rank least-maintainable functions and findings
  (no model needed; the "focus bug-finding effort" use the paper closes
  with).
- ``survey`` — print the Figure-1 survey table.
- ``corpus --out FEED.json`` — export the calibrated CVE corpus as JSON.
- ``serve --model PATH`` — run the prediction service daemon:
  ``POST /predict`` (micro-batched), ``POST /analyze`` (through the
  extraction engine), ``GET /healthz``, ``GET /metricz`` (JSON, or
  Prometheus text under ``Accept: text/plain``). ``--slo RULES`` folds
  a live SLO verdict into ``/healthz``; ``--access-log PATH`` appends
  one structured JSON line per request. Stops cleanly (exit 0) on
  SIGTERM/SIGINT.
- ``slo-check --slo RULES (--stream FILE | --url URL)`` — evaluate SLO
  rules offline against an exported telemetry stream or live against a
  daemon's ``/metricz``; exits non-zero naming the breached rules.
- ``monitor (--url URL | --stream FILE)`` — live terminal dashboard
  over a running daemon or a telemetry stream file.

``repro --version`` prints the build version from package metadata.

Observability (accepted before or after the subcommand):

- ``--trace FILE.jsonl`` — record every tracing span (one JSON object
  per line: name, span_id, parent, trace_id, start, duration, attrs).
- ``--profile`` — print the ``repro telemetry`` report (per-analyzer /
  per-phase time breakdown plus counters) after the command finishes.
- ``--stream FILE.jsonl`` — append live telemetry events (finished
  spans, counter deltas, structured events) to a rotating JSONL stream
  as they happen.

Every observed invocation mints one root trace ID; all spans the run
records (including those grafted back from worker processes) carry it,
so one CLI run exports as one connected trace.

Engine knobs (a shared argparse parent, accepted by every subcommand):

- ``--workers N`` — fan feature extraction / corpus generation out
  across N worker processes (default ``$REPRO_WORKERS`` or serial).
- ``--cache-dir PATH`` — content-addressed feature cache; re-analysing
  an unchanged tree is a read, not a recompute (default
  ``$REPRO_CACHE_DIR`` or no cache). ``sqlite:PATH`` selects the
  shared SQLite backend (WAL mode) so many concurrent runs on one
  volume share a single warm cache.
- ``--no-cache`` — force recomputation even when a cache is configured.

Failure policy (same parent):

- ``--on-error {raise,skip,retry}`` — what a failed per-app extraction
  does: abort the run (default), drop the app and keep going, or retry
  it a bounded number of times first.
- ``--task-timeout SECONDS`` — per-app wall-clock budget (needs
  ``--workers`` > 1 to be enforceable).
- ``--max-retries N`` — extra attempts per crashed app under
  ``--on-error retry``.

Exit codes (one contract across every subcommand):

- ``EXIT_OK`` (0) — the command completed and nothing it was asked to
  judge was breached.
- ``EXIT_FAILURES`` (1) — an operational failure: bad input tree,
  extraction error, unreadable model, or ``train`` skipping
  applications (the model is still saved; the summary goes to stderr).
- ``EXIT_USAGE`` (2) — malformed invocation (argparse's own value).
- ``EXIT_GATE_BREACH`` (3) — the command ran fine and the *judgement*
  failed: ``gate`` found a risk delta above the threshold, or
  ``slo-check`` found breached SLO rules. CI distinguishes "the tool
  broke" from "the tool worked and the change is bad" on this value.
"""

from __future__ import annotations

import argparse
import json
import pickle
import signal
import sys
import threading
from typing import List, Optional

from repro import obs, package_version
from repro.bugfind.findings import Severity
from repro.core.evaluator import ChangeEvaluator, loc_naive_choice
from repro.core.model import SecurityModel
from repro.core.pipeline import train as train_pipeline
from repro.core.report import format_assessment
from repro.engine import (
    EngineConfig,
    ExtractionEngine,
    ExtractionError,
    engine_options,
    format_failures,
)
from repro.gate import (
    DEFAULT_THRESHOLD,
    GateError,
    TreeWatcher,
    format_gate_report,
    gate_payload,
    gate_tree,
)
from repro.lang import Codebase
from repro.serve.modelstore import ModelLoadError, load_model
from repro.serve.payloads import analysis_payload, dump_payload
from repro.synth import build_corpus

#: The CLI-wide exit-code contract (see the module docstring). These
#: are the only values ``main`` returns; scripts and CI match on them.
EXIT_OK = 0
EXIT_FAILURES = 1
EXIT_USAGE = 2  # argparse's own usage-error value, adopted as ours
EXIT_GATE_BREACH = 3


def _load_codebase(path: str) -> Codebase:
    codebase = Codebase.from_directory(path)
    if len(codebase) == 0:
        raise SystemExit(f"error: no recognised source files under {path!r}")
    return codebase


def _engine_from_args(args) -> ExtractionEngine:
    """Build the extraction engine the command's knobs ask for.

    Thin wrapper over :class:`repro.engine.EngineConfig` — flag
    precedence (explicit flag > environment > default) lives there, so
    the CLI and the public API resolve knobs identically.
    """
    return EngineConfig.from_args(args).build()


def _train_model(seed: int, apps: int, folds: int, quiet: bool = False,
                 engine: Optional[ExtractionEngine] = None):
    if not quiet:
        print(f"training on a {apps}-app corpus (seed {seed}) ...",
              file=sys.stderr)
    if engine is None:
        engine = ExtractionEngine.from_env()
    corpus = build_corpus(seed=seed, limit=apps, workers=engine.workers)
    return train_pipeline(corpus, k=folds, seed=seed, engine=engine)


def _load_model_file(path: str) -> SecurityModel:
    """Load a saved model for CLI use (SystemExit on any defect)."""
    try:
        return load_model(path)
    except ModelLoadError as exc:
        raise SystemExit(str(exc))


def _obtain_model(args) -> SecurityModel:
    if getattr(args, "model", None):
        return _load_model_file(args.model)
    result = _train_model(args.seed, args.apps, args.folds,
                          engine=_engine_from_args(args))
    if result.table.failures:
        print(f"warning: model trained without "
              f"{len(result.table.failures)} skipped application(s)",
              file=sys.stderr)
    return result.model


def cmd_analyze(args) -> int:
    model = _load_model_file(args.model) if args.model else None
    codebase = _load_codebase(args.path)
    engine = _engine_from_args(args)
    try:
        row = engine.extract_one(codebase, include_dynamic=args.dynamic)
    except ExtractionError as exc:
        raise SystemExit(f"error: extraction failed — {exc}")
    if args.json:
        # The serving layer's /analyze returns this very document; both
        # go through dump_payload so the bytes cannot drift apart.
        sys.stdout.write(dump_payload(analysis_payload(codebase, row, model)))
        return 0
    print(f"metrics for {codebase.name} ({len(codebase)} files, primary "
          f"language: {codebase.primary_language()})")
    for name in sorted(row):
        print(f"  {name:44s} {row[name]:12.4f}")
    if model is not None:
        assessment = model.assess(row)
        print(f"\npredicted risk (model: {args.model}): "
              f"{assessment.overall_risk:.3f}")
        for hyp_id in sorted(assessment.probabilities):
            print(f"  P({hyp_id}) = {assessment.probabilities[hyp_id]:.3f}")
    return 0


def cmd_train(args) -> int:
    result = _train_model(args.seed, args.apps, args.folds,
                          engine=_engine_from_args(args))
    print("cross-validated quality:")
    for hyp_id, metric, value in result.summary_rows():
        print(f"  {hyp_id:24s} {metric} = {value:.3f}")
    with open(args.out, "wb") as handle:
        pickle.dump(result.model, handle)
    print(f"model saved to {args.out}")
    if result.table.failures:
        print(format_failures(result.table.failures), file=sys.stderr)
        return EXIT_FAILURES
    return EXIT_OK


def cmd_assess(args) -> int:
    model = _obtain_model(args)
    codebase = _load_codebase(args.path)
    try:
        features = _engine_from_args(args).extract_one(codebase)
    except ExtractionError as exc:
        raise SystemExit(f"error: extraction failed — {exc}")
    assessment = model.assess(features)
    print(format_assessment(codebase.name, assessment, model, features))
    return 0


def _gate_trees(args) -> "tuple[str, str]":
    """The (base, head) specs from positionals and/or flags."""
    trees = list(args.trees)
    base = args.base if args.base is not None else \
        (trees.pop(0) if trees else None)
    head = args.head if args.head is not None else \
        (trees.pop(0) if trees else None)
    if base is None or head is None or trees:
        print("error: gate needs exactly two trees — "
              "`repro gate BASE HEAD` or --base/--head "
              "(directories or synth:NAME@K specs)", file=sys.stderr)
        raise SystemExit(EXIT_USAGE)
    return base, head


def cmd_gate(args) -> int:
    base, head = _gate_trees(args)
    model = None if args.features_only else _obtain_model(args)
    try:
        report = gate_tree(
            base, head,
            model=model,
            threshold=args.threshold,
            config=EngineConfig.from_args(args),
            seed=args.seed,
        )
    except (GateError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")
    except ExtractionError as exc:
        raise SystemExit(f"error: extraction failed — {exc}")
    if args.json:
        # POST /gate returns this very document; both go through
        # dump_payload so the bytes cannot drift apart.
        sys.stdout.write(dump_payload(gate_payload(report)))
    else:
        print(format_gate_report(report))
        print()
        print("gate: BREACH (risk delta above threshold)"
              if report.breach else "gate: pass")
    return EXIT_GATE_BREACH if report.breach else EXIT_OK


def cmd_watch(args) -> int:
    model = _load_model_file(args.model) if args.model else None
    try:
        watcher = TreeWatcher(
            args.path,
            model=model,
            threshold=args.threshold,
            debounce=args.debounce,
        )
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")
    print(f"watching {args.path} ({len(watcher.codebase)} files, "
          f"mode: {'model' if model else 'features'}, "
          f"debounce {args.debounce:g}s) — one JSON line per "
          f"re-assessment", file=sys.stderr)

    def emit(event) -> None:
        sys.stdout.write(json.dumps(event, sort_keys=True) + "\n")
        sys.stdout.flush()

    try:
        watcher.run(emit, interval=args.interval, count=args.count)
    except KeyboardInterrupt:
        print("watch stopped", file=sys.stderr)
    return EXIT_OK


def cmd_compare(args) -> int:
    model = _obtain_model(args)
    evaluator = ChangeEvaluator(model)
    a = _load_codebase(args.candidate_a)
    b = _load_codebase(args.candidate_b)
    winner, assess_a, assess_b = evaluator.choose(a, b)
    print(f"{a.name}: overall risk {assess_a.overall_risk:.2f}")
    print(f"{b.name}: overall risk {assess_b.overall_risk:.2f}")
    print(f"model chooses: {winner}")
    loc_winner, meaningful = loc_naive_choice(a, b)
    qualifier = "" if meaningful else " (not statistically meaningful, §3.1)"
    print(f"LoC-naive metric would choose: {loc_winner}{qualifier}")
    return 0


def cmd_hotspots(args) -> int:
    from repro.analysis.maintainability import worst_functions
    from repro.bugfind import run_all

    codebase = _load_codebase(args.path)
    print(f"hotspots in {codebase.name} ({len(codebase)} files)")
    print("\nleast maintainable functions:")
    for report in worst_functions(codebase, k=args.top):
        print(f"  {report.mi:5.1f} [{report.band:6s}] {report.name}")
    findings = run_all(codebase)
    if findings.total:
        print(f"\nsecurity findings ({findings.total} total, "
              f"{findings.count_at_least(Severity.HIGH)} high+):")
        for finding in findings.findings[: args.top]:
            print(f"  {finding.severity.name:8s} {finding.path}:{finding.line}"
                  f"  {finding.rule}  {finding.message}")
        if findings.total > args.top:
            print(f"  ... and {findings.total - args.top} more")
    else:
        print("\nno security findings from the bundled checkers")
    return 0


def cmd_survey(args) -> int:
    from repro.synth.papersurvey import generate_corpus, survey

    result = survey(generate_corpus(seed=args.seed))
    print("papers per evaluation style (Figure 1):")
    venues = sorted(result.by_venue)
    header = f"  {'style':8s} {'total':>6s}  " + "  ".join(
        f"{v:>7s}" for v in venues
    )
    print(header)
    for style in ("loc", "cve", "formal", "other"):
        row = "  ".join(f"{result.by_venue[v][style]:7d}" for v in venues)
        print(f"  {style:8s} {result.totals[style]:6d}  {row}")
    return 0


def _load_rules_or_exit(path: str):
    from repro.obs.slo import SloConfigError, load_slo_rules

    try:
        return load_slo_rules(path)
    except SloConfigError as exc:
        raise SystemExit(f"error: {exc}")


def cmd_serve(args) -> int:
    """Run the prediction daemon until SIGTERM/SIGINT (exit 0).

    SIGHUP (POSIX) triggers a blue/green model re-scan: the specs the
    live store was built from are re-read from disk and swapped in
    atomically; a failed re-scan is logged and the old store keeps
    serving. The handler only flags the request — the actual reload
    runs on the main thread's wait loop, never in signal context.
    """
    from repro.serve import (
        AsyncPredictionServer,
        ModelStore,
        PredictionServer,
    )
    from repro.serve.modelstore import ModelLoadError as LoadError

    try:
        store = ModelStore.from_specs(args.model)
    except LoadError as exc:
        raise SystemExit(str(exc))
    slo_rules = _load_rules_or_exit(args.slo) if args.slo else ()
    shared = dict(
        host=args.host,
        port=args.port,
        batch_window=args.batch_window,
        batch_size=args.batch_size,
        queue_depth=args.queue_depth,
        slo_rules=slo_rules,
        access_log=args.access_log,
    )
    if args.server == "thread":
        server = PredictionServer(
            store, engine=_engine_from_args(args), **shared)
    else:
        server = AsyncPredictionServer(
            store,
            config=EngineConfig.from_args(args),
            pool_size=args.pool_size,
            checkout_timeout=args.checkout_timeout,
            **shared)

    wake = threading.Event()
    flags = {"stop": False, "reload": False}

    def _request_stop(signum, frame):
        flags["stop"] = True
        wake.set()

    def _request_reload(signum, frame):
        flags["reload"] = True
        wake.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _request_stop)
    if hasattr(signal, "SIGHUP"):
        previous[signal.SIGHUP] = signal.signal(
            signal.SIGHUP, _request_reload)
    try:
        if args.server == "async":
            server.start(warm=True)  # fork pool workers before traffic
        else:
            server.start()
        print(f"repro-serve {package_version()} ({args.server}) "
              f"listening on {server.url} "
              f"(models: {', '.join(store.names())})", file=sys.stderr)
        while True:
            wake.wait()
            wake.clear()
            if flags["reload"]:
                flags["reload"] = False
                try:
                    old, new = server.reload_models()
                    print(f"SIGHUP: models reloaded "
                          f"(v{old.version} -> v{new.version}: "
                          f"{', '.join(new.names())})", file=sys.stderr)
                except LoadError as exc:
                    obs.incr("serve.model_reload_errors")
                    print(f"SIGHUP: reload failed, keeping "
                          f"v{server.store.version} serving — {exc}",
                          file=sys.stderr)
            if flags["stop"]:
                break
        print("shutting down", file=sys.stderr)
        server.stop()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return 0


def _fetch_metricz(url: str) -> dict:
    """The /metricz JSON snapshot of a running daemon."""
    from urllib.request import urlopen

    target = url if url.endswith("/metricz") \
        else url.rstrip("/") + "/metricz"
    with urlopen(target, timeout=10) as response:
        return json.loads(response.read().decode("utf-8"))


def cmd_slo_check(args) -> int:
    """Evaluate SLO rules; exit EXIT_GATE_BREACH naming breached rules."""
    from repro.obs.slo import evaluate_slos
    from repro.obs.stream import replay_snapshot

    rules = _load_rules_or_exit(args.slo)
    if args.stream_file:
        source = args.stream_file
        snapshot = replay_snapshot(args.stream_file)
    else:
        source = args.url
        try:
            snapshot = _fetch_metricz(args.url)
        except OSError as exc:
            raise SystemExit(
                f"error: cannot fetch metrics from {args.url!r}: {exc}")
    report = evaluate_slos(rules, snapshot)
    print(f"slo-check against {source}")
    print(report.describe())
    return EXIT_OK if report.ok else EXIT_GATE_BREACH


def cmd_monitor(args) -> int:
    """Live terminal dashboard over a daemon or a stream file."""
    from repro.obs.monitor import run_monitor
    from repro.obs.stream import replay_snapshot

    rules = _load_rules_or_exit(args.slo) if args.slo else ()
    if args.stream_file:
        source = args.stream_file

        def fetch():
            return replay_snapshot(args.stream_file)
    else:
        source = args.url

        def fetch():
            return _fetch_metricz(args.url)

    return run_monitor(fetch, slo_rules=rules, source=source,
                       interval=args.interval, once=args.once)


def cmd_corpus(args) -> int:
    from repro.cve import io as cve_io
    from repro.synth.cvegen import generate_database, generate_profiles

    profiles = generate_profiles(seed=args.seed)
    database = generate_database(profiles, seed=args.seed)
    cve_io.dump(database, args.out)
    apps, vulns = database.totals()
    print(f"wrote {vulns} reports for {apps} applications to {args.out}")
    return 0


def _add_obs_options(parser, top_level: bool) -> None:
    """``--trace``/``--profile``/``--stream``, accepted before *and*
    after the command.

    The subcommand copies default to ``SUPPRESS`` so a value parsed at
    the top level is not clobbered back to the default by the subparser.
    """
    trace_kwargs = {"default": None} if top_level else \
        {"default": argparse.SUPPRESS}
    profile_kwargs = {"default": False} if top_level else \
        {"default": argparse.SUPPRESS}
    parser.add_argument(
        "--trace", metavar="FILE.jsonl",
        help="write a JSONL span trace of the whole run", **trace_kwargs)
    parser.add_argument(
        "--profile", action="store_true",
        help="print a telemetry report (per-analyzer/per-phase timings) "
             "after the command", **profile_kwargs)
    parser.add_argument(
        "--stream", metavar="FILE.jsonl",
        help="append live telemetry events (spans, counter deltas, "
             "structured events) to a rotating JSONL stream",
        **trace_kwargs)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Clairvoyant: empirical, ML-based software (in)security "
                    "metric (HotOS '17 reproduction)",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {package_version()}",
        help="print the build version (from package metadata) and exit")
    _add_obs_options(parser, top_level=True)
    sub = parser.add_subparsers(dest="command", required=True)
    engine_parent = engine_options()

    def add_parser(name, **kwargs):
        # Every subcommand inherits the shared engine parent: the
        # engine surface is uniform across the CLI by construction.
        p = sub.add_parser(name, parents=[engine_parent], **kwargs)
        _add_obs_options(p, top_level=False)
        return p

    def add_model_options(p):
        p.add_argument("--model", help="path to a model saved by `train`")
        p.add_argument("--seed", type=int, default=42,
                       help="corpus seed when training on the fly")
        p.add_argument("--apps", type=int, default=40,
                       help="corpus size when training on the fly")
        p.add_argument("--folds", type=int, default=5,
                       help="cross-validation folds")

    p = add_parser("analyze", help="print every metric for a source tree")
    p.add_argument("path")
    p.add_argument("--dynamic", action="store_true",
                   help="include simulated dynamic-trace features")
    p.add_argument("--json", action="store_true",
                   help="emit the feature row as JSON (keys sorted)")
    p.add_argument("--model", metavar="PATH", default=None,
                   help="saved model: append its prediction to the output "
                        "(the serve layer's /predict path)")
    p.set_defaults(func=cmd_analyze)

    p = add_parser("train", help="train and save the security model")
    p.add_argument("--out", default="clairvoyant-model.pkl")
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--apps", type=int, default=164)
    p.add_argument("--folds", type=int, default=10)
    p.set_defaults(func=cmd_train)

    p = add_parser("assess", help="predict the hypotheses for a tree")
    p.add_argument("path")
    add_model_options(p)
    p.set_defaults(func=cmd_assess)

    p = add_parser("gate", help="CI gate: block risk-raising changes")
    p.add_argument("trees", nargs="*", metavar="TREE",
                   help="base then head tree: a directory or a "
                        "synth:NAME@K synthetic-history spec")
    p.add_argument("--base", metavar="TREE", default=None,
                   help="base tree (alternative to the first positional)")
    p.add_argument("--head", metavar="TREE", default=None,
                   help="head tree (alternative to the second positional)")
    p.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                   metavar="DELTA",
                   help="breach when the risk delta is strictly above "
                        "this (default: the evaluator's neutral band, "
                        f"{DEFAULT_THRESHOLD:g})")
    p.add_argument("--json", action="store_true",
                   help="emit the canonical gate payload (byte-identical "
                        "to the daemon's POST /gate response)")
    p.add_argument("--features-only", action="store_true",
                   help="skip the model: score both versions with the "
                        "deterministic feature risk proxy")
    add_model_options(p)
    p.set_defaults(func=cmd_gate)

    p = add_parser("watch",
                   help="continuously re-assess a tree as it changes")
    p.add_argument("path")
    p.add_argument("--model", metavar="PATH", default=None,
                   help="saved model to score with (default: the "
                        "feature risk proxy)")
    p.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                   metavar="DELTA",
                   help="per-re-assessment breach threshold "
                        f"(default: {DEFAULT_THRESHOLD:g})")
    p.add_argument("--interval", type=float, default=1.0,
                   metavar="SECONDS",
                   help="poll interval (default: 1.0)")
    p.add_argument("--debounce", type=float, default=0.5,
                   metavar="SECONDS",
                   help="quiet window before a burst of edits is "
                        "re-assessed as one batch (default: 0.5)")
    p.add_argument("--count", type=int, default=None, metavar="N",
                   help="exit after N re-assessments (default: run "
                        "until interrupted)")
    p.set_defaults(func=cmd_watch)

    p = add_parser("compare", help="choose the safer of two candidates")
    p.add_argument("candidate_a")
    p.add_argument("candidate_b")
    add_model_options(p)
    p.set_defaults(func=cmd_compare)

    p = add_parser("hotspots",
                       help="rank least-maintainable functions and findings")
    p.add_argument("path")
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=cmd_hotspots)

    p = add_parser("survey", help="print the Figure-1 survey table")
    p.add_argument("--seed", type=int, default=42)
    p.set_defaults(func=cmd_survey)

    p = add_parser("serve",
                   help="run the prediction service daemon (HTTP)")
    p.add_argument("--model", action="append", metavar="[NAME=]PATH",
                   required=True,
                   help="saved model bundle to serve; repeatable, first "
                        "is the default, NAME= names it for requests")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=8080,
                   help="bind port; 0 picks a free one (default: 8080)")
    p.add_argument("--server", choices=("async", "thread"),
                   default="async",
                   help="serving tier: 'async' (keep-alive HTTP + "
                        "engine pool, the default) or 'thread' (the "
                        "single-engine-lock ThreadingHTTPServer)")
    p.add_argument("--pool-size", type=int, default=2, metavar="N",
                   help="async tier: engine-pool slots — concurrent "
                        "/analyze extraction bound (default: 2)")
    p.add_argument("--checkout-timeout", type=float, default=30.0,
                   metavar="SECONDS",
                   help="async tier: how long /analyze waits for a "
                        "free engine before 503 (default: 30.0)")
    p.add_argument("--batch-window", type=float, default=0.01,
                   metavar="SECONDS",
                   help="micro-batch collection window (default: 0.01)")
    p.add_argument("--batch-size", type=int, default=16, metavar="N",
                   help="maximum predictions per micro-batch (default: 16)")
    p.add_argument("--queue-depth", type=int, default=64, metavar="N",
                   help="bounded inbound queue; beyond it requests are "
                        "shed with 503 + Retry-After (default: 64)")
    p.add_argument("--slo", metavar="RULES.{toml,json}", default=None,
                   help="SLO rule file; /healthz reports degraded on "
                        "any breach")
    p.add_argument("--access-log", metavar="PATH", default=None,
                   help="append one structured JSON line per request "
                        "(method, path, status, duration, trace id)")
    p.set_defaults(func=cmd_serve)

    # slo-check and monitor are telemetry consumers, not extraction
    # commands: no engine parent, no recording-side obs flags (their
    # --stream names the stream to *read*).
    p = sub.add_parser(
        "slo-check",
        help="evaluate SLO rules against a stream file or live daemon")
    p.add_argument("--slo", required=True, metavar="RULES.{toml,json}",
                   help="SLO rule file (TOML needs Python >= 3.11; "
                        "JSON always works)")
    src = p.add_mutually_exclusive_group(required=True)
    src.add_argument("--stream", dest="stream_file", metavar="FILE.jsonl",
                     help="exported telemetry stream to replay offline")
    src.add_argument("--url", metavar="URL",
                     help="base URL of a running daemon (evaluates its "
                          "/metricz snapshot)")
    p.set_defaults(func=cmd_slo_check)

    p = sub.add_parser(
        "monitor",
        help="live terminal dashboard over a daemon or stream file")
    src = p.add_mutually_exclusive_group(required=True)
    src.add_argument("--url", metavar="URL",
                     help="base URL of a running daemon to poll")
    src.add_argument("--stream", dest="stream_file", metavar="FILE.jsonl",
                     help="telemetry stream file to tail")
    p.add_argument("--slo", metavar="RULES.{toml,json}", default=None,
                   help="SLO rule file to evaluate each frame")
    p.add_argument("--interval", type=float, default=2.0,
                   metavar="SECONDS",
                   help="refresh interval (default: 2.0)")
    p.add_argument("--once", action="store_true",
                   help="render a single frame and exit (scriptable)")
    p.set_defaults(func=cmd_monitor)

    p = add_parser("corpus", help="export the calibrated CVE corpus")
    p.add_argument("--out", default="cve-corpus.json")
    p.add_argument("--seed", type=int, default=42)
    p.set_defaults(func=cmd_corpus)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None)
    profile = getattr(args, "profile", False)
    stream_path = getattr(args, "stream", None)
    session = None
    if trace_path or profile or stream_path:
        # One root trace ID per invocation: every span this run records
        # (worker-grafted ones included) carries it, so the exported
        # JSONL is a single connected trace.
        session = obs.configure(profile=profile, trace_path=trace_path,
                                stream_path=stream_path,
                                trace_id=obs.new_trace_id())
    try:
        try:
            code = args.func(args)
        finally:
            if session is not None:
                obs.disable()
                if trace_path:
                    try:
                        session.write_trace()
                    except OSError as exc:
                        print(f"error: cannot write trace to "
                              f"{trace_path!r}: {exc}", file=sys.stderr)
                        code = 1
        if session is not None and profile:
            print()
            print(obs.format_run_report(session))
        return code
    except BrokenPipeError:
        # Output truncated by a closed pipe (e.g. `| head`): not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
