"""Span primitives: the timed unit of work the tracer records.

A :class:`Span` is a context manager handed out by
:class:`~repro.obs.tracer.Tracer`; entering starts the clock, exiting
stops it and hands the finished span back to the tracer. When tracing is
disabled the module-level :data:`NULL_SPAN` singleton stands in — it has
no state and its enter/exit are empty methods, so instrumented hot paths
pay only one attribute lookup and a call.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class Span:
    """One timed operation, used as a context manager.

    Timings are monotonic (``time.perf_counter``): ``start`` is seconds
    since the owning tracer's epoch, ``duration`` is wall seconds spent
    inside the ``with`` block, and ``child_time`` accumulates the
    duration of directly nested spans so ``self_time`` isolates the time
    this span spent in its own code.
    """

    __slots__ = ("name", "span_id", "parent_id", "trace_id", "start",
                 "duration", "attrs", "child_time", "_tracer", "_t0")

    def __init__(self, tracer, name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.trace_id: Optional[str] = None
        self.start = 0.0
        self.duration = 0.0
        self.child_time = 0.0
        self._t0 = 0.0

    @property
    def self_time(self) -> float:
        """Duration minus the time spent in directly nested spans."""
        return max(self.duration - self.child_time, 0.0)

    def set_attr(self, key: str, value: Any) -> "Span":
        """Attach one attribute; chainable."""
        self.attrs[key] = value
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    def to_dict(self) -> Dict[str, Any]:
        """The JSONL export record (one trace line)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent": self.parent_id,
            "trace_id": self.trace_id,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, duration={self.duration:.6f})")


class NullSpan:
    """Do-nothing stand-in returned while tracing is disabled."""

    __slots__ = ()

    duration = 0.0
    self_time = 0.0

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> "NullSpan":
        return self


#: Shared no-op span; one instance serves every disabled call site.
NULL_SPAN = NullSpan()
