"""Observability layer: tracing spans, metrics, streaming, run reports.

This package is the instrumentation substrate every perf claim in the
repo is measured against. Call sites use the module-level facade:

    from repro import obs

    with obs.span("analysis.cfg", file=path):
        ...
    obs.incr("testbed.files_analyzed", n)
    obs.observe("cv.fold_seconds", dt)
    obs.event("engine.pool_rebuild", suspects=2)

The facade is **disabled by default**: ``span`` returns a shared no-op
singleton and the metric helpers return immediately, so the instrumented
hot paths cost one global read plus a call when observability is off.
``configure()`` (the CLI's ``--trace``/``--profile``/``--stream``
flags, the serving daemon, or tests) installs an :class:`ObsSession`
holding a live :class:`~repro.obs.tracer.Tracer` and
:class:`~repro.obs.metrics.MetricsRegistry`; ``disable()`` removes it.

Every finished span also feeds a ``span.<name>.seconds`` histogram in
the registry, so per-analyzer duration distributions come for free.

With a ``stream_path`` configured, the session additionally owns a
:class:`~repro.obs.stream.TelemetryStream` — a rotating JSONL event
stream that records finished spans, counter deltas, gauge writes,
histogram observations, and structured events as they happen, for
``repro monitor`` / ``repro slo-check`` and post-mortems.

Trace identity: spans carry the trace ID bound to the current thread
(:func:`repro.obs.context.trace_scope` — what the daemon binds per
request) or the session tracer's default (what the CLI mints per
invocation); :func:`current_trace_id` resolves that chain for callers
that need to propagate the ID across process or host boundaries.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs import context
from repro.obs.context import (
    format_traceparent,
    new_trace_id,
    parse_traceparent,
    trace_scope,
)
from repro.obs.export import (
    SPAN_RECORD_KEYS,
    read_jsonl,
    rotate_files,
    trace_lines,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PROMETHEUS_CONTENT_TYPE,
    percentile,
    prometheus_exposition,
    sanitize_metric_name,
)
from repro.obs.report import (
    aggregate_spans,
    format_delta_section,
    format_error_spans,
    format_gate_section,
    format_run_report,
    format_serving_section,
)
from repro.obs.spans import NULL_SPAN, NullSpan, Span
from repro.obs.stream import (
    TELEMETRY_VERSION,
    TelemetryStream,
    read_events,
    replay_registry,
    replay_snapshot,
)
from repro.obs.tracer import Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NULL_SPAN",
    "NullSpan", "ObsSession", "PROMETHEUS_CONTENT_TYPE",
    "SPAN_RECORD_KEYS", "Span", "TELEMETRY_VERSION", "TelemetryStream",
    "Tracer",
    "active", "aggregate_spans", "configure", "current_trace_id",
    "disable", "event",
    "format_delta_section", "format_error_spans", "format_gate_section",
    "format_run_report", "format_serving_section", "format_traceparent",
    "gauge", "graft_spans",
    "incr", "is_enabled",
    "merge_counters", "new_trace_id", "observe", "parse_traceparent",
    "percentile", "prometheus_exposition",
    "read_events", "read_jsonl", "replay_registry", "replay_snapshot",
    "rotate_files", "sanitize_metric_name", "span", "trace_lines",
    "trace_scope", "write_jsonl",
]


class ObsSession:
    """One enabled observability window: tracer, registry, stream."""

    def __init__(self, profile: bool = False,
                 trace_path: Optional[str] = None,
                 stream: Optional[TelemetryStream] = None,
                 trace_id: Optional[str] = None):
        self.profile = profile
        self.trace_path = trace_path
        self.stream = stream
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(on_finish=self._span_finished,
                             trace_id=trace_id)

    def _span_finished(self, span: Span) -> None:
        self.metrics.histogram(f"span.{span.name}.seconds").observe(
            span.duration
        )
        if self.stream is not None:
            self.stream.emit_span(span.to_dict())

    def write_trace(self) -> int:
        """Export the trace to ``trace_path``; returns spans written."""
        if not self.trace_path:
            return 0
        return write_jsonl(self.tracer, self.trace_path)

    def close(self) -> None:
        """Release the session's stream descriptor (idempotent)."""
        if self.stream is not None:
            self.stream.close()


_session: Optional[ObsSession] = None


def configure(profile: bool = False,
              trace_path: Optional[str] = None,
              stream_path: Optional[str] = None,
              stream_max_bytes: Optional[int] = None,
              trace_id: Optional[str] = None) -> ObsSession:
    """Enable observability with a fresh session (replacing any prior).

    ``stream_path`` attaches a rotating telemetry event stream;
    ``trace_id`` sets the tracer-wide default trace ID every span
    recorded outside an explicit :func:`trace_scope` inherits.
    """
    global _session
    stream = None
    if stream_path:
        kwargs = {}
        if stream_max_bytes is not None:
            kwargs["max_bytes"] = stream_max_bytes
        stream = TelemetryStream(stream_path, **kwargs)
    if _session is not None:
        _session.close()
    _session = ObsSession(profile=profile, trace_path=trace_path,
                          stream=stream, trace_id=trace_id)
    return _session


def disable() -> Optional[ObsSession]:
    """Disable observability; returns the session that was active."""
    global _session
    session, _session = _session, None
    if session is not None:
        session.close()
    return session


def active() -> Optional[ObsSession]:
    """The active session, or None when disabled."""
    return _session


def is_enabled() -> bool:
    return _session is not None


def current_trace_id() -> Optional[str]:
    """The trace ID spans recorded right now would carry, or None.

    Resolution order mirrors the tracer's: the current thread's
    :func:`trace_scope` binding first, then the active session
    tracer's per-invocation default.
    """
    bound = context.current_trace_id()
    if bound:
        return bound
    session = _session
    if session is not None:
        return session.tracer.trace_id
    return None


def span(name: str, **attrs: Any):
    """A tracing span context manager (no-op singleton when disabled)."""
    session = _session
    if session is None:
        return NULL_SPAN
    return session.tracer.span(name, **attrs)


def incr(name: str, amount: float = 1.0) -> None:
    """Increment a counter (no-op when disabled)."""
    session = _session
    if session is not None:
        session.metrics.counter(name).inc(amount)
        if session.stream is not None:
            session.stream.emit("counter", name=name, delta=amount)


def gauge(name: str, value: float) -> None:
    """Set a gauge (no-op when disabled)."""
    session = _session
    if session is not None:
        session.metrics.gauge(name).set(value)
        if session.stream is not None:
            session.stream.emit("gauge", name=name, value=float(value))


def observe(name: str, value: float) -> None:
    """Record a histogram observation (no-op when disabled)."""
    session = _session
    if session is not None:
        session.metrics.histogram(name).observe(value)
        if session.stream is not None:
            session.stream.emit("observe", name=name, value=float(value))


def event(name: str, **fields: Any) -> None:
    """Emit a structured event to the telemetry stream (else no-op).

    Events are for one-off operational facts — a shed request, a task
    retry, a pool rebuild — where a bare counter loses the context
    (which app, what attempt) an investigation needs. They only exist
    on the stream; counters remain the aggregate view.
    """
    session = _session
    if session is not None and session.stream is not None:
        session.stream.emit("event", name=name, fields=fields)


def graft_spans(records) -> None:
    """Replay span records from a worker process (no-op when disabled).

    ``records`` is a list of export dicts as produced by
    :meth:`~repro.obs.tracer.Tracer.records` in the worker's session.
    """
    session = _session
    if session is not None and records:
        session.tracer.graft(records)


def merge_counters(counters) -> None:
    """Fold a worker's ``{name: value}`` counter snapshot into this
    session's registry (no-op when disabled)."""
    session = _session
    if session is not None and counters:
        for name, value in counters.items():
            incr(name, value)
