"""Observability layer: tracing spans, metrics, and run reports.

This package is the instrumentation substrate every perf claim in the
repo is measured against. Call sites use the module-level facade:

    from repro import obs

    with obs.span("analysis.cfg", file=path):
        ...
    obs.incr("testbed.files_analyzed", n)
    obs.observe("cv.fold_seconds", dt)

The facade is **disabled by default**: ``span`` returns a shared no-op
singleton and the metric helpers return immediately, so the instrumented
hot paths cost one global read plus a call when observability is off.
``configure()`` (the CLI's ``--trace``/``--profile`` flags, or tests)
installs an :class:`ObsSession` holding a live
:class:`~repro.obs.tracer.Tracer` and
:class:`~repro.obs.metrics.MetricsRegistry`; ``disable()`` removes it.

Every finished span also feeds a ``span.<name>.seconds`` histogram in
the registry, so per-analyzer duration distributions come for free.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.export import (
    SPAN_RECORD_KEYS,
    read_jsonl,
    trace_lines,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.obs.report import (
    aggregate_spans,
    format_delta_section,
    format_error_spans,
    format_run_report,
    format_serving_section,
)
from repro.obs.spans import NULL_SPAN, NullSpan, Span
from repro.obs.tracer import Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NULL_SPAN",
    "NullSpan", "ObsSession", "SPAN_RECORD_KEYS", "Span", "Tracer",
    "active", "aggregate_spans", "configure", "disable",
    "format_delta_section", "format_error_spans", "format_run_report",
    "format_serving_section",
    "gauge", "graft_spans",
    "incr", "is_enabled",
    "merge_counters", "observe", "percentile", "read_jsonl", "span",
    "trace_lines", "write_jsonl",
]


class ObsSession:
    """One enabled observability window: a tracer plus a registry."""

    def __init__(self, profile: bool = False,
                 trace_path: Optional[str] = None):
        self.profile = profile
        self.trace_path = trace_path
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(on_finish=self._span_finished)

    def _span_finished(self, span: Span) -> None:
        self.metrics.histogram(f"span.{span.name}.seconds").observe(
            span.duration
        )

    def write_trace(self) -> int:
        """Export the trace to ``trace_path``; returns spans written."""
        if not self.trace_path:
            return 0
        return write_jsonl(self.tracer, self.trace_path)


_session: Optional[ObsSession] = None


def configure(profile: bool = False,
              trace_path: Optional[str] = None) -> ObsSession:
    """Enable observability with a fresh session (replacing any prior)."""
    global _session
    _session = ObsSession(profile=profile, trace_path=trace_path)
    return _session


def disable() -> Optional[ObsSession]:
    """Disable observability; returns the session that was active."""
    global _session
    session, _session = _session, None
    return session


def active() -> Optional[ObsSession]:
    """The active session, or None when disabled."""
    return _session


def is_enabled() -> bool:
    return _session is not None


def span(name: str, **attrs: Any):
    """A tracing span context manager (no-op singleton when disabled)."""
    session = _session
    if session is None:
        return NULL_SPAN
    return session.tracer.span(name, **attrs)


def incr(name: str, amount: float = 1.0) -> None:
    """Increment a counter (no-op when disabled)."""
    session = _session
    if session is not None:
        session.metrics.counter(name).inc(amount)


def gauge(name: str, value: float) -> None:
    """Set a gauge (no-op when disabled)."""
    session = _session
    if session is not None:
        session.metrics.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation (no-op when disabled)."""
    session = _session
    if session is not None:
        session.metrics.histogram(name).observe(value)


def graft_spans(records) -> None:
    """Replay span records from a worker process (no-op when disabled).

    ``records`` is a list of export dicts as produced by
    :meth:`~repro.obs.tracer.Tracer.records` in the worker's session.
    """
    session = _session
    if session is not None and records:
        session.tracer.graft(records)


def merge_counters(counters) -> None:
    """Fold a worker's ``{name: value}`` counter snapshot into this
    session's registry (no-op when disabled)."""
    session = _session
    if session is not None and counters:
        for name, value in counters.items():
            session.metrics.counter(name).inc(value)
