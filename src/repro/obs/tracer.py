"""Span-based tracer with nesting, monotonic timings, and trace IDs.

The tracer keeps an explicit stack of open spans *per thread*; a span
entered while another is open on the same thread becomes its child
(``parent_id`` links them, and the parent's ``child_time`` grows by the
child's duration on exit). Finished spans land on :attr:`Tracer.spans`
in completion order, ready for the JSONL exporter and the run-report
aggregator.

Threading model: span *nesting* is thread-local (each thread nests its
own spans — the serving daemon's handler threads each build their own
request subtree), while span-ID allocation and the finished-span list
are guarded by one small lock so concurrent threads never corrupt
shared state. The single-threaded pipeline pays one uncontended lock
acquire per span boundary, which is noise next to the measured work.

Trace IDs: every pushed span is stamped with the current thread's
trace ID (:func:`repro.obs.context.current_trace_id` — what the daemon
binds per request) or, failing that, the tracer-wide default
:attr:`Tracer.trace_id` (what the CLI mints per invocation). Grafted
worker spans keep the trace ID they were recorded under, so a
request's spans share one ID across process boundaries.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

from repro.obs import context
from repro.obs.spans import Span


class Tracer:
    """Creates, nests, and collects :class:`~repro.obs.spans.Span`.

    Args:
        on_finish: optional callback invoked with each finished span —
            the obs session uses it to feed per-span duration
            histograms into the metrics registry (and the telemetry
            stream, when one is attached).
        trace_id: default trace ID stamped on spans recorded while no
            thread-local trace scope is bound (the CLI's per-invocation
            root ID). None leaves unscoped spans untraced.
    """

    def __init__(self, on_finish: Optional[Callable[[Span], None]] = None,
                 trace_id: Optional[str] = None):
        self.spans: List[Span] = []
        self.trace_id = trace_id
        self._local = threading.local()
        self._lock = threading.Lock()
        self._epoch = perf_counter()
        self._next_id = 1
        self._on_finish = on_finish

    @property
    def _stack(self) -> List[Span]:
        """The calling thread's stack of open spans."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _allocate_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    def _collect(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)
        if self._on_finish is not None:
            self._on_finish(span)

    def span(self, name: str, **attrs: Any) -> Span:
        """A new span, to be used as a context manager."""
        return Span(self, name, attrs)

    # -- span lifecycle (called by Span.__enter__/__exit__) -----------------

    def _push(self, span: Span) -> None:
        stack = self._stack
        span.span_id = self._allocate_id()
        span.parent_id = stack[-1].span_id if stack else None
        span.trace_id = context.current_trace_id() or self.trace_id
        stack.append(span)
        span._t0 = perf_counter()
        span.start = span._t0 - self._epoch

    def _pop(self, span: Span) -> None:
        span.duration = perf_counter() - span._t0
        stack = self._stack
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # mismatched exit: drop abandoned children
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        if stack:
            stack[-1].child_time += span.duration
        self._collect(span)

    # -- cross-process replay ----------------------------------------------

    def graft(self, records: List[Dict[str, Any]]) -> List[Span]:
        """Append pre-timed span records from another tracer.

        The parallel engine runs analyzers in worker processes, each with
        its own session; the workers ship their finished spans back as
        export records (:meth:`records`) and the parent grafts them here
        so ``--profile`` and ``--trace`` see one unified tree. Span ids
        are remapped into this tracer's id space, records whose parent is
        outside the shipment hang off the currently open span, and starts
        are shifted so the subtree sits at the current wall position.
        Parent ``child_time`` is reconstructed from the shipped tree so
        self-time accounting stays truthful. A shipped record's trace ID
        survives the graft; records shipped without one inherit the
        attach point's (so worker spans always join the request or run
        that scheduled them).
        """
        id_map: Dict[int, int] = {}
        grafted: Dict[int, Span] = {}
        stack = self._stack
        attach_parent = stack[-1] if stack else None
        inherited = None
        if attach_parent is not None:
            inherited = attach_parent.trace_id
        if inherited is None:
            inherited = context.current_trace_id() or self.trace_id
        offset = self.wall_seconds - min(
            (r["start"] for r in records), default=0.0
        )
        out: List[Span] = []
        for record in records:
            span = Span(self, record["name"], dict(record.get("attrs", {})))
            span.span_id = self._allocate_id()
            id_map[record["span_id"]] = span.span_id
            grafted[span.span_id] = span
            parent = record.get("parent")
            if parent is not None and parent in id_map:
                span.parent_id = id_map[parent]
                grafted[span.parent_id].child_time += record["duration"]
            else:
                span.parent_id = (
                    attach_parent.span_id if attach_parent else None
                )
                if attach_parent is not None:
                    attach_parent.child_time += record["duration"]
            span.trace_id = record.get("trace_id") or inherited
            span.start = record["start"] + offset
            span.duration = record["duration"]
            self._collect(span)
            out.append(span)
        return out

    # -- introspection ------------------------------------------------------

    @property
    def wall_seconds(self) -> float:
        """Monotonic seconds since this tracer was created."""
        return perf_counter() - self._epoch

    @property
    def open_spans(self) -> int:
        """Spans currently entered but not yet exited (this thread)."""
        return len(self._stack)

    def spans_named(self, name: str) -> List[Span]:
        """All finished spans with the given name."""
        return [s for s in self.spans if s.name == name]

    def records(self) -> List[Dict[str, Any]]:
        """Finished spans as export dicts, ordered by start time."""
        return [s.to_dict() for s in sorted(self.spans, key=lambda s: s.start)]
