"""Span-based tracer with nesting and monotonic timings.

The tracer keeps an explicit stack of open spans; a span entered while
another is open becomes its child (``parent_id`` links them, and the
parent's ``child_time`` grows by the child's duration on exit). Finished
spans land on :attr:`Tracer.spans` in completion order, ready for the
JSONL exporter and the run-report aggregator.

The pipeline is single-threaded, so the tracer deliberately carries no
locks; one tracer must not be shared across threads.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

from repro.obs.spans import Span


class Tracer:
    """Creates, nests, and collects :class:`~repro.obs.spans.Span`.

    Args:
        on_finish: optional callback invoked with each finished span —
            the obs session uses it to feed per-span duration
            histograms into the metrics registry.
    """

    def __init__(self, on_finish: Optional[Callable[[Span], None]] = None):
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._epoch = perf_counter()
        self._next_id = 1
        self._on_finish = on_finish

    def span(self, name: str, **attrs: Any) -> Span:
        """A new span, to be used as a context manager."""
        return Span(self, name, attrs)

    # -- span lifecycle (called by Span.__enter__/__exit__) -----------------

    def _push(self, span: Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        span.parent_id = self._stack[-1].span_id if self._stack else None
        self._stack.append(span)
        span._t0 = perf_counter()
        span.start = span._t0 - self._epoch

    def _pop(self, span: Span) -> None:
        span.duration = perf_counter() - span._t0
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # mismatched exit: drop abandoned children
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            if self._stack:
                self._stack.pop()
        if self._stack:
            self._stack[-1].child_time += span.duration
        self.spans.append(span)
        if self._on_finish is not None:
            self._on_finish(span)

    # -- cross-process replay ----------------------------------------------

    def graft(self, records: List[Dict[str, Any]]) -> List[Span]:
        """Append pre-timed span records from another tracer.

        The parallel engine runs analyzers in worker processes, each with
        its own session; the workers ship their finished spans back as
        export records (:meth:`records`) and the parent grafts them here
        so ``--profile`` and ``--trace`` see one unified tree. Span ids
        are remapped into this tracer's id space, records whose parent is
        outside the shipment hang off the currently open span, and starts
        are shifted so the subtree sits at the current wall position.
        Parent ``child_time`` is reconstructed from the shipped tree so
        self-time accounting stays truthful.
        """
        id_map: Dict[int, int] = {}
        grafted: Dict[int, Span] = {}
        attach_parent = self._stack[-1] if self._stack else None
        offset = self.wall_seconds - min(
            (r["start"] for r in records), default=0.0
        )
        out: List[Span] = []
        for record in records:
            span = Span(self, record["name"], dict(record.get("attrs", {})))
            span.span_id = self._next_id
            self._next_id += 1
            id_map[record["span_id"]] = span.span_id
            grafted[span.span_id] = span
            parent = record.get("parent")
            if parent is not None and parent in id_map:
                span.parent_id = id_map[parent]
                grafted[span.parent_id].child_time += record["duration"]
            else:
                span.parent_id = (
                    attach_parent.span_id if attach_parent else None
                )
                if attach_parent is not None:
                    attach_parent.child_time += record["duration"]
            span.start = record["start"] + offset
            span.duration = record["duration"]
            self.spans.append(span)
            out.append(span)
            if self._on_finish is not None:
                self._on_finish(span)
        return out

    # -- introspection ------------------------------------------------------

    @property
    def wall_seconds(self) -> float:
        """Monotonic seconds since this tracer was created."""
        return perf_counter() - self._epoch

    @property
    def open_spans(self) -> int:
        """Spans currently entered but not yet exited."""
        return len(self._stack)

    def spans_named(self, name: str) -> List[Span]:
        """All finished spans with the given name."""
        return [s for s in self.spans if s.name == name]

    def records(self) -> List[Dict[str, Any]]:
        """Finished spans as export dicts, ordered by start time."""
        return [s.to_dict() for s in sorted(self.spans, key=lambda s: s.start)]
