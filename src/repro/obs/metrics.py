"""Metrics registry: counters, gauges, and summary histograms.

Instruments are created lazily by name (`registry.counter("x")` is
get-or-create) so call sites never need setup code. Histograms keep raw
observations and summarise on demand with count/total/mean/min/p50/p95/
max — the shape the run report renders and `BENCH_*.json` perf claims
will cite.

Instruments are thread-safe: the serving layer records request
counters and latency observations from `ThreadingHTTPServer` handler
threads, so `Counter.inc`, `Gauge.set`, and `Histogram.observe` each
take a per-instrument lock (and the registry locks instrument
creation). The single-threaded pipeline pays one uncontended lock
acquire per record, which is noise next to the measured work.
"""

from __future__ import annotations

import re
import threading
from typing import Dict, List, Sequence


def _percentile_sorted(data: Sequence[float], q: float) -> float:
    if len(data) == 1:
        return float(data[0])
    rank = (q / 100.0) * (len(data) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(data) - 1)
    frac = rank - lo
    return float(data[lo] * (1.0 - frac) + data[hi] * frac)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of ``values``.

    Matches numpy's default ("linear") method; implemented locally so the
    hot recording path stays allocation-free and numpy-free.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    return _percentile_sorted(sorted(values), q)


def summarise(values: Sequence[float]) -> Dict[str, float]:
    """The histogram summary shape for a plain list of observations.

    Shared by live :class:`Histogram` instruments and the telemetry
    stream replay (which reconstructs summaries offline), so both paths
    produce byte-identical snapshot documents for the same data.
    """
    if not values:
        return {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    data = sorted(values)
    total = sum(data)
    return {
        "count": len(data),
        "total": total,
        "mean": total / len(data),
        "min": data[0],
        "p50": _percentile_sorted(data, 50.0),
        "p95": _percentile_sorted(data, 95.0),
        "p99": _percentile_sorted(data, 99.0),
        "max": data[-1],
    }


class Counter:
    """A monotonically increasing count (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value (last write wins; thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.value = value


class Histogram:
    """A distribution of observations with on-demand summaries."""

    __slots__ = ("name", "values", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.values: List[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    def summary(self) -> Dict[str, float]:
        """count/total/mean/min/p50/p95/p99/max over the observations.

        Computed under the instrument lock, so a summary taken while
        handler threads are still observing (the ``/metricz`` endpoint
        does exactly that) sees a consistent snapshot — and a hot
        writer cannot outgrow a reader that summarises concurrently.
        """
        with self._lock:
            return summarise(self.values)


class MetricsRegistry:
    """Named instruments, created on first use (creation is locked)."""

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            with self._lock:
                inst = self.counters.setdefault(name, Counter(name))
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            with self._lock:
                inst = self.gauges.setdefault(name, Gauge(name))
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self.histograms.get(name)
        if inst is None:
            with self._lock:
                inst = self.histograms.setdefault(name, Histogram(name))
        return inst

    def snapshot(self) -> Dict[str, Dict]:
        """A plain-dict dump of every instrument (JSON-serialisable)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self.histograms.items())
            },
        }


# -- Prometheus text exposition ---------------------------------------

#: Characters Prometheus allows in a metric name after the first.
_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")

#: Default namespace every exposed metric is prefixed with.
PROMETHEUS_PREFIX = "repro_"

#: The content type ``GET /metricz`` serves for the text exposition.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Summary quantile lines emitted per histogram (label value, summary
#: key). Emitted only when the histogram has samples — a quantile of an
#: empty distribution is undefined, not zero.
_PROM_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def sanitize_metric_name(name: str) -> str:
    """``name`` coerced into Prometheus's ``[a-zA-Z_:][a-zA-Z0-9_:]*``.

    The registry's dotted names (``serve.predict.seconds``) become
    underscore-separated; any other invalid character also maps to an
    underscore, and a leading digit gains an underscore prefix so the
    result always starts with a legal character.
    """
    out = _PROM_INVALID.sub("_", name)
    if not out:
        return "_"
    if out[0].isdigit():
        out = "_" + out
    return out


def _prom_value(value: float) -> str:
    """A float rendered the way Prometheus text format expects."""
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_exposition(snapshot: Dict[str, Dict],
                          prefix: str = PROMETHEUS_PREFIX) -> str:
    """The registry snapshot as Prometheus text exposition (v0.0.4).

    Counters expose as ``<prefix><name>_total``, gauges as-is, and
    histograms as summaries (``{quantile="…"}`` series plus ``_sum``
    and ``_count``), all under ``prefix`` with dotted registry names
    sanitised to legal Prometheus names. Deterministic: names are
    emitted in the snapshot's (sorted) order, so two expositions of the
    same snapshot are byte-identical.
    """
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = prefix + sanitize_metric_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = prefix + sanitize_metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, summary in snapshot.get("histograms", {}).items():
        metric = prefix + sanitize_metric_name(name)
        lines.append(f"# TYPE {metric} summary")
        if summary.get("count", 0):
            for label, key in _PROM_QUANTILES:
                if key in summary:
                    lines.append(
                        f'{metric}{{quantile="{label}"}} '
                        f"{_prom_value(summary[key])}")
        lines.append(f"{metric}_sum {_prom_value(summary.get('total', 0))}")
        lines.append(f"{metric}_count {_prom_value(summary.get('count', 0))}")
    return "\n".join(lines) + "\n"
