"""Metrics registry: counters, gauges, and summary histograms.

Instruments are created lazily by name (`registry.counter("x")` is
get-or-create) so call sites never need setup code. Histograms keep raw
observations and summarise on demand with count/total/mean/min/p50/p95/
max — the shape the run report renders and `BENCH_*.json` perf claims
will cite.

Instruments are thread-safe: the serving layer records request
counters and latency observations from `ThreadingHTTPServer` handler
threads, so `Counter.inc`, `Gauge.set`, and `Histogram.observe` each
take a per-instrument lock (and the registry locks instrument
creation). The single-threaded pipeline pays one uncontended lock
acquire per record, which is noise next to the measured work.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of ``values``.

    Matches numpy's default ("linear") method; implemented locally so the
    hot recording path stays allocation-free and numpy-free.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    data = sorted(values)
    if len(data) == 1:
        return float(data[0])
    rank = (q / 100.0) * (len(data) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(data) - 1)
    frac = rank - lo
    return float(data[lo] * (1.0 - frac) + data[hi] * frac)


class Counter:
    """A monotonically increasing count (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value (last write wins; thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.value = value


class Histogram:
    """A distribution of observations with on-demand summaries."""

    __slots__ = ("name", "values", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.values: List[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    def summary(self) -> Dict[str, float]:
        """count/total/mean/min/p50/p95/max over the observations.

        Snapshots the observation list under the lock first, so a
        summary taken while handler threads are still observing (the
        ``/metricz`` endpoint does exactly that) sees a consistent
        prefix rather than a list mutating mid-percentile.
        """
        with self._lock:
            values = list(self.values)
        if not values:
            return {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0,
                    "p50": 0.0, "p95": 0.0, "max": 0.0}
        total = sum(values)
        return {
            "count": len(values),
            "total": total,
            "mean": total / len(values),
            "min": min(values),
            "p50": percentile(values, 50.0),
            "p95": percentile(values, 95.0),
            "max": max(values),
        }


class MetricsRegistry:
    """Named instruments, created on first use (creation is locked)."""

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            with self._lock:
                inst = self.counters.setdefault(name, Counter(name))
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            with self._lock:
                inst = self.gauges.setdefault(name, Gauge(name))
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self.histograms.get(name)
        if inst is None:
            with self._lock:
                inst = self.histograms.setdefault(name, Histogram(name))
        return inst

    def snapshot(self) -> Dict[str, Dict]:
        """A plain-dict dump of every instrument (JSON-serialisable)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self.histograms.items())
            },
        }
