"""Metrics registry: counters, gauges, and summary histograms.

Instruments are created lazily by name (`registry.counter("x")` is
get-or-create) so call sites never need setup code. Histograms keep raw
observations and summarise on demand with count/total/mean/min/p50/p95/
max — the shape the run report renders and `BENCH_*.json` perf claims
will cite.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of ``values``.

    Matches numpy's default ("linear") method; implemented locally so the
    hot recording path stays allocation-free and numpy-free.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    data = sorted(values)
    if len(data) == 1:
        return float(data[0])
    rank = (q / 100.0) * (len(data) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(data) - 1)
    frac = rank - lo
    return float(data[lo] * (1.0 - frac) + data[hi] * frac)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A distribution of observations with on-demand summaries."""

    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    def summary(self) -> Dict[str, float]:
        """count/total/mean/min/p50/p95/max over the observations."""
        if not self.values:
            return {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0,
                    "p50": 0.0, "p95": 0.0, "max": 0.0}
        return {
            "count": len(self.values),
            "total": self.total,
            "mean": self.total / len(self.values),
            "min": min(self.values),
            "p50": percentile(self.values, 50.0),
            "p95": percentile(self.values, 95.0),
            "max": max(self.values),
        }


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = Histogram(name)
        return inst

    def snapshot(self) -> Dict[str, Dict]:
        """A plain-dict dump of every instrument (JSON-serialisable)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self.histograms.items())
            },
        }
