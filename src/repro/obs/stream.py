"""Streaming telemetry export: a rotating JSONL event stream.

Where the trace exporter (:mod:`repro.obs.export`) writes one file at
the *end* of a run, the stream writes events *as they happen*, so a
long-lived daemon's telemetry is observable while it runs and survives
a crash up to the last flushed line. Consumers are ``repro monitor``
(tail + render), ``repro slo-check`` (replay + evaluate), and anything
that can read JSON lines.

Event schema (stable; stamped with ``telemetry_version`` so consumers
can detect shape changes):

    {"v": 1, "ts": <unix seconds>, "type": "span",
     "span": {<trace-export record>}}
    {"v": 1, "ts": ..., "type": "counter", "name": str, "delta": float}
    {"v": 1, "ts": ..., "type": "gauge",   "name": str, "value": float}
    {"v": 1, "ts": ..., "type": "observe", "name": str, "value": float}
    {"v": 1, "ts": ..., "type": "event",   "name": str, "fields": {…}}

``counter`` events carry *deltas* (one per increment), not totals —
replaying a stream from any starting generation yields correct totals
for the replayed window, and concurrent increments from handler
threads serialise through the writer lock without ever publishing a
torn running total.

Durability: each event is serialised to one line and written with a
single ``os.write`` to an append-mode descriptor — the flush *is* the
write, so readers (and crash post-mortems) see whole lines only.
Size-based rotation caps the live file: when a write would push it
past ``max_bytes``, the live file rotates to ``path.1`` (older
generations shift up, the oldest falls off) before the write lands.
:func:`read_events` reassembles generations oldest-first.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.export import rotate_files, span_record
from repro.obs.metrics import MetricsRegistry

#: Bump on any breaking change to the event shapes above.
TELEMETRY_VERSION = 1

#: Default live-file bound before rotation (64 MiB).
DEFAULT_MAX_BYTES = 64 * 1024 * 1024

#: Default rotated generations kept next to the live file.
DEFAULT_KEEP = 3

#: Event types a valid stream may carry.
EVENT_TYPES = ("span", "counter", "gauge", "observe", "event")


class TelemetryStream:
    """Append-only, size-rotated JSONL event sink (thread-safe).

    Args:
        path: live stream file; rotated generations land at
            ``path.1`` … ``path.<keep>`` beside it.
        max_bytes: rotate before the live file would exceed this.
        keep: rotated generations retained (older ones fall off).
    """

    def __init__(self, path: str, max_bytes: int = DEFAULT_MAX_BYTES,
                 keep: int = DEFAULT_KEEP):
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.path = path
        self.max_bytes = int(max_bytes)
        self.keep = int(keep)
        self._lock = threading.Lock()
        self._fd: Optional[int] = None
        self._size = 0

    # -- writer -------------------------------------------------------

    def _ensure_open(self) -> int:
        if self._fd is None:
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            self._size = os.fstat(self._fd).st_size
        return self._fd

    def emit(self, event_type: str, **payload: Any) -> None:
        """Append one event; never raises on I/O trouble.

        Telemetry must not take the instrumented program down: an
        OSError (disk full, path removed) drops the event silently and
        the next emit retries with a fresh descriptor.
        """
        event: Dict[str, Any] = {"v": TELEMETRY_VERSION,
                                 "ts": round(time.time(), 6),
                                 "type": event_type}
        event.update(payload)
        line = (json.dumps(event, sort_keys=True, default=repr)
                + "\n").encode("utf-8")
        with self._lock:
            try:
                fd = self._ensure_open()
                if self._size and self._size + len(line) > self.max_bytes:
                    os.close(fd)
                    self._fd = None
                    rotate_files(self.path, keep=self.keep)
                    fd = self._ensure_open()
                os.write(fd, line)
                self._size += len(line)
            except OSError:
                if self._fd is not None:
                    try:
                        os.close(self._fd)
                    except OSError:  # pragma: no cover - double fault
                        pass
                    self._fd = None

    def emit_span(self, record: Dict[str, Any]) -> None:
        """Append one finished span (a trace-export record)."""
        self.emit("span", span=span_record(record))

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                try:
                    os.close(self._fd)
                except OSError:  # pragma: no cover - already closed
                    pass
                self._fd = None


# -- reader / replay --------------------------------------------------


def stream_files(path: str, include_rotated: bool = True) -> List[str]:
    """The stream's on-disk files, oldest generation first."""
    paths = [path]
    if include_rotated:
        generation = 1
        older = []
        while os.path.exists(f"{path}.{generation}"):
            older.append(f"{path}.{generation}")
            generation += 1
        paths = list(reversed(older)) + paths
    return [part for part in paths if os.path.exists(part)]


def read_events(path: str,
                include_rotated: bool = True) -> List[Dict[str, Any]]:
    """Parse a stream back into event dicts, oldest first.

    Torn or corrupt lines (a crash mid-write on a non-POSIX filesystem,
    a truncated copy) are skipped, not fatal — a telemetry reader must
    degrade, never block an investigation.
    """
    events: List[Dict[str, Any]] = []
    for part in stream_files(path, include_rotated=include_rotated):
        with open(part, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(event, dict) and "type" in event:
                    events.append(event)
    return events


def replay_registry(events: Iterable[Dict[str, Any]]) -> MetricsRegistry:
    """Reconstruct a metrics registry from a stream's events.

    Counter deltas re-accumulate, gauges take their last write,
    ``observe`` events refill histograms, and span events refill the
    per-span-name duration histograms a live session maintains — so an
    offline replay sees the same snapshot shape (and the same SLO
    verdicts) the live ``/metricz`` endpoint serves.
    """
    registry = MetricsRegistry()
    for event in events:
        kind = event.get("type")
        try:
            # Pull every field out *before* touching the registry, so a
            # malformed event cannot mint a zero-valued instrument.
            if kind == "counter":
                name, delta = event["name"], float(event["delta"])
                registry.counter(name).inc(delta)
            elif kind == "gauge":
                name, value = event["name"], float(event["value"])
                registry.gauge(name).set(value)
            elif kind == "observe":
                name, value = event["name"], float(event["value"])
                registry.histogram(name).observe(value)
            elif kind == "span":
                span = event["span"]
                name = f"span.{span['name']}.seconds"
                duration = float(span["duration"])
                registry.histogram(name).observe(duration)
        except (KeyError, TypeError, ValueError):
            continue  # malformed event: skip, keep replaying
    return registry


def replay_snapshot(path: str,
                    include_rotated: bool = True) -> Dict[str, Dict]:
    """A registry snapshot replayed straight from a stream file."""
    return replay_registry(
        read_events(path, include_rotated=include_rotated)).snapshot()
