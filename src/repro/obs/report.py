"""Run-report formatter: the per-phase/per-analyzer time breakdown.

Aggregates finished spans by name into calls/total/self/mean/p95/max
rows, ranks them by self-time (time in the span's own code, excluding
nested spans) so the table answers "which analyzer dominates
wall-clock", and appends the registry's counters, gauges, and non-span
histograms. This is what ``--profile`` prints after a command.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.obs.metrics import MetricsRegistry, percentile
from repro.obs.spans import Span


@dataclass
class SpanStats:
    """Aggregate timing for all spans sharing one name."""

    name: str
    calls: int
    total: float       # summed durations (includes nested spans)
    self_total: float  # summed self-times (excludes nested spans)
    mean: float
    p95: float
    max: float


def aggregate_spans(spans: Sequence[Span]) -> List[SpanStats]:
    """Per-name aggregates, ranked by self-time (descending)."""
    by_name: Dict[str, List[Span]] = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span)
    stats = []
    for name, group in by_name.items():
        durations = [s.duration for s in group]
        stats.append(SpanStats(
            name=name,
            calls=len(group),
            total=sum(durations),
            self_total=sum(s.self_time for s in group),
            mean=sum(durations) / len(group),
            p95=percentile(durations, 95.0),
            max=max(durations),
        ))
    stats.sort(key=lambda s: (-s.self_total, s.name))
    return stats


def format_span_table(spans: Sequence[Span]) -> str:
    """The per-phase/per-analyzer breakdown table."""
    stats = aggregate_spans(spans)
    if not stats:
        return "  (no spans recorded)"
    grand_self = sum(s.self_total for s in stats) or 1.0
    header = (f"  {'span':40s} {'calls':>6s} {'total s':>9s} {'self s':>9s}"
              f" {'mean ms':>9s} {'p95 ms':>9s} {'max ms':>9s} {'self%':>6s}")
    lines = [header]
    for s in stats:
        lines.append(
            f"  {s.name:40s} {s.calls:6d} {s.total:9.3f} {s.self_total:9.3f}"
            f" {s.mean * 1e3:9.2f} {s.p95 * 1e3:9.2f} {s.max * 1e3:9.2f}"
            f" {100.0 * s.self_total / grand_self:5.1f}%"
        )
    return "\n".join(lines)


def format_metrics(registry: MetricsRegistry) -> str:
    """Counters, gauges, and non-span histograms as report lines."""
    lines: List[str] = []
    snap = registry.snapshot()
    for name, value in snap["counters"].items():
        lines.append(f"  counter  {name:38s} {value:12g}")
    for name, value in snap["gauges"].items():
        lines.append(f"  gauge    {name:38s} {value:12g}")
    for name, summary in snap["histograms"].items():
        if name.startswith("span."):
            continue  # already covered by the span table
        lines.append(
            f"  histogram {name:37s} n={summary['count']:<5d}"
            f" mean={summary['mean']:.4g} p50={summary['p50']:.4g}"
            f" p95={summary['p95']:.4g} max={summary['max']:.4g}"
        )
    return "\n".join(lines) if lines else "  (no metrics recorded)"


def format_error_spans(spans: Sequence[Span]) -> str:
    """One line per span that finished with an ``error`` attribute.

    Spans record the exception type on abnormal exit (and the engine
    stamps failure kinds such as ``TaskTimeout`` on its per-app spans),
    so this section is the ``--profile`` view of what failed and where.
    Returns "" when no span errored, so reports of clean runs are
    unchanged.
    """
    lines = []
    for span in spans:
        if "error" not in span.attrs:
            continue
        detail = " ".join(
            f"{key}={span.attrs[key]}" for key in sorted(span.attrs)
            if key != "error"
        )
        lines.append(
            f"  {span.name:40s} {span.attrs['error']:<24s} {detail}".rstrip())
    return "\n".join(lines)


def format_serving_section(registry: MetricsRegistry) -> str:
    """Request/error/shed totals plus per-endpoint latency lines.

    Summarises the ``serve.*`` instruments the prediction daemon
    records (``serve.requests``/``serve.errors``/``serve.shed``
    counters, ``serve.<endpoint>.seconds`` histograms, batch sizes).
    Returns "" when the session saw no served traffic, so offline runs'
    reports are unchanged.
    """
    snap = registry.snapshot()
    if not any(name.startswith("serve.")
               for section in ("counters", "histograms")
               for name in snap[section]):
        return ""
    counters = snap["counters"]
    requests = counters.get("serve.requests", 0)
    errors = counters.get("serve.errors", 0)
    shed = counters.get("serve.shed", 0)
    lines = [f"  requests={requests:g} errors={errors:g} shed={shed:g}"]
    batches = snap["histograms"].get("serve.batch_size")
    if batches and batches["count"]:
        lines.append(
            f"  batches={batches['count']} mean_size={batches['mean']:.2f}"
            f" max_size={batches['max']:g}")
    for name, summary in snap["histograms"].items():
        if not (name.startswith("serve.") and name.endswith(".seconds")):
            continue
        endpoint = name[len("serve."):-len(".seconds")]
        lines.append(
            f"  /{endpoint:12s} n={summary['count']:<5d}"
            f" mean={summary['mean'] * 1e3:.2f}ms"
            f" p50={summary['p50'] * 1e3:.2f}ms"
            f" p95={summary['p95'] * 1e3:.2f}ms"
            f" max={summary['max'] * 1e3:.2f}ms"
        )
    return "\n".join(lines)


def format_delta_section(registry: MetricsRegistry) -> str:
    """File-granular cache effectiveness for incremental extraction.

    Summarises the ``engine.cache.file_*`` counters (per-file record
    hits/misses/stores) and the ``engine.delta.*`` classification the
    scheduler derives from the per-app manifest (changed / added /
    removed / unchanged files). Returns "" when the session never took
    the incremental path, so cold and uncached runs' reports are
    unchanged.
    """
    counters = registry.snapshot()["counters"]
    if not any(name.startswith("engine.cache.file_")
               or name.startswith("engine.delta.")
               for name in counters):
        return ""
    file_hits = counters.get("engine.cache.file_hits", 0)
    file_misses = counters.get("engine.cache.file_misses", 0)
    file_stores = counters.get("engine.cache.file_stores", 0)
    probed = file_hits + file_misses
    reuse = 100.0 * file_hits / probed if probed else 0.0
    lines = [
        f"  file records: hits={file_hits:g} misses={file_misses:g}"
        f" stores={file_stores:g} reuse={reuse:.1f}%"
    ]
    classified = {
        kind: counters.get(f"engine.delta.files_{kind}", 0)
        for kind in ("changed", "added", "removed", "unchanged")
    }
    if any(classified.values()):
        lines.append(
            "  files vs last run: " + " ".join(
                f"{kind}={value:g}"
                for kind, value in classified.items()))
    return "\n".join(lines)


def format_gate_section(registry: MetricsRegistry) -> str:
    """Risk-gate activity: runs, breaches, watch re-assessments.

    Summarises the ``gate.*`` counters :func:`repro.gate.delta.
    build_gate_report` records and the ``watch.*`` counters the tree
    watcher adds on top. Returns "" when the session ran no gates, so
    non-gate runs' reports are unchanged.
    """
    counters = registry.snapshot()["counters"]
    if not any(name.startswith("gate.") or name.startswith("watch.")
               for name in counters):
        return ""
    runs = counters.get("gate.runs", 0)
    breaches = counters.get("gate.breaches", 0)
    lines = [f"  gates={runs:g} breaches={breaches:g}"]
    reassessments = counters.get("watch.reassessments", 0)
    if reassessments:
        recomputed = counters.get("watch.files_recomputed", 0)
        lines.append(
            f"  watch: reassessments={reassessments:g}"
            f" files_recomputed={recomputed:g}")
    return "\n".join(lines)


def format_run_report(session, title: str = "repro telemetry") -> str:
    """The full ``--profile`` report for one obs session."""
    tracer = session.tracer
    lines = [
        f"{title} — {len(tracer.spans)} spans,"
        f" {tracer.wall_seconds:.3f}s since start",
        "",
        "per-phase / per-analyzer breakdown (ranked by self-time):",
        format_span_table(tracer.spans),
        "",
        "metrics:",
        format_metrics(session.metrics),
    ]
    delta = format_delta_section(session.metrics)
    if delta:
        lines.extend(["", "delta:", delta])
    gate = format_gate_section(session.metrics)
    if gate:
        lines.extend(["", "gate:", gate])
    serving = format_serving_section(session.metrics)
    if serving:
        lines.extend(["", "serving:", serving])
    errors = format_error_spans(tracer.spans)
    if errors:
        lines.extend(["", "errors:", errors])
    return "\n".join(lines)
