"""``repro monitor``: a live terminal dashboard over telemetry.

The renderer is a pure function from snapshots to text, so the
dashboard is unit-testable without a daemon or a TTY; the loop driver
polls a snapshot source (``GET /metricz`` on a live daemon, or a
telemetry stream file replayed on every tick), derives rates from
consecutive snapshots, evaluates the optional SLO rule set, and
repaints.

Sections: request throughput and error/shed rates, per-endpoint
latency percentiles, engine and cache health, and the SLO verdict —
the four numbers the ROADMAP's serving tier is judged on.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs.slo import SloRule, evaluate_slos

#: ANSI "clear screen, cursor home" — the repaint between frames.
_CLEAR = "\x1b[2J\x1b[H"


def _rate(current: float, previous: Optional[float],
          elapsed: Optional[float]) -> str:
    if previous is None or not elapsed or elapsed <= 0:
        return "-"
    return f"{max(current - previous, 0.0) / elapsed:.1f}/s"


def _pct(numerator: float, denominator: float) -> str:
    if denominator <= 0:
        return "-"
    return f"{100.0 * numerator / denominator:.1f}%"


def render_dashboard(
    snapshot: Dict[str, Dict],
    slo_rules: Sequence[SloRule] = (),
    source: str = "",
    previous: Optional[Dict[str, Dict]] = None,
    elapsed: Optional[float] = None,
    clock: Optional[float] = None,
) -> str:
    """One dashboard frame for ``snapshot`` (pure; deterministic).

    ``previous``/``elapsed`` turn counter totals into rates (first
    frame shows "-"); ``clock`` pins the header timestamp for tests.
    """
    counters = snapshot.get("counters", {})
    histograms = snapshot.get("histograms", {})
    prev_counters = (previous or {}).get("counters", {})
    stamp = time.strftime(
        "%H:%M:%S", time.localtime(clock if clock is not None else time.time()))
    lines: List[str] = [f"repro monitor — {source or 'snapshot'} — {stamp}"]

    requests = counters.get("serve.requests", 0.0)
    errors = counters.get("serve.errors", 0.0)
    shed = counters.get("serve.shed", 0.0)
    lines.append(
        f"requests  total={requests:g}  "
        f"rate={_rate(requests, prev_counters.get('serve.requests'), elapsed)}"
        f"  errors={errors:g} ({_pct(errors, requests)})"
        f"  shed={shed:g} ({_pct(shed, requests)})")

    latency = [(name, summary) for name, summary in histograms.items()
               if name.startswith("serve.") and name.endswith(".seconds")]
    if latency:
        lines.append("latency (ms)        p50      p95      p99      max"
                     "        n")
        for name, summary in latency:
            endpoint = "/" + name[len("serve."):-len(".seconds")]
            lines.append(
                f"  {endpoint:16s}"
                f" {summary.get('p50', 0) * 1e3:8.2f}"
                f" {summary.get('p95', 0) * 1e3:8.2f}"
                f" {summary.get('p99', 0) * 1e3:8.2f}"
                f" {summary.get('max', 0) * 1e3:8.2f}"
                f" {summary.get('count', 0):8g}")

    extracted = counters.get("engine.extracted", 0.0)
    failures = counters.get("engine.task_failures", 0.0)
    attempts = extracted + failures
    lines.append(
        f"engine    extracted={extracted:g}"
        f"  failures={failures:g} ({_pct(failures, attempts)})"
        f"  retries={counters.get('engine.task_retries', 0):g}"
        f"  pool_rebuilds={counters.get('engine.pool_rebuilds', 0):g}")

    row_hits = counters.get("engine.cache.hits", 0.0)
    row_misses = counters.get("engine.cache.misses", 0.0)
    file_hits = counters.get("engine.cache.file_hits", 0.0)
    file_misses = counters.get("engine.cache.file_misses", 0.0)
    lines.append(
        f"cache     rows hit={_pct(row_hits, row_hits + row_misses)}"
        f" ({row_hits:g}/{row_hits + row_misses:g})"
        f"  files hit={_pct(file_hits, file_hits + file_misses)}"
        f" ({file_hits:g}/{file_hits + file_misses:g})")

    batches = histograms.get("serve.batch_size")
    if batches and batches.get("count"):
        lines.append(
            f"batching  batches={batches['count']:g}"
            f"  mean_size={batches.get('mean', 0):.2f}"
            f"  max_size={batches.get('max', 0):g}")

    if slo_rules:
        report = evaluate_slos(slo_rules, snapshot)
        lines.append("")
        lines.append(report.describe())
    return "\n".join(lines) + "\n"


def run_monitor(
    fetch: Callable[[], Dict[str, Dict]],
    slo_rules: Sequence[SloRule] = (),
    source: str = "",
    interval: float = 2.0,
    once: bool = False,
    out=None,
    clear: bool = True,
    max_frames: Optional[int] = None,
) -> int:
    """Poll ``fetch`` and repaint the dashboard until interrupted.

    ``once`` renders a single frame without clearing the screen (the
    scriptable mode CI and tests use); ``max_frames`` bounds the loop
    for tests. A fetch failure renders as an error frame and the loop
    keeps polling — a daemon restart must not kill the monitor.
    Returns the process exit code (0; Ctrl-C counts as a clean exit).
    """
    out = out if out is not None else sys.stdout
    previous: Optional[Dict[str, Dict]] = None
    previous_at: Optional[float] = None
    frames = 0
    try:
        while True:
            try:
                snapshot = fetch()
                now = time.monotonic()
                elapsed = (now - previous_at
                           if previous_at is not None else None)
                frame = render_dashboard(
                    snapshot, slo_rules=slo_rules, source=source,
                    previous=previous, elapsed=elapsed)
                previous, previous_at = snapshot, now
            except Exception as exc:
                frame = (f"repro monitor — {source} — "
                         f"fetch failed: {type(exc).__name__}: {exc}\n")
            if once:
                out.write(frame)
                return 0
            out.write(_CLEAR if clear else "")
            out.write(frame)
            out.flush()
            frames += 1
            if max_frames is not None and frames >= max_frames:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0
