"""SLO engine: declarative service-level rules over metric snapshots.

A rule set is loaded from TOML (Python ≥ 3.11, via :mod:`tomllib`) or
JSON and evaluated against any registry snapshot — the live one behind
``GET /metricz`` (the daemon folds the verdict into ``/healthz`` as
``ok``/``degraded``) or one replayed offline from a telemetry stream
(``repro slo-check``, which exits non-zero naming the breached rules).
One rule language, two evaluation sites, so what CI gates on is exactly
what the daemon reports.

Rule kinds (the config's ``kind`` key):

- ``latency`` — a percentile of a histogram must stay at or under
  ``max_seconds``. Keys: ``histogram``, ``stat`` (``p50``/``p95``/
  ``p99``/``max``/``mean``, default ``p99``), ``max_seconds``.
- ``ratio_max`` — ``numerator / sum(denominator)`` must stay at or
  under ``max_ratio`` (shed rate, task-failure rate). Keys:
  ``numerator``, ``denominator`` (counter name or list summed),
  ``max_ratio``.
- ``ratio_min`` — the same ratio must stay at or above ``min_ratio``
  (cache hit rate). Keys as above plus ``min_ratio``.
- ``counter_max`` — a counter total must stay at or under
  ``max_value``. Keys: ``counter``, ``max_value``.

A rule whose inputs carry no samples (empty histogram, zero
denominator) evaluates to *ok* — "no traffic" is not a breach.

Config shape (TOML shown; the JSON equivalent is ``{"slo": [{…}]}``)::

    [[slo]]
    name = "predict-p99"
    kind = "latency"
    histogram = "serve.predict.seconds"
    stat = "p99"
    max_seconds = 0.5

    [[slo]]
    name = "shed-rate"
    kind = "ratio_max"
    numerator = "serve.shed"
    denominator = "serve.requests"
    max_ratio = 0.01
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Rule kinds this engine understands, in documentation order.
RULE_KINDS = ("latency", "ratio_max", "ratio_min", "counter_max")

#: Histogram statistics a ``latency`` rule may pin.
LATENCY_STATS = ("p50", "p95", "p99", "max", "mean")


class SloConfigError(ValueError):
    """The rule file is unreadable, unparsable, or malformed."""


@dataclass(frozen=True)
class SloRule:
    """One declarative service-level rule (validated at load time)."""

    name: str
    kind: str
    histogram: str = ""
    stat: str = "p99"
    max_seconds: float = 0.0
    numerator: str = ""
    denominator: Tuple[str, ...] = ()
    max_ratio: float = 0.0
    min_ratio: float = 0.0
    counter: str = ""
    max_value: float = 0.0

    def describe(self) -> str:
        """The rule's bound, in the unit the rule measures."""
        if self.kind == "latency":
            return (f"{self.histogram}.{self.stat} "
                    f"<= {self.max_seconds:g}s")
        ratio = f"{self.numerator}/{'+'.join(self.denominator)}"
        if self.kind == "ratio_max":
            return f"{ratio} <= {self.max_ratio:g}"
        if self.kind == "ratio_min":
            return f"{ratio} >= {self.min_ratio:g}"
        return f"{self.counter} <= {self.max_value:g}"


@dataclass(frozen=True)
class SloResult:
    """One rule's verdict against one snapshot."""

    rule: SloRule
    ok: bool
    value: Optional[float]  # None when the rule had no samples
    detail: str

    def describe(self) -> str:
        status = "ok" if self.ok else "BREACH"
        return (f"[{status:6s}] {self.rule.name}: {self.rule.describe()}"
                f" — {self.detail}")


@dataclass
class SloReport:
    """Every rule's verdict; the daemon and ``slo-check`` both render it."""

    results: List[SloResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def breached(self) -> List[str]:
        """Names of the rules that failed, in rule order."""
        return [r.rule.name for r in self.results if not r.ok]

    def describe(self) -> str:
        if not self.results:
            return "slo: no rules loaded"
        lines = [result.describe() for result in self.results]
        verdict = ("ok" if self.ok
                   else f"DEGRADED — breached: {', '.join(self.breached)}")
        lines.append(f"slo: {verdict} ({len(self.results)} rule(s))")
        return "\n".join(lines)


# -- loading ----------------------------------------------------------


def _require(doc: Dict, key: str, kinds, where: str):
    if key not in doc:
        raise SloConfigError(f"{where}: missing required key {key!r}")
    value = doc[key]
    if isinstance(value, bool) or not isinstance(value, kinds):
        raise SloConfigError(
            f"{where}: {key!r} has the wrong type ({type(value).__name__})")
    return value


def _parse_rule(doc: Dict, where: str) -> SloRule:
    if not isinstance(doc, dict):
        raise SloConfigError(f"{where}: rule must be a table/object")
    name = _require(doc, "name", str, where)
    kind = _require(doc, "kind", str, where)
    if kind not in RULE_KINDS:
        raise SloConfigError(
            f"{where}: unknown kind {kind!r} (expected one of {RULE_KINDS})")
    where = f"{where} ({name})"
    if kind == "latency":
        stat = doc.get("stat", "p99")
        if stat not in LATENCY_STATS:
            raise SloConfigError(
                f"{where}: stat must be one of {LATENCY_STATS}, got {stat!r}")
        return SloRule(
            name=name, kind=kind,
            histogram=_require(doc, "histogram", str, where),
            stat=stat,
            max_seconds=float(
                _require(doc, "max_seconds", (int, float), where)),
        )
    if kind in ("ratio_max", "ratio_min"):
        denominator = _require(doc, "denominator", (str, list), where)
        if isinstance(denominator, str):
            denominator = [denominator]
        if not denominator or any(not isinstance(d, str)
                                  for d in denominator):
            raise SloConfigError(
                f"{where}: denominator must be a counter name or a "
                f"non-empty list of counter names")
        bound_key = "max_ratio" if kind == "ratio_max" else "min_ratio"
        bound = float(_require(doc, bound_key, (int, float), where))
        return SloRule(
            name=name, kind=kind,
            numerator=_require(doc, "numerator", str, where),
            denominator=tuple(denominator),
            max_ratio=bound if kind == "ratio_max" else 0.0,
            min_ratio=bound if kind == "ratio_min" else 0.0,
        )
    return SloRule(
        name=name, kind=kind,
        counter=_require(doc, "counter", str, where),
        max_value=float(_require(doc, "max_value", (int, float), where)),
    )


def load_slo_rules(path: str) -> List[SloRule]:
    """Parse a TOML or JSON rule file into validated rules.

    Format is picked by extension: ``.toml`` goes through
    :mod:`tomllib` (stdlib from Python 3.11; on 3.10 a clear
    :class:`SloConfigError` points at the JSON alternative instead of
    an ImportError), anything else is parsed as JSON.
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        raise SloConfigError(f"cannot read SLO config {path!r}: {exc}")
    if path.endswith(".toml"):
        try:
            import tomllib
        except ImportError:
            raise SloConfigError(
                f"TOML SLO configs need Python >= 3.11 (no tomllib on "
                f"{os.path.basename(path)!r} here); use the JSON form "
                f"instead")
        try:
            doc = tomllib.loads(raw.decode("utf-8"))
        except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
            raise SloConfigError(f"invalid TOML in {path!r}: {exc}")
    else:
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise SloConfigError(f"invalid JSON in {path!r}: {exc}")
    if not isinstance(doc, dict) or not isinstance(doc.get("slo"), list):
        raise SloConfigError(
            f"{path!r} must define an 'slo' array of rule tables")
    if not doc["slo"]:
        raise SloConfigError(f"{path!r} defines no rules")
    rules = [_parse_rule(rule, f"{path} slo[{index}]")
             for index, rule in enumerate(doc["slo"])]
    seen: Dict[str, int] = {}
    for rule in rules:
        seen[rule.name] = seen.get(rule.name, 0) + 1
    duplicates = sorted(name for name, n in seen.items() if n > 1)
    if duplicates:
        raise SloConfigError(
            f"{path!r} has duplicate rule names: {', '.join(duplicates)}")
    return rules


# -- evaluation -------------------------------------------------------


def _evaluate_rule(rule: SloRule, snapshot: Dict[str, Dict]) -> SloResult:
    counters = snapshot.get("counters", {})
    histograms = snapshot.get("histograms", {})
    if rule.kind == "latency":
        summary = histograms.get(rule.histogram)
        if not summary or not summary.get("count"):
            return SloResult(rule, True, None, "no samples")
        value = float(summary.get(rule.stat, 0.0))
        ok = value <= rule.max_seconds
        return SloResult(
            rule, ok, value,
            f"{rule.stat}={value:.6g}s over {summary['count']:g} samples")
    if rule.kind in ("ratio_max", "ratio_min"):
        numerator = float(counters.get(rule.numerator, 0.0))
        denominator = sum(
            float(counters.get(name, 0.0)) for name in rule.denominator)
        if denominator <= 0:
            return SloResult(rule, True, None, "no samples")
        value = numerator / denominator
        ok = (value <= rule.max_ratio if rule.kind == "ratio_max"
              else value >= rule.min_ratio)
        return SloResult(
            rule, ok, value,
            f"ratio={value:.6g} ({numerator:g}/{denominator:g})")
    value = float(counters.get(rule.counter, 0.0))
    return SloResult(rule, value <= rule.max_value, value,
                     f"total={value:g}")


def evaluate_slos(rules: Sequence[SloRule],
                  snapshot: Dict[str, Dict]) -> SloReport:
    """Every rule's verdict against one registry snapshot."""
    return SloReport(results=[_evaluate_rule(rule, snapshot)
                              for rule in rules])
