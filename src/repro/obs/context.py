"""Request-scoped trace context: trace IDs and their propagation.

A *trace ID* names one logical request end to end — every span recorded
while a request is in flight carries the same 32-hex-char ID, whichever
thread or worker process records it, so an exported trace stitches into
per-request trees instead of one undifferentiated run.

Two propagation seams live here:

- **Inbound/outbound HTTP** — :func:`parse_traceparent` /
  :func:`format_traceparent` speak the W3C ``traceparent`` header
  (``00-<32 hex trace>-<16 hex span>-<2 hex flags>``), so the daemon
  honours a caller-minted trace and callers can follow the daemon's.
- **In-process** — :func:`trace_scope` binds a trace ID to the current
  thread; :class:`~repro.obs.tracer.Tracer` stamps it on every span
  pushed while the scope is open. The binding is thread-local, so
  concurrent daemon handler threads each trace their own request.

The CLI needs neither: ``repro --trace`` mints one root ID per
invocation and sets it as the session tracer's default, which every
span (local or grafted from a worker) inherits.
"""

from __future__ import annotations

import os
import re
import threading
from contextlib import contextmanager
from typing import Iterator, Optional

#: ``traceparent`` shape this module accepts (version 00, the only one
#: published): version - trace-id - parent span id - flags.
_TRACEPARENT = re.compile(
    r"^00-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$")

#: An all-zero trace ID is invalid per the W3C spec.
_ZERO_TRACE = "0" * 32

_local = threading.local()


def new_trace_id() -> str:
    """A fresh random 32-hex-char (128-bit) trace ID."""
    trace_id = os.urandom(16).hex()
    # Collision with the forbidden all-zero ID is a 2^-128 event, but
    # the spec says never emit it, so regenerate rather than hope.
    while trace_id == _ZERO_TRACE:  # pragma: no cover - astronomically rare
        trace_id = os.urandom(16).hex()
    return trace_id


def parse_traceparent(value: Optional[str]) -> Optional[str]:
    """The trace ID carried by a ``traceparent`` header, or None.

    Anything malformed (wrong version, bad lengths, uppercase hex, the
    all-zero trace) is rejected by returning None — the caller then
    mints a fresh ID, which is the failure mode the W3C spec asks for.
    """
    if not value or not isinstance(value, str):
        return None
    match = _TRACEPARENT.match(value.strip())
    if match is None:
        return None
    trace_id = match.group(1)
    if trace_id == _ZERO_TRACE or match.group(2) == "0" * 16:
        return None
    return trace_id


def format_traceparent(trace_id: str, span_id: int = 1) -> str:
    """A ``traceparent`` header value for ``trace_id``.

    ``span_id`` is the tracer's integer span ID for the request's root
    span, rendered into the 16-hex parent-id field. The default (1) is
    a filler for when tracing is disabled and no real span exists —
    spec-valid (the all-zero parent-id is forbidden), and the trace ID
    is the part callers correlate on anyway.
    """
    return f"00-{trace_id}-{span_id & (2 ** 64 - 1):016x}-01"


def current_trace_id() -> Optional[str]:
    """The trace ID bound to the current thread, or None."""
    return getattr(_local, "trace_id", None)


@contextmanager
def trace_scope(trace_id: Optional[str]) -> Iterator[Optional[str]]:
    """Bind ``trace_id`` to the current thread for the ``with`` body.

    Scopes nest (the previous binding is restored on exit) and binding
    None is allowed — it temporarily clears the thread's trace, which
    keeps the context manager usable unconditionally at call sites.
    """
    previous = getattr(_local, "trace_id", None)
    _local.trace_id = trace_id
    try:
        yield trace_id
    finally:
        _local.trace_id = previous
