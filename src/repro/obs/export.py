"""JSONL trace export: one finished span per line.

Line schema (stable; covered by unit tests and documented in README):

    {"name": str, "span_id": int, "parent": int | null,
     "trace_id": str | null, "start": float, "duration": float,
     "attrs": {…}}

``start`` is monotonic seconds since the tracer's epoch, ``duration`` is
seconds inside the span, ``parent`` links a nested span to its enclosing
span's ``span_id``, and ``trace_id`` groups every span of one logical
request (or one CLI invocation) under a shared 32-hex-char ID. Lines
are ordered by ``start``.

Durability: writes go through a temp file in the destination directory
plus ``os.replace`` (the same crash-safety idiom as the engine cache),
so a killed process leaves at worst a stale ``.tmp`` file — never a
half-written trace a later reader would choke on. When ``rotate_bytes``
is set, an existing file at the destination is rotated aside
(``trace.jsonl`` → ``trace.jsonl.1`` → … up to ``keep`` generations)
instead of silently clobbered once the combined size would exceed the
bound, so a daemon that exports on every shutdown cannot grow one
unbounded trace file.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List

from repro.obs.tracer import Tracer

#: Keys every exported trace line carries.
SPAN_RECORD_KEYS = ("name", "span_id", "parent", "trace_id", "start",
                    "duration", "attrs")


def _sanitise(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce attribute values to JSON-safe scalars."""
    out: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out


def span_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """One span's export dict with JSON-safe attribute values."""
    record = dict(record)
    record["attrs"] = _sanitise(record.get("attrs", {}))
    return record


def trace_lines(tracer: Tracer) -> List[str]:
    """The JSONL lines (without newlines) for every finished span."""
    return [json.dumps(span_record(record), sort_keys=True)
            for record in tracer.records()]


def rotate_files(path: str, keep: int = 3) -> None:
    """Shift ``path`` into numbered generations (``path.1`` newest).

    ``path.<keep>`` falls off the end; each younger generation moves up
    one slot; the live file becomes ``path.1``. Missing generations are
    skipped silently, so rotation is safe to call on any state.
    """
    if keep < 1:
        try:
            os.remove(path)
        except FileNotFoundError:
            pass
        return
    try:
        os.remove(f"{path}.{keep}")
    except FileNotFoundError:
        pass
    for gen in range(keep - 1, 0, -1):
        try:
            os.replace(f"{path}.{gen}", f"{path}.{gen + 1}")
        except FileNotFoundError:
            continue
    try:
        os.replace(path, f"{path}.1")
    except FileNotFoundError:
        pass


def write_jsonl_lines(lines: List[str], path: str) -> int:
    """Atomically write ``lines`` (one JSON doc each) to ``path``.

    The temp file lands in the destination directory so ``os.replace``
    is a same-filesystem rename: readers see either the old complete
    file or the new complete file, never a partial write.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.remove(tmp_path)
        except OSError:  # pragma: no cover - already gone
            pass
        raise
    return len(lines)


def write_jsonl(tracer: Tracer, path: str,
                rotate_bytes: int = 0, keep: int = 3) -> int:
    """Write the trace to ``path``; returns the number of spans written.

    With ``rotate_bytes > 0`` an existing file at ``path`` is rotated
    aside first whenever keeping both would exceed the bound, so
    repeated exports accumulate bounded history instead of either
    clobbering the previous trace or growing without limit.
    """
    lines = trace_lines(tracer)
    if rotate_bytes > 0:
        try:
            existing = os.path.getsize(path)
        except OSError:
            existing = 0
        payload = sum(len(line) + 1 for line in lines)
        if existing and existing + payload > rotate_bytes:
            rotate_files(path, keep=keep)
    return write_jsonl_lines(lines, path)


def read_jsonl(path: str,
               include_rotated: bool = False) -> List[Dict[str, Any]]:
    """Parse a trace file back into span records (the export inverse).

    With ``include_rotated`` the numbered generations next to ``path``
    are read too, oldest first, so a rotated export reads back as one
    continuous record stream.
    """
    paths = [path]
    if include_rotated:
        generation = 1
        older = []
        while os.path.exists(f"{path}.{generation}"):
            older.append(f"{path}.{generation}")
            generation += 1
        paths = list(reversed(older)) + paths
    records = []
    for part in paths:
        with open(part, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
    return records
