"""JSONL trace export: one finished span per line.

Line schema (stable; covered by unit tests and documented in README):

    {"name": str, "span_id": int, "parent": int | null,
     "start": float, "duration": float, "attrs": {…}}

``start`` is monotonic seconds since the tracer's epoch, ``duration`` is
seconds inside the span, and ``parent`` links a nested span to its
enclosing span's ``span_id``. Lines are ordered by ``start``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.tracer import Tracer

#: Keys every exported trace line carries.
SPAN_RECORD_KEYS = ("name", "span_id", "parent", "start", "duration", "attrs")


def _sanitise(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce attribute values to JSON-safe scalars."""
    out: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out


def trace_lines(tracer: Tracer) -> List[str]:
    """The JSONL lines (without newlines) for every finished span."""
    lines = []
    for record in tracer.records():
        record["attrs"] = _sanitise(record["attrs"])
        lines.append(json.dumps(record, sort_keys=True))
    return lines


def write_jsonl(tracer: Tracer, path: str) -> int:
    """Write the trace to ``path``; returns the number of spans written."""
    lines = trace_lines(tracer)
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse a trace file back into span records (the export inverse)."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
