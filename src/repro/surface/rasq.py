"""Relative Attack Surface Quotient (Howard, Pincus, Wing [41]).

RASQ measures a system's "attackability" as a weighted sum over attack
vectors: resources available to an attacker, communication channels, and
access rights. As Howard et al. stress, the score is *relative* — it only
orders systems, never certifies one — which is exactly how the paper uses
it: one more noisy-but-informative feature (§4.1).

We derive the attack-vector instances from static analysis of the
codebase: network/file/process/environment channel usage comes from call
sites of the corresponding APIs, and the method dimension comes from the
publicly visible functions the parser recovers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.lang.parser import extract_functions
from repro.lang.sourcefile import Codebase
from repro.lang.tokens import TokenKind

#: Channel classes with their RASQ attackability weights. Weights follow the
#: published RASQ intuition: remotely reachable, unauthenticated channels
#: weigh most; local-only resources weigh least.
CHANNEL_WEIGHTS: Dict[str, float] = {
    "network": 1.0,
    "rpc": 0.9,
    "process_spawn": 0.8,
    "file_write": 0.6,
    "file_read": 0.4,
    "environment": 0.3,
    "registry_config": 0.3,
}

#: API names that evidence each channel class, across the four languages.
CHANNEL_APIS: Dict[str, frozenset] = {
    "network": frozenset(
        {"socket", "bind", "listen", "accept", "connect", "recv", "recvfrom",
         "send", "sendto", "ServerSocket", "HttpServer", "urlopen",
         "requests", "listen_and_serve"}
    ),
    "rpc": frozenset({"rpc_register", "xmlrpc", "grpc", "RemoteObject", "rmi"}),
    "process_spawn": frozenset(
        {"system", "popen", "exec", "execl", "execlp", "execv", "execvp",
         "fork", "CreateProcess", "ProcessBuilder", "subprocess", "spawn"}
    ),
    "file_write": frozenset(
        {"fopen", "open", "fwrite", "write", "ofstream", "FileWriter",
         "FileOutputStream"}
    ),
    "file_read": frozenset(
        {"fread", "read", "ifstream", "FileReader", "FileInputStream",
         "readlines"}
    ),
    "environment": frozenset({"getenv", "setenv", "putenv", "environ", "Env"}),
    "registry_config": frozenset(
        {"RegOpenKey", "RegSetValue", "config_read", "load_config",
         "ConfigParser", "Properties"}
    ),
}

#: Weight of one externally visible (public) entry-point method.
PUBLIC_METHOD_WEIGHT = 0.2
#: Weight of one elevated-privilege indicator (setuid etc.).
PRIVILEGE_WEIGHT = 1.5

_PRIVILEGE_APIS = frozenset(
    {"setuid", "seteuid", "setgid", "setcap", "CAP_SYS_ADMIN", "sudo",
     "AdjustTokenPrivileges"}
)


@dataclass(frozen=True)
class AttackSurface:
    """Attack-surface breakdown of one codebase."""

    channel_counts: Dict[str, int]
    n_public_methods: int
    n_privilege_sites: int

    @property
    def rasq(self) -> float:
        """The Relative Attack Surface Quotient."""
        score = sum(
            CHANNEL_WEIGHTS[channel] * count
            for channel, count in self.channel_counts.items()
        )
        score += PUBLIC_METHOD_WEIGHT * self.n_public_methods
        score += PRIVILEGE_WEIGHT * self.n_privilege_sites
        return score

    @property
    def network_facing(self) -> bool:
        """Whether any network channel is present (feeds the AV=N hypothesis)."""
        return self.channel_counts.get("network", 0) > 0


def measure_file(source, code_tokens=None, functions=None) -> AttackSurface:
    """The :class:`AttackSurface` contribution of one file.

    ``code_tokens``/``functions`` let the analysis artifact supply its
    cached views; the scan itself is unchanged.
    """
    channel_counts = {channel: 0 for channel in CHANNEL_WEIGHTS}
    privilege = 0
    tokens = (
        [t for t in source.tokens if t.is_code()]
        if code_tokens is None
        else code_tokens
    )
    for i, tok in enumerate(tokens):
        if tok.kind != TokenKind.IDENT:
            continue
        is_call = i + 1 < len(tokens) and tokens[i + 1].text == "("
        name = tok.text
        if name in _PRIVILEGE_APIS:
            privilege += 1
            continue
        if not is_call:
            continue
        for channel, apis in CHANNEL_APIS.items():
            if name in apis:
                channel_counts[channel] += 1
                break
    if functions is None:
        functions = extract_functions(source)
    public_methods = sum(1 for f in functions if f.is_public)
    return AttackSurface(
        channel_counts=channel_counts,
        n_public_methods=public_methods,
        n_privilege_sites=privilege,
    )


def measure_codebase(codebase: Codebase, artifacts=None) -> AttackSurface:
    """Compute the :class:`AttackSurface` of ``codebase``.

    A channel instance is a call site of one of the channel's APIs; each
    public function counts toward the method dimension. ``artifacts`` maps
    paths to per-file analysis artifacts (``.code_tokens``/``.functions``)
    so the scan reuses the shared parse.
    """
    channel_counts = {channel: 0 for channel in CHANNEL_WEIGHTS}
    privilege = 0
    public_methods = 0
    for source in codebase:
        art = artifacts.get(source.path) if artifacts is not None else None
        surface = measure_file(
            source,
            art.code_tokens if art is not None else None,
            art.functions if art is not None else None,
        )
        for channel, count in surface.channel_counts.items():
            channel_counts[channel] += count
        privilege += surface.n_privilege_sites
        public_methods += surface.n_public_methods
    return AttackSurface(
        channel_counts=channel_counts,
        n_public_methods=public_methods,
        n_privilege_sites=privilege,
    )


def relative_quotient(a: Codebase, b: Codebase) -> float:
    """RASQ of ``a`` relative to ``b`` (>1 means ``a`` is more attackable).

    Howard et al. define RASQ only as a comparison between systems; this
    helper makes that explicit.
    """
    rasq_a = measure_codebase(a).rasq
    rasq_b = measure_codebase(b).rasq
    if rasq_b == 0:
        return float("inf") if rasq_a > 0 else 1.0
    return rasq_a / rasq_b
