"""Attack-graph generation and analysis (Sheyner et al. [60]).

The paper proposes estimating "how difficult it is to attack a program by
building an attack-graph" (§4.1). An attack graph's nodes are attacker
states (sets of acquired privileges); edges are exploit applications whose
preconditions the state satisfies. We generate the graph by forward
exploration from an initial state and derive difficulty metrics: shortest
attack path to the goal, number of minimal attack paths, and mean exploit
complexity along them.

Exploits can be declared directly or derived from a codebase's statically
observed properties (network channels, dangerous calls, privilege sites),
which is how the testbed turns a :class:`~repro.lang.sourcefile.Codebase`
into attack-difficulty features.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.lang.sourcefile import Codebase
from repro.surface.rasq import AttackSurface, measure_codebase as _surface


@dataclass(frozen=True)
class Exploit:
    """One exploit template.

    Attributes:
        name: unique identifier.
        preconditions: privileges the attacker must already hold.
        postconditions: privileges gained by running the exploit.
        complexity: attack complexity in [0, 1]; higher is harder (mirrors
            CVSS AC).
    """

    name: str
    preconditions: FrozenSet[str]
    postconditions: FrozenSet[str]
    complexity: float = 0.5

    def applicable(self, state: FrozenSet[str]) -> bool:
        """True if ``state`` satisfies the preconditions and adds something."""
        return self.preconditions <= state and not self.postconditions <= state


class AttackGraph:
    """Forward-generated attack graph over privilege states."""

    def __init__(
        self,
        exploits: Iterable[Exploit],
        initial: Iterable[str] = ("remote",),
        goal: str = "root",
        max_states: int = 4096,
    ):
        self.exploits = list(exploits)
        self.initial: FrozenSet[str] = frozenset(initial)
        self.goal = goal
        # A multigraph: two different exploits between the same pair of
        # states are two different attack steps and must stay distinct.
        self.graph = nx.MultiDiGraph()
        self._generate(max_states)

    def _generate(self, max_states: int) -> None:
        frontier: List[FrozenSet[str]] = [self.initial]
        self.graph.add_node(self.initial)
        seen: Set[FrozenSet[str]] = {self.initial}
        while frontier:
            state = frontier.pop()
            for exploit in self.exploits:
                if not exploit.applicable(state):
                    continue
                nxt = frozenset(state | exploit.postconditions)
                if nxt not in seen and len(seen) >= max_states:
                    continue
                self.graph.add_edge(
                    state, nxt, key=exploit.name,
                    exploit=exploit.name, complexity=exploit.complexity,
                )
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)

    # -- queries ------------------------------------------------------------

    def goal_states(self) -> List[FrozenSet[str]]:
        """States in which the attacker holds the goal privilege."""
        return [s for s in self.graph.nodes if self.goal in s]

    @property
    def goal_reachable(self) -> bool:
        """Whether any goal state is reachable from the initial state."""
        return bool(self.goal_states())

    def shortest_attack_path(self) -> Optional[List[str]]:
        """Exploit names along a minimum-length path to the goal, or None."""
        best: Optional[List[str]] = None
        for goal in self.goal_states():
            try:
                nodes = nx.shortest_path(self.graph, self.initial, goal)
            except nx.NetworkXNoPath:
                continue
            exploits = []
            for u, v in zip(nodes, nodes[1:]):
                # Prefer the cheapest of any parallel exploit steps.
                parallel = self.graph[u][v]
                key = min(parallel, key=lambda k: parallel[k]["complexity"])
                exploits.append(parallel[key]["exploit"])
            if best is None or len(exploits) < len(best):
                best = exploits
        return best

    def attack_path_count(self, cap: int = 10**6) -> int:
        """Number of simple attack paths from initial to any goal state.

        Parallel exploits between the same states count as distinct paths
        (edge paths, not node paths).
        """
        count = 0
        for goal in self.goal_states():
            for _ in nx.all_simple_edge_paths(self.graph, self.initial, goal):
                count += 1
                if count >= cap:
                    return cap
        return count

    def cheapest_attack_cost(self) -> Optional[float]:
        """Minimum summed complexity over paths to the goal, or None."""
        best: Optional[float] = None
        for goal in self.goal_states():
            try:
                cost = nx.shortest_path_length(
                    self.graph, self.initial, goal, weight="complexity"
                )
            except nx.NetworkXNoPath:
                continue
            if best is None or cost < best:
                best = cost
        return best

    # -- defender analysis (Sheyner's use case) -----------------------------

    def _reaches_goal_without(self, removed: FrozenSet[str]) -> bool:
        """Whether the goal stays reachable after patching ``removed``."""
        pruned = nx.MultiDiGraph()
        pruned.add_nodes_from(self.graph.nodes)
        for u, v, key in self.graph.edges(keys=True):
            if key not in removed:
                pruned.add_edge(u, v, key=key)
        return any(
            nx.has_path(pruned, self.initial, goal)
            for goal in self.goal_states()
        )

    def critical_exploits(self) -> Optional[FrozenSet[str]]:
        """A minimum set of exploits whose removal protects the goal.

        Sheyner et al.'s defender question: which vulnerabilities must be
        patched to make the goal unreachable? Exact search over exploit
        subsets by increasing size — exploit sets derived from code
        surfaces are small (< 10), so this stays cheap. Returns None when
        the goal is already unreachable.
        """
        if not self.goal_reachable:
            return None
        from itertools import combinations

        names = sorted({e.name for e in self.exploits})
        for size in range(1, len(names) + 1):
            for subset in combinations(names, size):
                if not self._reaches_goal_without(frozenset(subset)):
                    return frozenset(subset)
        return frozenset(names)

    def single_points_of_failure(self) -> List[str]:
        """Exploits whose individual removal already protects the goal."""
        if not self.goal_reachable:
            return []
        return sorted(
            name
            for name in {e.name for e in self.exploits}
            if not self._reaches_goal_without(frozenset({name}))
        )


@dataclass(frozen=True)
class AttackGraphMetrics:
    """Attack-difficulty features derived from the attack graph."""

    n_states: int
    n_transitions: int
    goal_reachable: bool
    shortest_path_length: int  # 0 when unreachable
    attack_paths: int
    cheapest_cost: float  # inf when unreachable


def exploits_from_surface(surface: AttackSurface) -> List[Exploit]:
    """Derive an exploit set from statically observed code properties.

    The mapping encodes standard escalation chains: a network channel
    admits remote entry; spawn/exec sites admit code execution; privilege
    sites admit escalation to root; file writes admit persistence. Channel
    counts lower the modelled complexity (more instances, easier attack),
    matching RASQ's "more surface, more attackable" premise.
    """

    def ease(count: int, base: float) -> float:
        # Each extra instance shaves complexity, floor 0.1.
        return max(0.1, base - 0.05 * max(count - 1, 0))

    exploits: List[Exploit] = []
    channels = surface.channel_counts
    if channels.get("network", 0) > 0:
        exploits.append(
            Exploit(
                "remote-entry",
                frozenset({"remote"}),
                frozenset({"user"}),
                ease(channels["network"], 0.7),
            )
        )
    if channels.get("file_read", 0) > 0 or channels.get("environment", 0) > 0:
        exploits.append(
            Exploit(
                "local-input-entry",
                frozenset({"local"}),
                frozenset({"user"}),
                ease(channels.get("file_read", 0) + channels.get("environment", 0), 0.5),
            )
        )
    if channels.get("process_spawn", 0) > 0:
        exploits.append(
            Exploit(
                "command-injection",
                frozenset({"user"}),
                frozenset({"exec"}),
                ease(channels["process_spawn"], 0.6),
            )
        )
    if surface.n_privilege_sites > 0:
        exploits.append(
            Exploit(
                "privilege-escalation",
                frozenset({"exec"}),
                frozenset({"root"}),
                ease(surface.n_privilege_sites, 0.8),
            )
        )
    if channels.get("file_write", 0) > 0:
        exploits.append(
            Exploit(
                "config-overwrite",
                frozenset({"user"}),
                frozenset({"persist"}),
                ease(channels["file_write"], 0.5),
            )
        )
        exploits.append(
            Exploit(
                "persisted-escalation",
                frozenset({"persist", "exec"}),
                frozenset({"root"}),
                0.9,
            )
        )
    return exploits


def measure_codebase(
    codebase: Codebase,
    initial: Iterable[str] = ("remote", "local"),
    goal: str = "root",
    artifacts=None,
) -> AttackGraphMetrics:
    """Build the codebase's attack graph and summarise its difficulty.

    ``artifacts`` is forwarded to the attack-surface scan so it reuses
    the shared per-file analysis artifacts.
    """
    surface = _surface(codebase, artifacts)
    graph = AttackGraph(exploits_from_surface(surface), initial, goal)
    shortest = graph.shortest_attack_path()
    cheapest = graph.cheapest_attack_cost()
    return AttackGraphMetrics(
        n_states=graph.graph.number_of_nodes(),
        n_transitions=graph.graph.number_of_edges(),
        goal_reachable=graph.goal_reachable,
        shortest_path_length=len(shortest) if shortest else 0,
        attack_paths=graph.attack_path_count(),
        cheapest_cost=cheapest if cheapest is not None else float("inf"),
    )
