"""Attack-surface substrate: RASQ [41] and attack graphs [60]."""

from repro.surface.attack_graph import (
    AttackGraph,
    AttackGraphMetrics,
    Exploit,
    exploits_from_surface,
)
from repro.surface.rasq import (
    CHANNEL_APIS,
    CHANNEL_WEIGHTS,
    AttackSurface,
    relative_quotient,
)
from repro.surface import attack_graph, rasq

__all__ = [
    "AttackGraph",
    "AttackGraphMetrics",
    "AttackSurface",
    "CHANNEL_APIS",
    "CHANNEL_WEIGHTS",
    "Exploit",
    "attack_graph",
    "exploits_from_surface",
    "rasq",
    "relative_quotient",
]
