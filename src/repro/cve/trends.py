"""Vulnerability-history dynamics: rates, maturity, convergence.

§5.1 selects applications with "a converging history of vulnerability
reporting" — code that "has been maintained and debugged for decades"
versus "relatively immature" projects. A span check (>= 5 years) is the
paper's operationalisation; this module implements the underlying notion:
the report-*rate* timeline, an exponential trend on it, and a maturity
index that distinguishes a project whose reporting is settling down from
one still accelerating.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.cve.database import DAYS_PER_YEAR, CVEDatabase
from repro.cve.records import CVERecord
from repro.stats.regression import RegressionError, fit_linear


@dataclass(frozen=True)
class HistoryTrend:
    """Report-rate dynamics for one application."""

    app: str
    n_reports: int
    span_years: float
    mean_rate: float  # reports per year over the span
    #: Exponential trend of the yearly rate: rate ~ exp(slope * year).
    #: Negative slope = reporting is decaying (project maturing).
    rate_trend: float
    #: Share of reports in the second half of the history window.
    late_share: float

    @property
    def is_converging(self) -> bool:
        """Converging = long-lived and not accelerating.

        Matches the paper's intuition: enough history to trust, and the
        reporting rate is flat or decaying rather than still ramping up.
        """
        return self.span_years >= 5.0 and self.rate_trend <= 0.25

    @property
    def maturity_index(self) -> float:
        """[0, 1]; higher = longer history with more front-loaded reports.

        0.5 * span saturation (20-year scale) + 0.5 * front-loading.
        """
        span_part = min(self.span_years / 20.0, 1.0)
        front_part = 1.0 - self.late_share
        return 0.5 * span_part + 0.5 * front_part


def yearly_counts(records: Sequence[CVERecord]) -> List[Tuple[int, int]]:
    """(year-index, count) pairs over the app's history window."""
    if not records:
        return []
    days = [r.day for r in records]
    start = min(days)
    buckets = {}
    for day in days:
        year = int((day - start) / DAYS_PER_YEAR)
        buckets[year] = buckets.get(year, 0) + 1
    last = int((max(days) - start) / DAYS_PER_YEAR)
    return [(year, buckets.get(year, 0)) for year in range(last + 1)]


def analyse(db: CVEDatabase, app: str) -> HistoryTrend:
    """Compute the :class:`HistoryTrend` for one application."""
    records = db.records_for(app)
    n = len(records)
    span_years = db.history_years(app)
    if n == 0:
        return HistoryTrend(app, 0, 0.0, 0.0, 0.0, 0.0)
    mean_rate = n / span_years if span_years > 0 else float(n)

    counts = yearly_counts(records)
    rate_trend = 0.0
    if len(counts) >= 3:
        try:
            # log(1 + count) regression on year index: slope in log space
            # is the exponential growth/decay rate of reporting.
            fit = fit_linear(
                [y for y, _ in counts],
                [math.log1p(c) for _, c in counts],
            )
            rate_trend = fit.slope
        except RegressionError:
            rate_trend = 0.0

    days = [r.day for r in records]
    midpoint = (min(days) + max(days)) / 2.0
    late = sum(1 for d in days if d > midpoint)
    late_share = late / n

    return HistoryTrend(
        app=app,
        n_reports=n,
        span_years=span_years,
        mean_rate=mean_rate,
        rate_trend=rate_trend,
        late_share=late_share,
    )


def select_converging(db: CVEDatabase) -> List[str]:
    """Applications with converging histories under the trend definition.

    Stricter than :meth:`CVEDatabase.select_converging` (which is the
    span-only rule the paper states): this also requires the reporting
    rate to have stopped accelerating.
    """
    return [app for app in db.apps if analyse(db, app).is_converging]


def rank_by_maturity(db: CVEDatabase) -> List[HistoryTrend]:
    """All applications, most mature first."""
    trends = [analyse(db, app) for app in db.apps]
    trends.sort(key=lambda t: -t.maturity_index)
    return trends
