"""Common Weakness Enumeration taxonomy subset [4, 6].

A curated subset of the CWE hierarchy covering the weakness classes the
paper's hypotheses and our bug-finding tools reference (stack buffer
overflow CWE-121 is called out explicitly in §5.2). Entries carry their
parent link so hypothesis queries can match a class *or any descendant*
("does this app suffer any memory-safety weakness?").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple


@dataclass(frozen=True)
class CweEntry:
    """One CWE weakness type."""

    cwe_id: int
    name: str
    parent: Optional[int]  # immediate parent in the simplified hierarchy
    category: str  # coarse bucket used for feature aggregation


_ENTRIES: Tuple[CweEntry, ...] = (
    # Memory safety
    CweEntry(119, "Improper Restriction of Operations within Memory Buffer", None, "memory"),
    CweEntry(120, "Buffer Copy without Checking Size of Input", 119, "memory"),
    CweEntry(121, "Stack-based Buffer Overflow", 120, "memory"),
    CweEntry(122, "Heap-based Buffer Overflow", 120, "memory"),
    CweEntry(125, "Out-of-bounds Read", 119, "memory"),
    CweEntry(787, "Out-of-bounds Write", 119, "memory"),
    CweEntry(416, "Use After Free", 119, "memory"),
    CweEntry(415, "Double Free", 119, "memory"),
    CweEntry(476, "NULL Pointer Dereference", None, "memory"),
    CweEntry(190, "Integer Overflow or Wraparound", None, "numeric"),
    CweEntry(191, "Integer Underflow", 190, "numeric"),
    CweEntry(242, "Use of Inherently Dangerous Function", None, "memory"),
    # Injection
    CweEntry(74, "Injection", None, "injection"),
    CweEntry(77, "Command Injection", 74, "injection"),
    CweEntry(78, "OS Command Injection", 77, "injection"),
    CweEntry(79, "Cross-site Scripting", 74, "injection"),
    CweEntry(89, "SQL Injection", 74, "injection"),
    CweEntry(94, "Code Injection", 74, "injection"),
    CweEntry(95, "Eval Injection", 94, "injection"),
    CweEntry(134, "Uncontrolled Format String", 74, "injection"),
    # Crypto / secrets
    CweEntry(310, "Cryptographic Issues", None, "crypto"),
    CweEntry(327, "Use of Broken Crypto Algorithm", 310, "crypto"),
    CweEntry(330, "Use of Insufficiently Random Values", 310, "crypto"),
    CweEntry(338, "Use of Cryptographically Weak PRNG", 330, "crypto"),
    CweEntry(798, "Use of Hard-coded Credentials", None, "crypto"),
    CweEntry(321, "Use of Hard-coded Cryptographic Key", 798, "crypto"),
    # Access / privilege
    CweEntry(264, "Permissions, Privileges, and Access Controls", None, "access"),
    CweEntry(269, "Improper Privilege Management", 264, "access"),
    CweEntry(284, "Improper Access Control", 264, "access"),
    CweEntry(287, "Improper Authentication", 264, "access"),
    CweEntry(306, "Missing Authentication for Critical Function", 287, "access"),
    CweEntry(732, "Incorrect Permission Assignment", 264, "access"),
    # Resource / state
    CweEntry(362, "Race Condition", None, "state"),
    CweEntry(367, "Time-of-check Time-of-use Race", 362, "state"),
    CweEntry(400, "Uncontrolled Resource Consumption", None, "state"),
    CweEntry(401, "Memory Leak", 400, "state"),
    CweEntry(390, "Detection of Error Without Action", None, "state"),
    CweEntry(377, "Insecure Temporary File", None, "state"),
    CweEntry(617, "Reachable Assertion", None, "state"),
    # Input validation / info leak
    CweEntry(20, "Improper Input Validation", None, "input"),
    CweEntry(22, "Path Traversal", 20, "input"),
    CweEntry(200, "Information Exposure", None, "info"),
    CweEntry(209, "Information Exposure Through Error Message", 200, "info"),
    CweEntry(352, "Cross-Site Request Forgery", None, "input"),
    CweEntry(611, "XML External Entity Reference", 20, "input"),
    CweEntry(502, "Deserialization of Untrusted Data", 20, "input"),
)

_BY_ID: Dict[int, CweEntry] = {e.cwe_id: e for e in _ENTRIES}

#: All CWE ids in the subset, ascending.
ALL_CWE_IDS: Tuple[int, ...] = tuple(sorted(_BY_ID))

#: Coarse categories used as feature-aggregation buckets.
CATEGORIES: Tuple[str, ...] = tuple(
    sorted({e.category for e in _ENTRIES})
)


class UnknownCweError(KeyError):
    """Raised when a CWE id is not in the curated subset."""


def get(cwe_id: int) -> CweEntry:
    """Fetch a CWE entry; raises :class:`UnknownCweError` if absent."""
    try:
        return _BY_ID[cwe_id]
    except KeyError:
        raise UnknownCweError(cwe_id) from None


def exists(cwe_id: int) -> bool:
    """Whether ``cwe_id`` is in the curated subset."""
    return cwe_id in _BY_ID


def ancestors(cwe_id: int) -> List[int]:
    """Chain of parents from ``cwe_id`` (exclusive) to a root."""
    out: List[int] = []
    entry = get(cwe_id)
    while entry.parent is not None:
        out.append(entry.parent)
        entry = get(entry.parent)
    return out


def is_a(cwe_id: int, ancestor_id: int) -> bool:
    """True if ``cwe_id`` equals or descends from ``ancestor_id``."""
    return cwe_id == ancestor_id or ancestor_id in ancestors(cwe_id)


def category_of(cwe_id: int) -> str:
    """Coarse category bucket for a CWE id."""
    return get(cwe_id).category


def in_category(category: str) -> FrozenSet[int]:
    """All CWE ids in a coarse category."""
    if category not in CATEGORIES:
        raise UnknownCweError(category)
    return frozenset(e.cwe_id for e in _ENTRIES if e.category == category)
