"""CVSS-aggregation security metric (Wang et al. [67]) — a baseline.

Wang et al. "combine the CVSS score of all the known CVE reports of a
software, to assign a final security metric score". The paper's critique
(§3.2): the aggregate ignores *unknown* vulnerabilities and uses no signal
beyond CVSS. We implement it faithfully so the benchmarks can compare the
trained model against it (experiment A2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.cve.database import CVEDatabase


@dataclass(frozen=True)
class AggregateScore:
    """Wang-style aggregate of an application's known-CVE scores."""

    app: str
    n_reports: int
    sum_score: float
    mean_score: float
    #: Probabilistic union: 1 - prod(1 - score/10); reads as "chance at
    #: least one known flaw is exploitable" under independence.
    union_score: float

    @property
    def risk_rank_key(self) -> float:
        """Higher means riskier (used to order candidate programs)."""
        return self.union_score * math.log1p(self.n_reports)


def score_app(db: CVEDatabase, app: str) -> AggregateScore:
    """Compute the Wang-style aggregate for one application."""
    records = db.records_for(app)
    scores = [r.score for r in records]
    survival = 1.0
    for s in scores:
        survival *= 1.0 - min(s, 10.0) / 10.0
    return AggregateScore(
        app=app,
        n_reports=len(scores),
        sum_score=sum(scores),
        mean_score=sum(scores) / len(scores) if scores else 0.0,
        union_score=1.0 - survival,
    )


def rank_apps(db: CVEDatabase, apps: List[str]) -> List[AggregateScore]:
    """Rank applications from riskiest to safest by the aggregate metric."""
    scored = [score_app(db, app) for app in apps]
    scored.sort(key=lambda a: a.risk_rank_key, reverse=True)
    return scored
