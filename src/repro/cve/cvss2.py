"""CVSS v2 vectors and scoring.

The paper's corpus spans CVE history back to the late 1990s; the NVD
scored everything before December 2015 with CVSS v2, so a faithful CVE
substrate needs both generations. This implements the v2 base and
temporal equations exactly (AV/AC/Au and partial/complete impacts), plus
a conversion helper that maps a v2 vector onto the nearest v3 metrics so
mixed-era histories can be analysed uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cve.cvss import CvssError, CvssV3

__all__ = ["CvssV2", "v2_to_v3"]

_AV2 = {"N": 1.0, "A": 0.646, "L": 0.395}
_AC2 = {"L": 0.71, "M": 0.61, "H": 0.35}
_AU2 = {"N": 0.704, "S": 0.56, "M": 0.45}
_IMPACT2 = {"C": 0.660, "P": 0.275, "N": 0.0}
_E2 = {"ND": 1.0, "H": 1.0, "F": 0.95, "POC": 0.9, "U": 0.85}
_RL2 = {"ND": 1.0, "U": 1.0, "W": 0.95, "TF": 0.9, "OF": 0.87}
_RC2 = {"ND": 1.0, "C": 1.0, "UR": 0.95, "UC": 0.9}

_REQUIRED2 = ("AV", "AC", "Au", "C", "I", "A")


def _round1(value: float) -> float:
    """Round to one decimal, the v2 spec's convention."""
    return round(value + 1e-9, 1)


@dataclass(frozen=True)
class CvssV2:
    """A parsed CVSS v2 vector, e.g. ``AV:N/AC:L/Au:N/C:P/I:P/A:P``."""

    access_vector: str  # AV: N/A/L
    access_complexity: str  # AC: L/M/H
    authentication: str  # Au: N/S/M
    confidentiality: str  # C/P/N impacts
    integrity: str
    availability: str
    exploitability: str = "ND"  # E
    remediation_level: str = "ND"  # RL
    report_confidence: str = "ND"  # RC

    def __post_init__(self) -> None:
        checks = (
            (self.access_vector, _AV2, "AV"),
            (self.access_complexity, _AC2, "AC"),
            (self.authentication, _AU2, "Au"),
            (self.confidentiality, _IMPACT2, "C"),
            (self.integrity, _IMPACT2, "I"),
            (self.availability, _IMPACT2, "A"),
            (self.exploitability, _E2, "E"),
            (self.remediation_level, _RL2, "RL"),
            (self.report_confidence, _RC2, "RC"),
        )
        for value, table, name in checks:
            if value not in table:
                raise CvssError(f"invalid v2 {name} value: {value!r}")

    @classmethod
    def parse(cls, vector: str) -> "CvssV2":
        """Parse a v2 vector (optionally wrapped in parentheses)."""
        body = vector.strip().strip("()")
        if body.startswith("CVSS2#"):
            body = body[len("CVSS2#"):]
        metrics: Dict[str, str] = {}
        for part in body.split("/"):
            if ":" not in part:
                raise CvssError(f"malformed v2 metric {part!r} in {vector!r}")
            key, value = part.split(":", 1)
            if key in metrics:
                raise CvssError(f"duplicate v2 metric {key!r}")
            metrics[key] = value
        missing = [m for m in _REQUIRED2 if m not in metrics]
        if missing:
            raise CvssError(f"v2 vector {vector!r} missing {missing}")
        return cls(
            access_vector=metrics["AV"],
            access_complexity=metrics["AC"],
            authentication=metrics["Au"],
            confidentiality=metrics["C"],
            integrity=metrics["I"],
            availability=metrics["A"],
            exploitability=metrics.get("E", "ND"),
            remediation_level=metrics.get("RL", "ND"),
            report_confidence=metrics.get("RC", "ND"),
        )

    def vector(self) -> str:
        """Canonical base-vector string."""
        return (
            f"AV:{self.access_vector}/AC:{self.access_complexity}"
            f"/Au:{self.authentication}/C:{self.confidentiality}"
            f"/I:{self.integrity}/A:{self.availability}"
        )

    # -- scoring (v2 spec section 3.2.1) -----------------------------------

    @property
    def impact_subscore(self) -> float:
        """10.41 * (1 - (1-C)(1-I)(1-A))."""
        return 10.41 * (
            1.0
            - (1.0 - _IMPACT2[self.confidentiality])
            * (1.0 - _IMPACT2[self.integrity])
            * (1.0 - _IMPACT2[self.availability])
        )

    @property
    def exploitability_subscore(self) -> float:
        """20 * AV * AC * Au."""
        return (
            20.0
            * _AV2[self.access_vector]
            * _AC2[self.access_complexity]
            * _AU2[self.authentication]
        )

    @property
    def base_score(self) -> float:
        """((0.6*I) + (0.4*E) - 1.5) * f(I), rounded to one decimal."""
        impact = self.impact_subscore
        f_impact = 0.0 if impact == 0.0 else 1.176
        raw = (0.6 * impact + 0.4 * self.exploitability_subscore - 1.5)
        return _round1(raw * f_impact)

    @property
    def temporal_score(self) -> float:
        """Base modulated by E, RL, RC."""
        return _round1(
            self.base_score
            * _E2[self.exploitability]
            * _RL2[self.remediation_level]
            * _RC2[self.report_confidence]
        )

    @property
    def severity(self) -> str:
        """NVD's v2 severity bands: low < 4.0 <= medium < 7.0 <= high."""
        score = self.base_score
        if score < 4.0:
            return "LOW"
        if score < 7.0:
            return "MEDIUM"
        return "HIGH"


def v2_to_v3(v2: CvssV2) -> CvssV3:
    """Best-effort mapping of a v2 vector onto v3 metrics.

    Follows the common NVD rescoring heuristics: v2 Adjacent/Local map
    directly; v2 ``AC:M`` maps to v3 ``AC:L`` with ``UI:R`` (the usual
    reason v2 called it medium); authentication maps to privileges;
    Partial impacts map to Low. Scope is always Unchanged (v2 had no
    scope concept).
    """
    ac = "L" if v2.access_complexity in ("L", "M") else "H"
    ui = "R" if v2.access_complexity == "M" else "N"
    pr = {"N": "N", "S": "L", "M": "H"}[v2.authentication]
    impact = {"C": "H", "P": "L", "N": "N"}
    return CvssV3(
        attack_vector=v2.access_vector if v2.access_vector in ("N", "A", "L")
        else "L",
        attack_complexity=ac,
        privileges_required=pr,
        user_interaction=ui,
        scope="U",
        confidentiality=impact[v2.confidentiality],
        integrity=impact[v2.integrity],
        availability=impact[v2.availability],
    )
