"""In-memory CVE database with the paper's selection queries [5].

Supports the queries the training phase needs (§5.1): group reports by
application, measure each application's CVE history span ("the time of
the newest CVE report minus the time of the oldest"), select applications
with a *converging* (>= 5 year) history, and aggregate per-app counts by
severity, attack vector, and CWE class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cve import cwe as cwe_mod
from repro.cve.records import CVERecord

DAYS_PER_YEAR = 365.25

#: The paper's selection threshold: at least 5 years of CVE history.
CONVERGING_HISTORY_YEARS = 5.0


@dataclass(frozen=True)
class AppVulnSummary:
    """Aggregated vulnerability statistics for one application."""

    app: str
    n_total: int
    n_high_severity: int  # CVSS > 7
    n_network: int  # AV = N
    n_by_category: Dict[str, int]
    n_by_cwe: Dict[int, int]
    mean_score: float
    max_score: float
    history_years: float

    def count_cwe(self, cwe_id: int, include_descendants: bool = True) -> int:
        """Reports with the given CWE (optionally any descendant class)."""
        if not include_descendants:
            return self.n_by_cwe.get(cwe_id, 0)
        return sum(
            count
            for cid, count in self.n_by_cwe.items()
            if cwe_mod.is_a(cid, cwe_id)
        )


class CVEDatabase:
    """A queryable collection of :class:`CVERecord`."""

    def __init__(self, records: Iterable[CVERecord] = ()):
        self._by_app: Dict[str, List[CVERecord]] = {}
        self._ids: set = set()
        for record in records:
            self.add(record)

    def add(self, record: CVERecord) -> None:
        """Insert a record; duplicate CVE ids are rejected."""
        if record.cve_id in self._ids:
            raise ValueError(f"duplicate CVE id: {record.cve_id}")
        self._ids.add(record.cve_id)
        self._by_app.setdefault(record.app, []).append(record)

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def apps(self) -> List[str]:
        """All application names, sorted."""
        return sorted(self._by_app)

    def records_for(self, app: str) -> List[CVERecord]:
        """All reports for ``app``, ordered by report day."""
        return sorted(self._by_app.get(app, []), key=lambda r: (r.day, r.cve_id))

    def history_years(self, app: str) -> float:
        """Span of ``app``'s CVE history in years (0 for < 2 reports)."""
        records = self._by_app.get(app, [])
        if len(records) < 2:
            return 0.0
        days = [r.day for r in records]
        return (max(days) - min(days)) / DAYS_PER_YEAR

    def select_converging(
        self, min_years: float = CONVERGING_HISTORY_YEARS
    ) -> List[str]:
        """Applications with a converging history (>= ``min_years``).

        This is the paper's §5.1 sample-selection rule; Figure 2/3 and the
        training set use exactly this subset.
        """
        return [
            app for app in self.apps if self.history_years(app) >= min_years
        ]

    def summary(self, app: str) -> AppVulnSummary:
        """Aggregate the statistics the hypotheses and figures consume."""
        records = self.records_for(app)
        scores = [r.score for r in records]
        by_category: Dict[str, int] = {}
        by_cwe: Dict[int, int] = {}
        for r in records:
            by_category[r.category] = by_category.get(r.category, 0) + 1
            by_cwe[r.cwe_id] = by_cwe.get(r.cwe_id, 0) + 1
        return AppVulnSummary(
            app=app,
            n_total=len(records),
            n_high_severity=sum(1 for r in records if r.cvss.is_high_severity),
            n_network=sum(1 for r in records if r.cvss.is_network),
            n_by_category=by_category,
            n_by_cwe=by_cwe,
            mean_score=sum(scores) / len(scores) if scores else 0.0,
            max_score=max(scores, default=0.0),
            history_years=self.history_years(app),
        )

    def totals(self) -> Tuple[int, int]:
        """(number of applications, number of vulnerability reports)."""
        return (len(self._by_app), len(self._ids))
