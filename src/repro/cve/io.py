"""CVE database import/export in an NVD-like JSON shape.

"CVE exports a data set that is ready for analysis" (§5.1). This module
round-trips :class:`~repro.cve.database.CVEDatabase` through a JSON
document shaped like the NVD data feeds (one item per CVE with id,
affected product, CVSS vector, CWE id, and a day offset standing in for
the published date), so corpora can be saved, shared, and diffed, and
externally prepared CVE feeds can be loaded into the training pipeline.
"""

from __future__ import annotations

import json
from typing import Dict, List, TextIO, Union

from repro.cve.cvss import CvssError, CvssV3
from repro.cve.database import CVEDatabase
from repro.cve.records import CVERecord, InvalidCveError

FORMAT_NAME = "repro-cve-feed"
FORMAT_VERSION = 1


class CveFeedError(ValueError):
    """Raised for malformed feed documents."""


def to_document(db: CVEDatabase) -> Dict:
    """Serialise a database to a feed document (JSON-ready dict)."""
    items: List[Dict] = []
    for app in db.apps:
        for record in db.records_for(app):
            items.append(
                {
                    "cve": {"id": record.cve_id},
                    "product": record.app,
                    "publishedDay": record.day,
                    "impact": {
                        "baseMetricV3": {
                            "vectorString": record.cvss.vector(),
                            "baseScore": record.cvss.base_score,
                            "baseSeverity": record.cvss.severity,
                        }
                    },
                    "weakness": {"cweId": f"CWE-{record.cwe_id}"},
                    "description": record.description,
                }
            )
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "itemCount": len(items),
        "items": items,
    }


def dumps(db: CVEDatabase, indent: int = 2) -> str:
    """Serialise a database to feed JSON text."""
    return json.dumps(to_document(db), indent=indent, sort_keys=True)


def dump(db: CVEDatabase, fp: Union[str, TextIO]) -> None:
    """Write feed JSON to a path or file object."""
    text = dumps(db)
    if isinstance(fp, str):
        with open(fp, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        fp.write(text)


def _parse_cwe(token: str) -> int:
    if not isinstance(token, str) or not token.upper().startswith("CWE-"):
        raise CveFeedError(f"malformed CWE id: {token!r}")
    try:
        return int(token.split("-", 1)[1])
    except ValueError as exc:
        raise CveFeedError(f"malformed CWE id: {token!r}") from exc


def from_document(document: Dict) -> CVEDatabase:
    """Reconstruct a database from a feed document.

    Validates structure, vector strings, CWE ids, and score consistency
    (a recomputed base score must match the recorded one — feeds with
    tampered or stale scores are rejected rather than silently trusted).
    """
    if document.get("format") != FORMAT_NAME:
        raise CveFeedError(f"not a {FORMAT_NAME} document")
    if document.get("version") != FORMAT_VERSION:
        raise CveFeedError(f"unsupported version: {document.get('version')}")
    items = document.get("items")
    if not isinstance(items, list):
        raise CveFeedError("missing items list")
    if document.get("itemCount") != len(items):
        raise CveFeedError("itemCount disagrees with items")

    db = CVEDatabase()
    for i, item in enumerate(items):
        try:
            metric = item["impact"]["baseMetricV3"]
            cvss = CvssV3.parse(metric["vectorString"])
            recorded = float(metric["baseScore"])
            if abs(cvss.base_score - recorded) > 1e-9:
                raise CveFeedError(
                    f"item {i}: recorded score {recorded} != recomputed "
                    f"{cvss.base_score}"
                )
            record = CVERecord(
                cve_id=item["cve"]["id"],
                app=item["product"],
                day=int(item["publishedDay"]),
                cvss=cvss,
                cwe_id=_parse_cwe(item["weakness"]["cweId"]),
                description=item.get("description", ""),
            )
        except CveFeedError:
            raise
        except (KeyError, TypeError, ValueError, CvssError,
                InvalidCveError) as exc:
            raise CveFeedError(f"item {i}: {exc}") from exc
        db.add(record)
    return db


def loads(text: str) -> CVEDatabase:
    """Parse feed JSON text into a database."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CveFeedError(f"invalid JSON: {exc}") from exc
    return from_document(document)


def load(fp: Union[str, TextIO]) -> CVEDatabase:
    """Read feed JSON from a path or file object."""
    if isinstance(fp, str):
        with open(fp, encoding="utf-8") as handle:
            return loads(handle.read())
    return loads(fp.read())
