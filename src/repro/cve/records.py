"""CVE record model [5].

Each record mirrors the fields the paper's training phase consumes
(Figure 4): the affected application, the report date, the CVSS v3 vector
(hence severity, attack vector, impact factors), and the CWE weakness
class.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.cve import cwe as cwe_mod
from repro.cve.cvss import CvssV3

_CVE_ID_RE = re.compile(r"^CVE-(\d{4})-\d{4,}$")


class InvalidCveError(ValueError):
    """Raised for malformed CVE records."""


@dataclass(frozen=True)
class CVERecord:
    """One vulnerability report.

    Attributes:
        cve_id: canonical id, e.g. ``CVE-2014-0160``.
        app: affected application name (the database's grouping key).
        day: report date as days since epoch-of-corpus (ordering only).
        cvss: parsed CVSS v3 vector.
        cwe_id: weakness class (must be in the curated CWE subset).
        description: free-text summary.
    """

    cve_id: str
    app: str
    day: int
    cvss: CvssV3
    cwe_id: int
    description: str = ""

    def __post_init__(self) -> None:
        if not _CVE_ID_RE.match(self.cve_id):
            raise InvalidCveError(f"malformed CVE id: {self.cve_id!r}")
        if not self.app:
            raise InvalidCveError("app name must be non-empty")
        if self.day < 0:
            raise InvalidCveError(f"negative report day: {self.day}")
        if not cwe_mod.exists(self.cwe_id):
            raise InvalidCveError(f"unknown CWE id: {self.cwe_id}")

    @property
    def year(self) -> int:
        """The year encoded in the CVE id."""
        return int(_CVE_ID_RE.match(self.cve_id).group(1))

    @property
    def score(self) -> float:
        """CVSS base score."""
        return self.cvss.base_score

    @property
    def severity(self) -> str:
        """Qualitative severity band."""
        return self.cvss.severity

    @property
    def category(self) -> str:
        """Coarse CWE category (memory/injection/...)."""
        return cwe_mod.category_of(self.cwe_id)
