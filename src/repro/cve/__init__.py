"""CVE substrate: records, CVSS v3 scoring, CWE taxonomy, database, baselines."""

from repro.cve import aggregate, cwe, cvss2, database, io, records, trends
from repro.cve.aggregate import AggregateScore, rank_apps, score_app
from repro.cve.cvss import CvssError, CvssV3, severity_rating
from repro.cve.cvss2 import CvssV2, v2_to_v3
from repro.cve.trends import HistoryTrend, analyse, rank_by_maturity
from repro.cve.database import (
    CONVERGING_HISTORY_YEARS,
    AppVulnSummary,
    CVEDatabase,
)
from repro.cve.records import CVERecord, InvalidCveError

__all__ = [
    "AggregateScore",
    "AppVulnSummary",
    "CONVERGING_HISTORY_YEARS",
    "CVEDatabase",
    "CVERecord",
    "CvssError",
    "CvssV2",
    "CvssV3",
    "HistoryTrend",
    "InvalidCveError",
    "aggregate",
    "analyse",
    "cvss2",
    "cwe",
    "io",
    "database",
    "rank_apps",
    "rank_by_maturity",
    "records",
    "score_app",
    "severity_rating",
    "trends",
    "v2_to_v3",
]
