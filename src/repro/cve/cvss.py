"""CVSS v3.0 vectors and scoring [3].

Implements the Common Vulnerability Scoring System v3.0 specification's
base-score equations exactly: metric weights, the impact sub-score (ISC),
the exploitability sub-score, scope handling, and the spec's Roundup
(ceiling to one decimal). Temporal scoring supports the Exploit Code
Maturity (E) factor the paper names explicitly (§5.1).

The CVE database labels every vulnerability with one of these vectors,
and the core hypotheses (``CVSS > 7``, ``AV = N`` …) are queries over
the parsed metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

__all__ = [
    "CvssError",
    "CvssV3",
    "severity_rating",
]


class CvssError(ValueError):
    """Raised for malformed CVSS vectors or invalid metric values."""


_AV = {"N": 0.85, "A": 0.62, "L": 0.55, "P": 0.2}
_AC = {"L": 0.77, "H": 0.44}
_PR_UNCHANGED = {"N": 0.85, "L": 0.62, "H": 0.27}
_PR_CHANGED = {"N": 0.85, "L": 0.68, "H": 0.5}
_UI = {"N": 0.85, "R": 0.62}
_CIA = {"H": 0.56, "L": 0.22, "N": 0.0}
_SCOPE = ("U", "C")
_EXPLOIT_MATURITY = {"X": 1.0, "H": 1.0, "F": 0.97, "P": 0.94, "U": 0.91}

_REQUIRED = ("AV", "AC", "PR", "UI", "S", "C", "I", "A")


def _roundup(value: float) -> float:
    """CVSS Roundup: smallest number, to one decimal, >= value.

    The spec defines it over one-decimal precision; the int trick avoids
    float artefacts like ceil(8.000000001*10)/10 -> 8.1.
    """
    int_input = round(value * 100000)
    if int_input % 10000 == 0:
        return int_input / 100000.0
    return (math.floor(int_input / 10000) + 1) / 10.0


def severity_rating(score: float) -> str:
    """Qualitative severity band for a CVSS score (spec table 14)."""
    if not 0.0 <= score <= 10.0:
        raise CvssError(f"score out of range: {score}")
    if score == 0.0:
        return "NONE"
    if score < 4.0:
        return "LOW"
    if score < 7.0:
        return "MEDIUM"
    if score < 9.0:
        return "HIGH"
    return "CRITICAL"


@dataclass(frozen=True)
class CvssV3:
    """A parsed CVSS v3.0 vector.

    Attributes mirror the spec's base metrics; ``exploit_maturity`` is the
    temporal E metric ('X' = not defined).
    """

    attack_vector: str  # AV: N/A/L/P
    attack_complexity: str  # AC: L/H
    privileges_required: str  # PR: N/L/H
    user_interaction: str  # UI: N/R
    scope: str  # S: U/C
    confidentiality: str  # C: H/L/N
    integrity: str  # I: H/L/N
    availability: str  # A: H/L/N
    exploit_maturity: str = "X"  # E: X/H/F/P/U

    def __post_init__(self) -> None:
        checks = (
            (self.attack_vector, _AV, "AV"),
            (self.attack_complexity, _AC, "AC"),
            (self.privileges_required, _PR_UNCHANGED, "PR"),
            (self.user_interaction, _UI, "UI"),
            (self.confidentiality, _CIA, "C"),
            (self.integrity, _CIA, "I"),
            (self.availability, _CIA, "A"),
            (self.exploit_maturity, _EXPLOIT_MATURITY, "E"),
        )
        for value, table, name in checks:
            if value not in table:
                raise CvssError(f"invalid {name} value: {value!r}")
        if self.scope not in _SCOPE:
            raise CvssError(f"invalid S value: {self.scope!r}")

    # -- construction --------------------------------------------------------

    @classmethod
    def parse(cls, vector: str) -> "CvssV3":
        """Parse a ``CVSS:3.0/AV:N/AC:L/...`` vector string."""
        parts = vector.strip().split("/")
        if not parts or not parts[0].startswith("CVSS:3"):
            raise CvssError(f"not a CVSS v3 vector: {vector!r}")
        metrics: Dict[str, str] = {}
        for part in parts[1:]:
            if ":" not in part:
                raise CvssError(f"malformed metric {part!r} in {vector!r}")
            key, value = part.split(":", 1)
            if key in metrics:
                raise CvssError(f"duplicate metric {key!r} in {vector!r}")
            metrics[key] = value
        missing = [m for m in _REQUIRED if m not in metrics]
        if missing:
            raise CvssError(f"vector {vector!r} missing metrics {missing}")
        return cls(
            attack_vector=metrics["AV"],
            attack_complexity=metrics["AC"],
            privileges_required=metrics["PR"],
            user_interaction=metrics["UI"],
            scope=metrics["S"],
            confidentiality=metrics["C"],
            integrity=metrics["I"],
            availability=metrics["A"],
            exploit_maturity=metrics.get("E", "X"),
        )

    def vector(self) -> str:
        """Serialise back to the canonical vector string (base + E if set)."""
        base = (
            f"CVSS:3.0/AV:{self.attack_vector}/AC:{self.attack_complexity}"
            f"/PR:{self.privileges_required}/UI:{self.user_interaction}"
            f"/S:{self.scope}/C:{self.confidentiality}/I:{self.integrity}"
            f"/A:{self.availability}"
        )
        if self.exploit_maturity != "X":
            base += f"/E:{self.exploit_maturity}"
        return base

    # -- scoring --------------------------------------------------------------

    @property
    def impact_subscore_base(self) -> float:
        """ISCBase = 1 - (1-C)(1-I)(1-A)."""
        return 1.0 - (
            (1.0 - _CIA[self.confidentiality])
            * (1.0 - _CIA[self.integrity])
            * (1.0 - _CIA[self.availability])
        )

    @property
    def impact_subscore(self) -> float:
        """ISC, scope-dependent (spec section 8.1)."""
        isc_base = self.impact_subscore_base
        if self.scope == "U":
            return 6.42 * isc_base
        return 7.52 * (isc_base - 0.029) - 3.25 * (isc_base - 0.02) ** 15

    @property
    def exploitability_subscore(self) -> float:
        """8.22 x AV x AC x PR x UI."""
        pr_table = _PR_CHANGED if self.scope == "C" else _PR_UNCHANGED
        return (
            8.22
            * _AV[self.attack_vector]
            * _AC[self.attack_complexity]
            * pr_table[self.privileges_required]
            * _UI[self.user_interaction]
        )

    @property
    def base_score(self) -> float:
        """The CVSS v3.0 base score in [0, 10]."""
        isc = self.impact_subscore
        if isc <= 0:
            return 0.0
        total = isc + self.exploitability_subscore
        if self.scope == "C":
            total *= 1.08
        return _roundup(min(total, 10.0))

    @property
    def temporal_score(self) -> float:
        """Base score modulated by exploit code maturity (RL/RC at X)."""
        return _roundup(self.base_score * _EXPLOIT_MATURITY[self.exploit_maturity])

    @property
    def severity(self) -> str:
        """Qualitative severity of the base score."""
        return severity_rating(self.base_score)

    # -- hypothesis helpers ----------------------------------------------------

    @property
    def is_network(self) -> bool:
        """AV = N — the paper's network-accessibility hypothesis."""
        return self.attack_vector == "N"

    @property
    def is_high_severity(self) -> bool:
        """CVSS > 7 — the paper's high-severity hypothesis."""
        return self.base_score > 7.0
