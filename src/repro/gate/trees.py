"""Resolve gate tree specs: directories, Codebases, synthetic history.

Every continuous-assessment surface takes two "versions of a tree".
This module canonicalises what a version *is*:

- an already-built :class:`~repro.lang.Codebase` (passed through);
- a directory path (loaded via ``Codebase.from_directory``);
- a ``synth:NAME[@K]`` spec — version ``K`` of the named synthetic
  application's labelled change history (``@0``/omitted is the
  generated v0), built deterministically from the corpus seed via
  :func:`repro.synth.versions.version_chain`. This is how the CLI,
  tests, and the gate-smoke CI leg gate *known* regressions without
  shipping fixture trees.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.lang.sourcefile import Codebase

#: Spec prefix for synthetic-history versions.
SYNTH_PREFIX = "synth:"


def _parse_synth_spec(spec: str) -> "tuple[str, int]":
    body = spec[len(SYNTH_PREFIX):]
    name, sep, version = body.partition("@")
    if not name:
        raise ValueError(f"empty app name in tree spec {spec!r}")
    if not sep:
        return name, 0
    try:
        index = int(version)
    except ValueError:
        raise ValueError(
            f"bad version index in tree spec {spec!r} "
            f"(expected synth:NAME@K with integer K)") from None
    if index < 0:
        raise ValueError(f"negative version index in tree spec {spec!r}")
    return name, index


def _resolve_synth(spec: str, seed: int) -> Codebase:
    # Imported lazily: gating two directories must not pay for (or
    # depend on) the synthetic corpus machinery.
    from repro.synth.appgen import generate_app
    from repro.synth.cvegen import generate_profiles
    from repro.synth.versions import version_chain

    name, index = _parse_synth_spec(spec)
    profile = next(
        (p for p in generate_profiles(seed=seed) if p.name == name), None)
    if profile is None:
        raise ValueError(
            f"unknown synthetic app {name!r} in tree spec {spec!r} "
            f"(seed {seed})")
    app = generate_app(profile, seed=seed)
    if index == 0:
        return app.codebase
    return version_chain(app, steps=index, seed=seed)[index]


def resolve_tree(
    spec: Union[str, Codebase],
    *,
    seed: int = 0,
    allow_empty: bool = False,
    name: Optional[str] = None,
) -> Codebase:
    """Resolve one tree spec to a :class:`~repro.lang.Codebase`.

    ``allow_empty`` admits trees with zero recognised source files —
    the gate treats an empty *base* as "everything is new" rather than
    an error, while analysis surfaces keep rejecting empty trees.
    ``name`` overrides the codebase name for directory specs (synthetic
    specs are self-naming; prebuilt codebases keep their own).
    """
    if isinstance(spec, Codebase):
        codebase = spec
    elif not isinstance(spec, str):
        raise TypeError(
            f"tree spec must be a path, synth:NAME@K spec, or Codebase; "
            f"got {type(spec).__name__}")
    elif spec.startswith(SYNTH_PREFIX):
        codebase = _resolve_synth(spec, seed)
    else:
        if not os.path.isdir(spec):
            raise ValueError(
                f"tree spec {spec!r} is not a directory "
                f"(synthetic versions use the synth:NAME@K form)")
        codebase = Codebase.from_directory(spec, name=name)
    if len(codebase) == 0 and not allow_empty:
        raise ValueError(
            f"tree {codebase.name!r} contains no recognised source files")
    return codebase
